"""Compiled simulation kernel: dense-index unfolding fast paths.

The legacy simulation loops (:mod:`repro.core.simulation`, kernel
``"legacy"``) pay a tuple construction plus a dict lookup keyed by
``(event, index)`` for every unfolding arc.  This module removes both
costs by *compiling* a :class:`~repro.core.signal_graph.TimedSignalGraph`
once into dense integer indices:

* every event gets an integer id equal to its position in the
  topological order of the unmarked subgraph (the paper's intra-period
  firing order), so instance ``(event, k)`` lives in *slot*
  ``id + k * n`` of a flat list;
* all in-arcs are flattened into per-event programs of
  ``(source_offset, delay)`` pairs addressing a rolling two-period
  buffer — adding nothing at run time: the offsets are final.

Because the model is initially safe (``tokens`` is 0 or 1), the set of
unfolding in-arcs of an instance depends only on which of three period
classes it is in, never on the period index itself:

* **period 0** — arcs with ``tokens == 0`` (the source instance 0
  always exists);
* **period 1** — arcs with ``tokens == 1`` (source instance 0) plus
  token-free arcs from repetitive sources (source instance 1);
* **periods >= 2** (steady state) — arcs whose source is repetitive.

Each class is precompiled into one program.  A period is simulated
inside a buffer of ``2n`` slots — previous period in the lower half,
current period in the upper half — and flushed to the flat result by a
C-speed slice copy, so the inner loop performs no index arithmetic at
all.  Period-over-period the structure is identical, which is what
makes the driver :func:`run_border_simulations` able to run all ``b``
border simulations of the cycle-time algorithm against one compiled
structure.

Two interchangeable kernels run over the same programs:

* the **exact** kernel keeps the original delay objects, so ``int`` /
  :class:`fractions.Fraction` arithmetic is preserved bit-for-bit;
* the **float** kernel replays the programs over ``float64`` copies of
  the delays — the fast path for Monte-Carlo and scaling sweeps.  Once
  a compiled structure has been exercised a few times
  (:data:`CODEGEN_THRESHOLD` kernel runs), its float programs are
  additionally *specialised to straight-line Python source* — one
  statement per unfolding arc, delays inlined as literals — compiled
  with :func:`compile` and cached, removing even the interpreter's loop
  and unpacking overhead.  One-shot analyses never pay the codegen
  cost; benchmarks and repeated sweeps amortise it after the first
  call.

Both kernels are branch-free in the inner loop: undefined instances are
the sentinel ``-inf`` (comparisons and additions with ``-inf`` behave
like the paper's "neglected" arcs under MAX semantics, for exact
operands too), and the argmax predecessor needed for critical-path
backtracking is *not* tracked in the loop — it is recovered on demand
by re-scanning the (tiny) in-arc program of the queried instance, which
reproduces the legacy first-maximum tie-breaking exactly.

The compiled structure is cached on the graph itself (see
:meth:`TimedSignalGraph.cached`) and is invalidated automatically by
any mutation.  Delay-only sweeps can skip recompilation entirely with
:func:`rebind_compiled`.

Statistical workloads go one dimension further: a **batch axis**.
:class:`BatchBindings` holds an ``(S, m)`` float64 delay matrix — S
delay bindings over one compiled topology — and
:func:`run_border_simulations_batch` advances all S bindings through
the same arc programs in lockstep.  The in-arc programs are flattened
into NumPy index arrays grouped by intra-period dependency depth
(*levels*), so one period is a handful of gathers plus
``np.maximum.reduceat`` segment maxima over ``(S, arcs)`` blocks
instead of S Python-level sweeps; λ per binding falls out of one
vectorized max over the collected border distances.  Critical-cycle
backtracking stays lazy and per-sample
(:meth:`BatchSweepResult.sample_result`), so bindings whose critical
cycle is never requested pay nothing for it.  The batched float64
sweep is bit-identical to S independent :func:`rebind_compiled` +
single-kernel runs (same IEEE additions and maxima, different loop
order only).

The top speed tier is the **fused period program**
(``kernel="fused"``, the ``auto`` default of the batch entry points):
the per-level Python loop of the batch kernel is collapsed into a
handful of large vectorized ops per *period* by precomputing flat
gather / segment-boundary index arrays spanning the whole period.  The
fused sweep additionally

* stacks all ``b`` border origins along the sample axis (one buffer of
  ``b * S`` columns), so the ``b`` per-origin period loops of the
  cycle-time algorithm run as one;
* works slot-major (``(frames * n, b * S)`` buffers) with a frame ring
  of precomputed index-array *variants* instead of rolling the buffer,
  so no period-over-period copy is paid;
* unrolls 2-4 periods into one program when ``b`` is small, amortising
  dispatch overhead across periods;
* replaces the axis-0 segment reduction with degree-sorted levels whose
  j-th-arc maxima are contiguous-slice ``np.maximum`` calls.

Fused programs are compiled once per topology, cached on the
:class:`_BatchStructure` (itself carried across the service layer's
O(1) ``adopt`` path when the arc order matches), and remain
bit-identical to the per-sample float64 kernel.  An optional ``numba``
backend JIT-compiles the same flat per-sample period loop when numba
is importable and falls back to ``fused`` (with a warning) when not —
it is never a hard dependency.  ``executor="process"`` ships ``(S, m)``
delay matrices to pool workers through one
:mod:`multiprocessing.shared_memory` block per sweep (attached
child-side by name, unlinked by the parent when the sweep ends) so
chunk dispatch never pickles the matrix.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import sys
import threading
import time
import warnings
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from .errors import NotLiveError, SignalGraphError
from .events import event_sort_key
from .signal_graph import Event, TimedSignalGraph
from .validation import find_unmarked_cycle, unmarked_subgraph
from ..obs.profile import active_profiler, phase as _phase

#: Sentinel for "instance has no simulated time" in flat time arrays.
NEG_INF = float("-inf")

#: Kernel names accepted by the public entry points.
KERNELS = ("auto", "exact", "float", "legacy")

#: Float-kernel runs of one compiled structure before its programs are
#: specialised to straight-line code.  Small enough that benchmarks and
#: sweeps hit the fast tier almost immediately, large enough that a
#: single analysis (``b`` runs for typical small ``b``) stays on the
#: no-setup interpreted tier.
CODEGEN_THRESHOLD = 6

_CACHE_KEY = "compiled-kernel"

#: One compiled in-arc program row:
#: (buffer_index_of_target, [(buffer_index_of_source, delay), ...]).
Row = Tuple[int, List[Tuple[int, object]]]


class CompiledGraph:
    """Dense-index view of a live Timed Signal Graph.

    Attributes
    ----------
    order:
        Events in unmarked-subgraph topological order; the id of an
        event is its position here, so ids themselves are topologically
        sorted and slot ``id + k*n`` layouts are period-major.
    id_of:
        Event -> dense id.
    repetitive:
        Per-id booleans (is the event on a cycle?).
    rep_ids / nonrep_ids:
        Ids of the (non-)repetitive events, ascending (= topo order).
    in_compact:
        Per-event ``(source, tokens, delay, source_is_repetitive)``
        tuples, shared with :class:`~repro.core.unfolding.Unfolding`.

    Program rows address the rolling two-period buffer: the current
    period occupies indices ``n .. 2n-1``, the previous period
    ``0 .. n-1``, so a source reached over ``tokens`` marked arcs sits
    at buffer index ``n + source_id - tokens * n``.
    """

    def __init__(self, graph: TimedSignalGraph):
        cycle = find_unmarked_cycle(graph)
        if cycle is not None:
            raise NotLiveError(
                "cannot unfold a non-live graph (token-free cycle exists)",
                cycle=cycle,
            )
        self.graph = graph
        # The *lexicographical* topological sort makes the compiled
        # structure canonical: two content-equal graphs compile to the
        # same order (and hence the same slot layout and programs) no
        # matter what order their events and arcs were inserted in —
        # the property that makes content-hash -> compiled-program
        # reuse in repro.service sound.
        with _phase("toposort"):
            order: List[Event] = list(
                nx.lexicographical_topological_sort(
                    unmarked_subgraph(graph), key=event_sort_key
                )
            )
        self.order = order
        self.n = n = len(order)
        self.id_of: Dict[Event, int] = {event: i for i, event in enumerate(order)}
        repetitive_set = graph.repetitive_events
        self.repetitive: List[bool] = [event in repetitive_set for event in order]
        self.rep_ids: List[int] = [i for i in range(n) if self.repetitive[i]]
        self.nonrep_ids: List[int] = [i for i in range(n) if not self.repetitive[i]]
        self.topo_repetitive: List[Event] = [order[i] for i in self.rep_ids]
        # position of an id inside rep_ids, -1 for non-repetitive events
        self.rep_index: List[int] = [-1] * n
        for position, tid in enumerate(self.rep_ids):
            self.rep_index[tid] = position
        self._build_programs(graph, repetitive_set)

    def _build_programs(self, graph: TimedSignalGraph, repetitive_set) -> None:
        """(Re)build the per-period-class arc programs from the graph.

        Factored out so :meth:`rebound` can refresh delays on an
        existing topology without re-running the liveness check and the
        topological sort.
        """
        n = self.n
        order = self.order
        id_of = self.id_of
        self.in_compact = {
            event: tuple(
                (arc.source, arc.tokens, arc.delay, arc.source in repetitive_set)
                for arc in graph.in_arcs(event)
            )
            for event in order
        }
        # In-arc order per event is preserved from the graph, which
        # fixes argmax tie-breaking to match the legacy loops.
        p0: List[Row] = []
        p1: List[Row] = []
        ps: List[Row] = []
        for tid, event in enumerate(order):
            p0.append(
                (
                    n + tid,
                    [
                        (n + id_of[source], delay)
                        for source, tokens, delay, _ in self.in_compact[event]
                        if tokens == 0
                    ],
                )
            )
        for tid in self.rep_ids:
            arcs_one: List[Tuple[int, object]] = []
            arcs_steady: List[Tuple[int, object]] = []
            for source, tokens, delay, source_rep in self.in_compact[order[tid]]:
                offset = n + id_of[source] - tokens * n
                if tokens or source_rep:
                    arcs_one.append((offset, delay))
                if source_rep:
                    arcs_steady.append((offset, delay))
            p1.append((n + tid, arcs_one))
            ps.append((n + tid, arcs_steady))
        self.p0, self.p1, self.ps = p0, p1, ps
        self._float_programs: Optional[tuple] = None
        self._float_fns: Optional[tuple] = None
        self._float_runs = 0
        self._allow_codegen = True
        self._batch_structure: Optional["_BatchStructure"] = None
        self._batch_donor: Optional["_BatchStructure"] = None

    @classmethod
    def rebound(
        cls,
        base: "CompiledGraph",
        graph: TimedSignalGraph,
        allow_codegen: bool = False,
    ) -> "CompiledGraph":
        """A compiled view of ``graph`` reusing ``base``'s topology.

        ``graph`` must have exactly ``base.graph``'s events and arcs
        (equal values, e.g. via :meth:`TimedSignalGraph.copy` or a
        content-hash match) and may differ only in delays — the
        contract of delay sweeps.  Skips the liveness check and
        topological sort, so a rebind is O(m).

        ``allow_codegen`` defaults to False because a rebound structure
        typically carries trial-specific delays and lives for one
        analysis, where specialising code can never pay off; the
        service compile cache passes True for long-lived client graphs.
        """
        new = cls.__new__(cls)
        new.graph = graph
        new.order = base.order
        new.n = base.n
        new.id_of = base.id_of
        new.repetitive = base.repetitive
        new.rep_ids = base.rep_ids
        new.nonrep_ids = base.nonrep_ids
        new.topo_repetitive = base.topo_repetitive
        new.rep_index = base.rep_index
        new._build_programs(graph, frozenset(base.topo_repetitive))
        new._allow_codegen = allow_codegen
        # Delay-only rebinds can reuse the (delay-free) batch/fused
        # index programs, provided the new graph's arc insertion order
        # matches; validated lazily in _batch_structure_of.
        new._batch_donor = base._batch_structure or base._batch_donor
        return new

    @classmethod
    def adopt(cls, base: "CompiledGraph", graph: TimedSignalGraph) -> "CompiledGraph":
        """A compiled view of ``graph`` sharing ``base``'s programs.

        Requires ``graph`` to be *content-equal* to the graph ``base``
        was compiled from — same events, arcs, markings, disengageable
        sets **and delays** (equal values; the service layer guarantees
        this via the full content hash).  Everything expensive — the
        topology, the arc programs, already-converted float programs
        and generated straight-line kernels — is shared by reference;
        only the per-graph lazy state (the batch structure, whose
        column order follows ``graph``'s own arc insertion order) is
        reset.  Adoption is O(1): the warm path of the compile cache.
        """
        new = cls.__new__(cls)
        new.graph = graph
        new.order = base.order
        new.n = base.n
        new.id_of = base.id_of
        new.repetitive = base.repetitive
        new.rep_ids = base.rep_ids
        new.nonrep_ids = base.nonrep_ids
        new.topo_repetitive = base.topo_repetitive
        new.rep_index = base.rep_index
        new.in_compact = base.in_compact
        new.p0, new.p1, new.ps = base.p0, base.p1, base.ps
        new._float_programs = base._float_programs
        new._float_fns = base._float_fns
        new._float_runs = base._float_runs
        new._allow_codegen = base._allow_codegen
        new._batch_structure = None
        # Keep adoption O(1): the base's batch structure (with its
        # compiled fused plans) is recorded as a *donor* and validated
        # against this graph's own arc order only on first batch use.
        new._batch_donor = base._batch_structure or base._batch_donor
        return new

    def __getstate__(self) -> dict:
        # Generated straight-line kernels are exec-compiled functions
        # and cannot be pickled; the batch structure holds NumPy index
        # arrays cheap to rebuild.  Both regenerate lazily after a
        # round-trip (e.g. through the service disk cache).  The
        # process-pool shipping token/blob are parent-local and must
        # never nest inside another pickle of this object.
        state = dict(self.__dict__)
        state["_float_fns"] = None
        state["_float_runs"] = 0
        state["_batch_structure"] = None
        state["_batch_donor"] = None
        state.pop("_pool_token", None)
        state.pop("_pool_blob", None)
        return state

    # ------------------------------------------------------------------
    def programs(self, float_mode: bool) -> tuple:
        """The (period-0, period-1, steady) programs for one kernel."""
        if not float_mode:
            return self.p0, self.p1, self.ps
        if self._float_programs is None:

            def convert(program: List[Row]) -> List[Row]:
                return [
                    (tid, [(offset, float(delay)) for offset, delay in arcs])
                    for tid, arcs in program
                ]

            self._float_programs = (
                convert(self.p0),
                convert(self.p1),
                convert(self.ps),
            )
        return self._float_programs

    def float_kernels(self) -> Optional[tuple]:
        """Straight-line compiled float programs, once warmed up.

        Returns ``None`` until :data:`CODEGEN_THRESHOLD` float runs
        have been counted, then a ``(period0, period1, steady)`` triple
        of generated functions ``f(buffer, empty)``.
        """
        if not self._allow_codegen:
            return None
        self._float_runs += 1
        if self._float_fns is None:
            if self._float_runs <= CODEGEN_THRESHOLD:
                return None
            with _phase("codegen"):
                self._float_fns = tuple(
                    _generate(program) for program in self.programs(True)
                )
        return self._float_fns

    def arcs_for(self, tid: int, period: int, float_mode: bool):
        """The in-arc program row of instance ``(order[tid], period)``."""
        p0, p1, ps = self.programs(float_mode)
        if period == 0:
            return p0[tid][1]
        position = self.rep_index[tid]
        if position < 0:
            return ()
        return (p1 if period == 1 else ps)[position][1]

    def slot(self, event: Event, index: int, periods: int) -> int:
        """Flat slot of ``(event, index)``, or -1 if outside the prefix."""
        tid = self.id_of.get(event, -1)
        if tid < 0 or index < 0 or index > periods:
            return -1
        if index and not self.repetitive[tid]:
            return -1
        return tid + index * self.n

    def instance_of(self, slot: int) -> Tuple[Event, int]:
        """Inverse of :meth:`slot` for valid slots."""
        index, tid = divmod(slot, self.n)
        return (self.order[tid], index)


def compiled_graph(graph: TimedSignalGraph) -> CompiledGraph:
    """The compiled structure of ``graph``, cached until mutation."""
    return graph.cached(_CACHE_KEY, lambda: CompiledGraph(graph))


def peek_compiled(graph: TimedSignalGraph) -> Optional[CompiledGraph]:
    """The already-installed compiled structure of ``graph``, if any.

    Never compiles; the service cache uses this to skip content
    hashing entirely when the graph object was compiled (or rebound)
    before and has not been mutated since.
    """
    return graph._cache.get(_CACHE_KEY)


def install_compiled(graph: TimedSignalGraph, cg: CompiledGraph) -> CompiledGraph:
    """Install ``cg`` as ``graph``'s compiled structure.

    Also installs the repetitive classification derived from the
    compiled topology, so no networkx pass runs on ``graph`` at all;
    border/initial events then derive from it with one cheap linear
    scan.  ``cg`` must have been built for (or rebound/adopted onto)
    ``graph``.
    """
    repetitive = frozenset(cg.topo_repetitive)
    graph.cached("repetitive", lambda: repetitive)
    return graph.cached(_CACHE_KEY, lambda: cg)


def rebind_compiled(graph: TimedSignalGraph, base: CompiledGraph) -> CompiledGraph:
    """Install a delay-rebound compiled structure on ``graph``.

    For bulk delay sweeps (Monte-Carlo sampling, interval corners,
    bottleneck shaving): ``graph`` must be structurally identical to
    ``base.graph`` — same events and arcs, only delays changed — which
    holds for any :meth:`TimedSignalGraph.copy` mutated exclusively via
    :meth:`set_delay`.  The structural classifications (repetitive,
    border, initial events) and the compiled topology are carried over,
    so re-analysis costs O(m) instead of a full recompilation; callers
    then pass ``check=False`` to :func:`~repro.core.compute_cycle_time`.
    """
    donor = base.graph
    graph.cached("repetitive", lambda: donor.repetitive_events)
    graph.cached("border", lambda: donor.border_events)
    graph.cached("initial", lambda: donor.initial_events)
    rebound = CompiledGraph.rebound(base, graph)
    return graph.cached(_CACHE_KEY, lambda: rebound)


def resolve_kernel(graph: TimedSignalGraph, kernel: Optional[str]) -> str:
    """Normalise a kernel selector to ``exact``/``float``/``legacy``.

    ``auto`` (the default everywhere) keeps exact arithmetic whenever
    every delay is an ``int`` or :class:`~fractions.Fraction` — so
    auto-selected results are bit-identical to the legacy path — and
    takes the float64 fast path when float delays are present (where
    the legacy path computed floats anyway).
    """
    if kernel is None or kernel == "auto":
        return "exact" if graph.is_exact else "float"
    if kernel not in ("exact", "float", "legacy"):
        raise SignalGraphError(
            "unknown kernel %r (choose from %s)" % (kernel, ", ".join(KERNELS))
        )
    return kernel


# ----------------------------------------------------------------------
# the kernels
# ----------------------------------------------------------------------
def _sweep(buffer: list, rows: Sequence[Row], init) -> None:
    """Relax one period's program inside the rolling buffer.

    ``init`` is the MAX identity for the simulation kind: ``0`` for the
    global simulation (instances with no predecessors occur at time 0;
    all candidates are non-negative, so pre-seeding 0 never changes a
    maximum) and ``-inf`` for event-initiated simulations (no defined
    predecessor leaves the instance undefined).  ``-inf`` operands flow
    through additions and comparisons exactly like the paper's
    neglected arcs, so the loop needs no definedness branch.
    """
    for target, arcs in rows:
        best = init
        for offset, delay in arcs:
            candidate = buffer[offset] + delay
            if candidate > best:
                best = candidate
        buffer[target] = best


def _generate(rows: Sequence[Row]):
    """Specialise one float program to a straight-line Python function.

    Emits one assignment per event — loop, unpacking and delay-lookup
    overhead all disappear; float delays are inlined as repr literals
    (repr round-trips float64 exactly).  ``empty`` supplies the value
    of no-predecessor rows: 0.0 for global simulations, -inf for
    event-initiated ones, so one generated function serves both kinds.
    """
    lines = ["def _kernel(b, empty):"]
    for target, arcs in rows:
        if not arcs:
            lines.append("    b[%d] = empty" % target)
        elif len(arcs) == 1:
            offset, delay = arcs[0]
            lines.append("    b[%d] = b[%d] + %r" % (target, offset, delay))
        else:
            offset, delay = arcs[0]
            lines.append("    _a = b[%d] + %r" % (offset, delay))
            for offset, delay in arcs[1:]:
                lines.append("    _c = b[%d] + %r" % (offset, delay))
                lines.append("    if _c > _a: _a = _c")
            lines.append("    b[%d] = _a" % target)
    namespace: dict = {}
    exec(compile("\n".join(lines), "<repro-kernel>", "exec"), namespace)
    return namespace["_kernel"]


def _run_periods(
    cg: CompiledGraph, times: list, buffer: list, periods: int, float_mode: bool, init
) -> None:
    """Replay periods 1..periods and flush each into ``times``."""
    n = cg.n
    _, p1, ps = cg.programs(float_mode)
    fns = cg.float_kernels() if float_mode else None
    nonrep = cg.nonrep_ids
    profiler = active_profiler()
    for period in range(1, periods + 1):
        started = time.perf_counter() if profiler is not None else 0.0
        buffer[:n] = buffer[n:]
        if fns is not None:
            (fns[1] if period == 1 else fns[2])(buffer, init)
        else:
            _sweep(buffer, p1 if period == 1 else ps, init)
        kn = period * n
        times[kn:kn + n] = buffer[n:]
        # Non-repetitive events have no instance beyond period 0; their
        # buffer slots carry stale period-0 values (never read by the
        # repetitive-only programs) which must not leak into the result.
        for tid in nonrep:
            times[kn + tid] = NEG_INF
        if profiler is not None:
            profiler.record_period(time.perf_counter() - started)


def run_global(cg: CompiledGraph, periods: int, float_mode: bool) -> list:
    """Flat times of the global timing simulation ``t(f)``."""
    n = cg.n
    zero = 0.0 if float_mode else 0
    with _phase("run"):
        times = [NEG_INF] * ((periods + 1) * n)
        buffer = [NEG_INF] * (2 * n)
        fns = cg.float_kernels() if float_mode else None
        if fns is not None:
            fns[0](buffer, zero)
        else:
            _sweep(buffer, cg.programs(float_mode)[0], zero)
        times[0:n] = buffer[n:]
        _run_periods(cg, times, buffer, periods, float_mode, zero)
    return times


def run_initiated(
    cg: CompiledGraph, origin_id: int, periods: int, float_mode: bool
) -> list:
    """Flat times of the event-initiated simulation ``t_g(f)``.

    Instances topologically before the origin stay at the ``-inf``
    sentinel (the paper assigns them "the past"); later instances
    maximise over *defined* predecessors only, which the sentinel
    arithmetic handles without branching.  The period-0 prefix depends
    on the origin, so that one period is always interpreted; periods
    1.. replay the shared (possibly code-generated) programs.
    """
    n = cg.n
    with _phase("run"):
        p0 = cg.programs(float_mode)[0]
        times = [NEG_INF] * ((periods + 1) * n)
        buffer = [NEG_INF] * (2 * n)
        buffer[n + origin_id] = 0.0 if float_mode else 0
        # Ids equal topological positions, so the period-0 instances
        # after the origin are exactly the rows origin_id+1 .. n-1.
        _sweep(buffer, p0[origin_id + 1:], NEG_INF)
        times[0:n] = buffer[n:]
        _run_periods(cg, times, buffer, periods, float_mode, NEG_INF)
    return times


def argmax_slot(
    cg: CompiledGraph, times: list, slot: int, float_mode: bool
) -> Optional[int]:
    """Recover the argmax predecessor slot of a defined instance.

    The kernels do not track argmax in the hot loop; re-scanning the
    queried instance's in-arc program and taking the *first* candidate
    that equals its time reproduces the legacy strict-``>`` tie-break
    (the first maximal predecessor in graph in-arc order).  Undefined
    predecessors re-evaluate to ``-inf`` and can never match a defined
    time, so they are skipped for free.
    """
    target = times[slot]
    if target == NEG_INF:
        return None
    n = cg.n
    period, tid = divmod(slot, n)
    # Program offsets address the rolling buffer (current period at
    # n..2n-1); shift them back to absolute slots of this period.
    shift = (period - 1) * n
    for offset, delay in cg.arcs_for(tid, period, float_mode):
        if times[offset + shift] + delay == target:
            return offset + shift
    return None


# ----------------------------------------------------------------------
# batched border-event driver
# ----------------------------------------------------------------------
def run_border_simulations(
    graph: TimedSignalGraph,
    periods: Optional[int] = None,
    kernel: str = "auto",
    workers: Optional[int] = None,
    border: Optional[Sequence[Event]] = None,
):
    """Run all border-initiated simulations against one compiled graph.

    Returns ``{border_event: EventInitiatedSimulation}`` in border
    order — the input of the cycle-time algorithm's distance collection.
    ``workers`` > 1 fans the ``b`` simulations out over a thread pool;
    the compiled structure is built once up front and shared read-only,
    so the workers are safe (the pure-Python kernels still serialise on
    the GIL, so this mainly helps when delays trigger non-trivial
    arithmetic such as large Fractions).
    """
    from .simulation import EventInitiatedSimulation

    if border is None:
        border = graph.border_events
    else:
        border = tuple(border)
    if periods is None:
        periods = len(border)
    kernel = resolve_kernel(graph, kernel)
    if kernel != "legacy":
        # Build (and cache) the shared structures before any fan-out.
        cg = compiled_graph(graph)
        cg.programs(kernel == "float")

    def simulate(event):
        return EventInitiatedSimulation(graph, event, periods, kernel=kernel)

    if workers is not None and workers > 1 and len(border) > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=workers) as pool:
            simulations = list(pool.map(simulate, border))
    else:
        simulations = [simulate(event) for event in border]
    return dict(zip(border, simulations))


# ----------------------------------------------------------------------
# process-pool chunk executor
# ----------------------------------------------------------------------
#: Executor names accepted by the batch entry points.  ``thread`` fans
#: chunks over a thread pool (NumPy releases the GIL inside its large
#: vector ops, but the Python-level period loop still serialises);
#: ``process`` ships chunks to a pool of worker *processes*, so
#: GIL-bound sweeps — many small vector ops per period on big graphs —
#: scale with cores.
EXECUTORS = ("thread", "process")

_pool_lock = threading.Lock()
_pool = None
_pool_workers = 0
_pool_method: Optional[str] = None
_pool_tokens = itertools.count(1)

#: Per-process memo of shipped compiled graphs, keyed by the parent's
#: shipping token (unique per CompiledGraph object, never reused).
_CHILD_COMPILED: "OrderedDict[Tuple[int, int], CompiledGraph]" = OrderedDict()
_CHILD_COMPILED_LIMIT = 8


def _chunk_child_init() -> None:
    """Tie each chunk-executor child to its parent's lifetime.

    A SIGKILLed parent (worker crash, chaos test) cannot shut its
    executor down, and orphaned children would otherwise block forever
    on the call queue — keeping inherited pipes open.  On Linux,
    ``PR_SET_PDEATHSIG`` makes the kernel deliver SIGKILL to the child
    the moment the parent dies; elsewhere this is a silent no-op.
    """
    if not sys.platform.startswith("linux"):
        return
    try:
        import ctypes
        import signal as _signal

        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(1, _signal.SIGKILL)  # PR_SET_PDEATHSIG
        if os.getppid() == 1:
            # The parent died in the window before prctl took effect.
            os._exit(0)
    except Exception:
        pass


def process_pool(workers: Optional[int] = None):
    """The shared chunk-executor process pool (created on first use).

    Grows (never shrinks) to ``workers``; the pool is process-wide so
    repeated sweeps reuse warm workers instead of paying a fork per
    call.  Prefers the ``fork`` start method — children inherit the
    imported library instead of re-importing it — falling back to the
    platform default elsewhere.
    """
    global _pool, _pool_workers, _pool_method
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    want = workers or max(1, (os.cpu_count() or 2) - 0)
    with _pool_lock:
        if _pool is not None and _pool_workers >= want:
            return _pool
        previous = _pool
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        _pool = ProcessPoolExecutor(
            max_workers=want, mp_context=context,
            initializer=_chunk_child_init,
        )
        _pool_workers = want
        _pool_method = context.get_start_method()
    if previous is not None:
        previous.shutdown(wait=False)
    return _pool


def shutdown_process_pool() -> None:
    """Tear the shared chunk-executor pool down (tests, atexit)."""
    global _pool, _pool_workers
    with _pool_lock:
        pool, _pool, _pool_workers = _pool, None, 0
    if pool is not None:
        pool.shutdown(wait=True)


def _pool_payload(cg: CompiledGraph) -> Tuple[Tuple[int, int], bytes]:
    """A stable shipping token and pickled blob for one compiled graph.

    The token is ``(parent pid, counter)`` so a forked pool worker that
    outlives several parents can never confuse two graphs; the blob is
    pickled once per CompiledGraph object and cached on it
    (:meth:`CompiledGraph.__getstate__` strips both attributes, so the
    blob never nests inside itself through the disk cache).
    """
    token = getattr(cg, "_pool_token", None)
    if token is None:
        token = (os.getpid(), next(_pool_tokens))
        cg._pool_blob = pickle.dumps(cg, protocol=pickle.HIGHEST_PROTOCOL)
        cg._pool_token = token
    return token, cg._pool_blob


#: Parent-side registry of live shared-memory sweep blocks, so a
#: crashed/interrupted sweep still unlinks its segments at interpreter
#: exit instead of leaking them in /dev/shm.
_SHM_LOCK = threading.Lock()
_SHM_LIVE: Dict[str, object] = {}
_SHM_STATS = {"created": 0, "unlinked": 0, "fallback": 0}


def shm_stats() -> Dict[str, int]:
    """Shared-memory segment counters (created/unlinked/fallback)."""
    return dict(_SHM_STATS)


class _SharedMatrix:
    """One sweep's ``(S, m)`` delay matrix in a shared-memory block.

    Created once per process-executor sweep; chunks ship only the
    block *name* plus a ``(lo, hi)`` row range, so chunk dispatch never
    pickles the matrix.  The parent closes + unlinks the block in the
    sweep's ``finally`` (and, crash-safe, at interpreter exit via the
    module registry).
    """

    def __init__(self, matrix: np.ndarray):
        from multiprocessing import shared_memory

        if os.environ.get("REPRO_DISABLE_SHM"):
            # Chaos hook: pretend /dev/shm is unavailable so the
            # pickled-fallback path (and its counter) is exercised.
            raise OSError("shared memory disabled by REPRO_DISABLE_SHM")
        self._shm = shared_memory.SharedMemory(
            create=True, size=matrix.nbytes
        )
        self.name = self._shm.name
        self.shape = matrix.shape
        view = np.ndarray(matrix.shape, dtype=np.float64,
                          buffer=self._shm.buf)
        view[:] = matrix
        del view
        with _SHM_LOCK:
            _SHM_LIVE[self.name] = self._shm
        _SHM_STATS["created"] += 1

    def close(self) -> None:
        with _SHM_LOCK:
            shm = _SHM_LIVE.pop(self.name, None)
        if shm is None:
            return
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        _SHM_STATS["unlinked"] += 1


def _cleanup_shared_matrices() -> None:
    """Unlink any sweep blocks still alive (crash-safe atexit hook)."""
    with _SHM_LOCK:
        leaked = list(_SHM_LIVE.items())
        _SHM_LIVE.clear()
    for _, shm in leaked:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        _SHM_STATS["unlinked"] += 1


# The pool must drain before segments vanish; atexit runs LIFO, so the
# segment sweep is registered first and the pool shutdown second.
atexit.register(_cleanup_shared_matrices)
atexit.register(shutdown_process_pool)


def _child_attach_matrix(name: str, shape: Tuple[int, int], untrack: bool):
    """Attach a parent sweep block inside a pool worker.

    ``untrack`` applies the spawn/forkserver workaround: those workers
    own a *separate* resource tracker which would unlink the segment a
    second time when the worker exits (the parent owns the lifecycle),
    so the attach-side registration is withdrawn.  Fork workers share
    the parent's tracker — there the attach-side registration collapses
    into the parent's own and must be left alone.  Returns
    ``(array, shm)``; the caller must drop every view before closing
    ``shm``.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=name)
    if untrack:
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    return np.ndarray(shape, dtype=np.float64, buffer=shm.buf), shm


def _pool_run_chunk(
    token: Tuple[int, int],
    blob: Optional[bytes],
    shm_name: Optional[str],
    shm_shape: Optional[Tuple[int, int]],
    shm_untrack: bool,
    lo: int,
    hi: int,
    origin_ids: Sequence[int],
    periods: int,
    kernel: str,
    unroll: Optional[int],
    matrix: Optional[np.ndarray],
) -> List[np.ndarray]:
    """Run one chunk's border simulations inside a pool worker.

    Executed in the child process.  The compiled graph is unpickled at
    most once per (worker, token) and memoised, so a sweep split into
    many chunks pays the rebuild cost once per worker, not per chunk.
    The delay rows come from the parent's shared-memory sweep block
    (``shm_name``; a contiguous zero-copy row slice) — ``matrix`` is
    only populated on the pickling fallback path for platforms without
    working shared memory.
    """
    cg = _CHILD_COMPILED.get(token)
    if cg is None:
        cg = pickle.loads(blob)
        _CHILD_COMPILED[token] = cg
        while len(_CHILD_COMPILED) > _CHILD_COMPILED_LIMIT:
            _CHILD_COMPILED.popitem(last=False)
    else:
        _CHILD_COMPILED.move_to_end(token)
    if shm_name is not None:
        full, shm = _child_attach_matrix(shm_name, shm_shape, shm_untrack)
        bindings = None
        try:
            bindings = BatchBindings(cg, full[lo:hi])
            tables = _run_chunk_tables(
                bindings, origin_ids, periods, kernel, unroll
            )
        finally:
            # every view of the mapping must be gone before close()
            # releases the exported buffer
            del bindings
            del full
            shm.close()
        return tables
    bindings = BatchBindings(cg, matrix)
    return _run_chunk_tables(bindings, origin_ids, periods, kernel, unroll)


def _submit_chunk(
    pool,
    token: Tuple[int, int],
    blob: bytes,
    shared: Optional[_SharedMatrix],
    matrix: np.ndarray,
    lo: int,
    hi: int,
    origin_ids: Sequence[int],
    periods: int,
    kernel: str,
    unroll: Optional[int],
):
    """Submit one chunk to the process pool.

    The single submission boundary of the process executor — tests
    interpose here to assert exactly what crosses the pickle fence:
    with a live shared block the payload is the block name plus a row
    range, never the matrix.
    """
    if shared is not None:
        return pool.submit(
            _pool_run_chunk, token, blob, shared.name, shared.shape,
            _pool_method != "fork", lo, hi, origin_ids, periods,
            kernel, unroll, None,
        )
    return pool.submit(
        _pool_run_chunk, token, blob, None, None, False, 0, hi - lo,
        origin_ids, periods, kernel, unroll,
        np.ascontiguousarray(matrix[lo:hi]),
    )


# ----------------------------------------------------------------------
# vectorized multi-binding batch kernel
# ----------------------------------------------------------------------
class _BatchLevel:
    """One dependency level of a batch program.

    All rows in a level only read buffer slots written by earlier
    levels (or the previous period), so the whole level is one gather
    ``buf[:, offsets] + dmat[:, lo:hi]`` followed by a per-row segment
    maximum — no Python-level loop over rows.
    """

    __slots__ = ("targets", "starts", "offsets", "lo", "hi", "single",
                 "empty_targets")

    def __init__(self, targets, starts, offsets, lo, hi, single,
                 empty_targets):
        self.targets = targets
        self.starts = starts
        self.offsets = offsets
        self.lo = lo
        self.hi = hi
        self.single = single
        self.empty_targets = empty_targets


class _BatchProgram:
    """A per-period-class arc program flattened to index arrays.

    ``cols`` maps every flattened arc (level-major, graph in-arc order
    within a row) to its column in the ``(S, m)`` delay matrix, so a
    binding's per-program delay block is the single fancy-index
    ``matrix[:, cols]``.
    """

    __slots__ = ("levels", "cols")

    def __init__(self, levels, cols):
        self.levels = levels
        self.cols = cols


def _compile_batch_program(rows, n):
    """Level-schedule ``(target, [(offset, col), ...])`` rows.

    Rows arrive in topological id order; an arc with ``offset >= n``
    reads the *current* period, i.e. a row computed earlier, which
    pins the row's level to one past its deepest same-period source.
    Rows of one level never read each other, so they can be reduced in
    a single vectorized step.
    """
    level_of_tid: Dict[int, int] = {}
    row_levels = []
    for target, arcs in rows:
        level = 0
        for offset, _ in arcs:
            if offset >= n:
                # Sources outside the row set (rows before an origin
                # suffix) hold fixed sentinel values, i.e. depth -1.
                depth = level_of_tid.get(offset - n, -1) + 1
                if depth > level:
                    level = depth
        level_of_tid[target - n] = level
        row_levels.append(level)
    levels: List[_BatchLevel] = []
    cols_flat: List[int] = []
    position = 0
    for level in range(max(row_levels) + 1 if row_levels else 0):
        targets: List[int] = []
        starts: List[int] = []
        offsets: List[int] = []
        empty: List[int] = []
        single = True
        for index, (target, arcs) in enumerate(rows):
            if row_levels[index] != level:
                continue
            if not arcs:
                empty.append(target)
                continue
            if len(arcs) != 1:
                single = False
            starts.append(len(offsets))
            targets.append(target)
            for offset, col in arcs:
                offsets.append(offset)
                cols_flat.append(col)
        levels.append(
            _BatchLevel(
                targets=np.asarray(targets, dtype=np.intp),
                starts=np.asarray(starts, dtype=np.intp),
                offsets=np.asarray(offsets, dtype=np.intp),
                lo=position,
                hi=position + len(offsets),
                single=single,
                empty_targets=(
                    np.asarray(empty, dtype=np.intp) if empty else None
                ),
            )
        )
        position += len(offsets)
    return _BatchProgram(levels, np.asarray(cols_flat, dtype=np.intp))


class _BatchStructure:
    """The batch-compiled view of one topology: index-array programs
    for the three period classes plus per-origin period-0 suffixes."""

    def __init__(self, cg: CompiledGraph):
        graph = cg.graph
        self.pairs: List[Tuple[Event, Event]] = [arc.pair for arc in graph.arcs]
        col_of = {pair: index for index, pair in enumerate(self.pairs)}
        n = cg.n
        id_of = cg.id_of
        order = cg.order
        self._p0_rows: List[Tuple[int, List[Tuple[int, int]]]] = []
        for tid, event in enumerate(order):
            self._p0_rows.append(
                (
                    n + tid,
                    [
                        (n + id_of[source], col_of[(source, event)])
                        for source, tokens, _, _ in cg.in_compact[event]
                        if tokens == 0
                    ],
                )
            )
        p1_rows: List[Tuple[int, List[Tuple[int, int]]]] = []
        ps_rows: List[Tuple[int, List[Tuple[int, int]]]] = []
        for tid in cg.rep_ids:
            event = order[tid]
            arcs_one: List[Tuple[int, int]] = []
            arcs_steady: List[Tuple[int, int]] = []
            for source, tokens, _, source_rep in cg.in_compact[event]:
                offset = n + id_of[source] - tokens * n
                col = col_of[(source, event)]
                if tokens or source_rep:
                    arcs_one.append((offset, col))
                if source_rep:
                    arcs_steady.append((offset, col))
            p1_rows.append((n + tid, arcs_one))
            ps_rows.append((n + tid, arcs_steady))
        self.n = n
        self._p1_rows = p1_rows
        self._ps_rows = ps_rows
        self.p0 = _compile_batch_program(self._p0_rows, n)
        self.p1 = _compile_batch_program(p1_rows, n)
        self.ps = _compile_batch_program(ps_rows, n)
        self._suffixes: Dict[int, _BatchProgram] = {}
        self._fused_plans: Dict[int, "_FusedPlan"] = {}
        self._numba_arrays: Optional[tuple] = None
        self._lock = threading.Lock()

    def p0_suffix(self, origin_id: int) -> _BatchProgram:
        """The period-0 program restricted to rows after ``origin_id``.

        Ids equal topological positions, so the instances an
        event-initiated simulation computes in period 0 are exactly
        the rows ``origin_id + 1 .. n - 1``; earlier rows stay at the
        ``-inf`` sentinel, which the level gather reads back as
        neglected arcs, exactly like the scalar kernel.
        """
        if origin_id not in self._suffixes:
            self._suffixes[origin_id] = _compile_batch_program(
                self._p0_rows[origin_id + 1:], self.n
            )
        return self._suffixes[origin_id]

    def fused_plan(self, span: int) -> "_FusedPlan":
        """The fused whole-period plan unrolled over ``span`` periods
        (compiled once per (topology, span), cached)."""
        plan = self._fused_plans.get(span)
        if plan is None:
            with self._lock:
                plan = self._fused_plans.get(span)
                if plan is None:
                    with _phase("codegen"):
                        plan = _FusedPlan(self, span)
                    self._fused_plans[span] = plan
        return plan

    def numba_arrays(self) -> tuple:
        """The period-class programs as flat ``(targets, starts,
        offsets, cols)`` arrays — the input of the per-sample numba
        (or pure-Python reference) interpreter."""
        if self._numba_arrays is None:

            def flat(rows):
                starts = [0]
                offsets: List[int] = []
                cols: List[int] = []
                targets: List[int] = []
                for target, arcs in rows:
                    targets.append(target)
                    for offset, col in arcs:
                        offsets.append(offset)
                        cols.append(col)
                    starts.append(len(offsets))
                return (
                    np.asarray(targets, dtype=np.intp),
                    np.asarray(starts, dtype=np.intp),
                    np.asarray(offsets, dtype=np.intp),
                    np.asarray(cols, dtype=np.intp),
                )

            self._numba_arrays = (
                flat(self._p0_rows),
                flat(self._p1_rows),
                flat(self._ps_rows),
            )
        return self._numba_arrays


def _batch_structure_of(cg: CompiledGraph) -> _BatchStructure:
    """The (lazily built, cached) batch structure of a compiled graph.

    Adopted/rebound graphs carry the originating structure as a
    *donor*; it is reused — fused plans, suffix programs and all — iff
    this graph's own arc insertion order matches the donor's column
    order (the matrix-column contract of :class:`BatchBindings`).
    """
    if cg._batch_structure is None:
        donor = getattr(cg, "_batch_donor", None)
        if donor is not None and donor.pairs == [
            arc.pair for arc in cg.graph.arcs
        ]:
            cg._batch_structure = donor
        else:
            cg._batch_structure = _BatchStructure(cg)
    return cg._batch_structure


class BatchBindings:
    """S delay bindings over one compiled topology.

    ``matrix`` is an ``(S, m)`` float64 matrix whose columns follow
    the graph's arc insertion order (``base.graph.arcs``; the order is
    exposed as :attr:`pairs`).  Row ``s`` is one complete delay
    binding — the batched equivalent of ``graph.copy()`` + S
    ``set_delay`` calls + :func:`rebind_compiled`, at a fraction of
    the cost.
    """

    def __init__(self, base: CompiledGraph, matrix):
        self.base = base
        self.structure = _batch_structure_of(base)
        matrix = np.ascontiguousarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.structure.pairs):
            raise SignalGraphError(
                "delay matrix must have shape (S, %d) for %r, got %r"
                % (len(self.structure.pairs), base.graph.name, matrix.shape)
            )
        if matrix.shape[0] < 1:
            raise SignalGraphError("need at least one delay binding")
        self.matrix = matrix
        self._dmats: Dict[int, np.ndarray] = {}
        self._dmats_t: Dict[int, np.ndarray] = {}

    @classmethod
    def nominal(cls, base: CompiledGraph, samples: int = 1) -> "BatchBindings":
        """``samples`` copies of the graph's own (floatified) delays."""
        row = np.asarray(
            [float(arc.delay) for arc in base.graph.arcs], dtype=np.float64
        )
        return cls(base, np.tile(row, (samples, 1)))

    @property
    def pairs(self) -> List[Tuple[Event, Event]]:
        """Arc ``(source, target)`` pairs, one per matrix column."""
        return self.structure.pairs

    @property
    def samples(self) -> int:
        return self.matrix.shape[0]

    def subset(self, lo: int, hi: int) -> "BatchBindings":
        """Bindings ``lo .. hi-1`` as a view (no matrix copy)."""
        clone = object.__new__(BatchBindings)
        clone.base = self.base
        clone.structure = self.structure
        clone.matrix = self.matrix[lo:hi]
        clone._dmats = {}
        clone._dmats_t = {}
        return clone

    def delays_for(self, program: _BatchProgram) -> np.ndarray:
        """The ``(S, arcs)`` delay block of one program (cached)."""
        key = id(program)
        if key not in self._dmats:
            self._dmats[key] = self.matrix[:, program.cols]
        return self._dmats[key]

    def delays_t_for(self, program: "_FusedProgram") -> np.ndarray:
        """The transposed ``(arcs, S)`` delay block of one fused
        program.  Keyed by the program's ``cols`` array so the frame
        variants of one span program (which share ``cols`` by
        reference) share a single cached block."""
        key = id(program.cols)
        if key not in self._dmats_t:
            self._dmats_t[key] = self.matrix.T[program.cols]
        return self._dmats_t[key]


def _batch_sweep(program: _BatchProgram, dmat: np.ndarray,
                 buffer: np.ndarray, init: float) -> None:
    """Relax one period's program for all S bindings at once.

    Mirrors :func:`_sweep` with the sample axis vectorized: per level
    one gather of the source slots, one in-place add of the delay
    block, and one ``np.maximum.reduceat`` segment maximum scattered
    back to the target slots (or a plain assignment when every row of
    the level has a single in-arc).
    """
    for level in program.levels:
        if level.empty_targets is not None:
            buffer[:, level.empty_targets] = init
        if level.hi > level.lo:
            values = buffer[:, level.offsets]
            values += dmat[:, level.lo:level.hi]
            if level.single:
                buffer[:, level.targets] = values
            else:
                buffer[:, level.targets] = np.maximum.reduceat(
                    values, level.starts, axis=1
                )


def run_initiated_batch(
    bindings: BatchBindings, origin_id: int, periods: int
) -> np.ndarray:
    """Initiator times of S event-initiated simulations in lockstep.

    Returns an ``(S, periods)`` float64 array whose ``[s, i-1]`` entry
    is ``t_{g_0}(g_i)`` under binding ``s`` (``-inf`` where the
    initiator does not re-occur), bit-identical to S scalar
    :func:`run_initiated` runs.
    """
    structure = bindings.structure
    n = structure.n
    samples = bindings.samples
    profiler = active_profiler()
    with _phase("run"):
        buffer = np.full((samples, 2 * n), NEG_INF)
        buffer[:, n + origin_id] = 0.0
        p0 = structure.p0_suffix(origin_id)
        _batch_sweep(p0, bindings.delays_for(p0), buffer, NEG_INF)
        collected = np.full((samples, periods), NEG_INF)
        column = n + origin_id
        for period in range(1, periods + 1):
            started = time.perf_counter() if profiler is not None else 0.0
            buffer[:, :n] = buffer[:, n:]
            program = structure.p1 if period == 1 else structure.ps
            _batch_sweep(program, bindings.delays_for(program), buffer, NEG_INF)
            collected[:, period - 1] = buffer[:, column]
            if profiler is not None:
                profiler.record_period(time.perf_counter() - started)
    return collected


# ----------------------------------------------------------------------
# fused period programs
# ----------------------------------------------------------------------
#: Batch-kernel names accepted by the batch entry points.  ``auto``
#: resolves to ``fused``; ``numba`` falls back to ``fused`` (with a
#: warning) when numba is not importable, so it is never a dependency.
BATCH_KERNELS = ("auto", "batch", "fused", "numba")


def resolve_batch_kernel(kernel: Optional[str]) -> str:
    """Normalise a batch-kernel selector to ``batch``/``fused``/``numba``."""
    if kernel is None or kernel == "auto":
        return "fused"
    if kernel not in ("batch", "fused", "numba"):
        raise SignalGraphError(
            "unknown batch kernel %r (choose from %s)"
            % (kernel, ", ".join(BATCH_KERNELS))
        )
    if kernel == "numba" and not numba_available():
        warnings.warn(
            "numba is not importable; falling back to the fused kernel",
            RuntimeWarning,
            stacklevel=3,
        )
        return "fused"
    return kernel


class _FusedLevel:
    """One dependency level of a fused program, degree-sorted.

    Rows are sorted by in-degree descending and their arcs laid out
    *j-major* in ``offsets`` (all first arcs of the level, then all
    second arcs of rows with >= 2, ...), so the rows still having a
    j-th arc are exactly rows ``0 .. k-1`` and each reduction step is
    one contiguous-slice ``np.maximum`` — no segment index arrays, no
    axis-0 ``reduceat``.

    ``offsets``/``targets``/``empty`` address the slot-major frame-ring
    buffer (rows = slots, columns = stacked bindings); ``dlo`` is the
    level's start inside the program's flat ``cols`` array.
    """

    __slots__ = ("targets", "offsets", "empty", "nrows", "steps", "dlo")

    def __init__(self, targets, offsets, empty, nrows, steps, dlo):
        self.targets = targets
        self.offsets = offsets
        self.empty = empty
        self.nrows = nrows
        self.steps = steps
        self.dlo = dlo


class _FusedProgram:
    """A whole span of periods as one list of fused levels.

    ``cols`` maps every flattened arc (level-major, j-major within a
    level) to its delay-matrix column; frame-ring variants of one span
    share it by reference (see :meth:`shifted`), so one transposed
    delay block serves every variant.
    """

    __slots__ = ("levels", "cols", "span", "max_level_arcs")

    def __init__(self, levels, cols, span, max_level_arcs):
        self.levels = levels
        self.cols = cols
        self.span = span
        self.max_level_arcs = max_level_arcs

    def shifted(self, shift: int, size: int) -> "_FusedProgram":
        """The same program relocated ``shift`` slots down the ring."""
        if shift == 0:
            return self
        levels = [
            _FusedLevel(
                targets=(level.targets + shift) % size,
                offsets=(level.offsets + shift) % size,
                empty=(
                    None if level.empty is None
                    else (level.empty + shift) % size
                ),
                nrows=level.nrows,
                steps=level.steps,
                dlo=level.dlo,
            )
            for level in self.levels
        ]
        return _FusedProgram(levels, self.cols, self.span, self.max_level_arcs)


def _build_fused_levels(rows):
    """Level-schedule span-relative ``(target, [(slot, col), ...])``
    rows into degree-sorted fused levels.

    Rows arrive in execution order (periods ascending, topological ids
    within a period), so every source that *is* written by this program
    appears in ``level_of`` before any row reads it; sources absent
    from ``level_of`` are external (the span's previous frame) and have
    depth -1.  Empty rows land at level 0 and are written (to ``-inf``)
    there, before any same-span consumer reads them — ring frames hold
    stale values from ``frames`` periods ago, so they must not leak.

    Returns ``(levels, cols, max_level_arcs, level_of_target)``.
    """
    level_of: Dict[int, int] = {}
    row_levels: List[int] = []
    for target, arcs in rows:
        level = 0
        for slot, _ in arcs:
            depth = level_of.get(slot, -1) + 1
            if depth > level:
                level = depth
        level_of[target] = level
        row_levels.append(level)
    levels: List[_FusedLevel] = []
    cols_flat: List[int] = []
    max_arcs = 0
    for level in range(max(row_levels) + 1 if row_levels else 0):
        members = [rows[i] for i, lv in enumerate(row_levels) if lv == level]
        full = [(t, a) for t, a in members if a]
        empty = [t for t, a in members if not a]
        full.sort(key=lambda row: -len(row[1]))
        offsets: List[int] = []
        steps: List[Tuple[int, int, int]] = []
        dlo = len(cols_flat)
        if full:
            for j in range(len(full[0][1])):
                start = len(offsets)
                count = 0
                for _, arcs in full:
                    if len(arcs) <= j:
                        break
                    offsets.append(arcs[j][0])
                    cols_flat.append(arcs[j][1])
                    count += 1
                if j:
                    steps.append((count, start, start + count))
        max_arcs = max(max_arcs, len(offsets))
        levels.append(
            _FusedLevel(
                targets=np.asarray([t for t, _ in full], dtype=np.intp),
                offsets=np.asarray(offsets, dtype=np.intp),
                empty=np.asarray(empty, dtype=np.intp) if empty else None,
                nrows=len(full),
                steps=tuple(steps),
                dlo=dlo,
            )
        )
    return levels, np.asarray(cols_flat, dtype=np.intp), max_arcs, level_of


def _expand_span_rows(rows, n: int, span: int):
    """Unroll per-period rows over ``span`` periods in ring-relative
    slots: frame 0 is the span's previous period, frames ``1..span``
    are the periods it computes.  Rolling-buffer offsets translate as
    ``offset < n`` -> previous period (frame ``u``), ``offset >= n`` ->
    same period (frame ``u + 1``)."""
    expanded = []
    for u in range(span):
        for target, arcs in rows:
            expanded.append(
                (
                    (u + 1) * n + (target - n),
                    [
                        (
                            u * n + offset if offset < n
                            else (u + 1) * n + (offset - n),
                            col,
                        )
                        for offset, col in arcs
                    ],
                )
            )
    return expanded


class _FusedPlan:
    """Everything needed to sweep whole periods in large fused ops.

    * ``p0`` — the full period-0 program in frame 0 (all origins run
      it *stacked*: every row computes ``-inf`` until the per-origin
      pin, see :func:`run_border_sweep_fused`);
    * ``p1`` — period 1 (always frame 0 -> frame 1);
    * ``steady[f]`` — the steady program spanning ``span`` periods,
      one variant per start frame ``f`` of the ring;
    * ``tail[f]`` — single-period steady variants finishing off period
      counts not divisible by ``span`` (aliases ``steady`` when
      ``span == 1``).

    The ring has ``frames = span + 1`` frames so a span never
    overwrites the frame it reads; period ``p`` always lives at frame
    ``p % frames``.
    """

    __slots__ = ("n", "span", "frames", "p0", "p0_level_of", "p1",
                 "steady", "tail", "max_level_arcs")

    def __init__(self, structure: "_BatchStructure", span: int):
        n = structure.n
        self.n = n
        self.span = span
        self.frames = span + 1
        size = self.frames * n
        p0_rows = [
            (target - n, [(offset - n, col) for offset, col in arcs])
            for target, arcs in structure._p0_rows
        ]
        levels, cols, max_arcs, level_of = _build_fused_levels(p0_rows)
        self.p0 = _FusedProgram(levels, cols, 1, max_arcs)
        self.p0_level_of = level_of
        levels, cols, arcs1, _ = _build_fused_levels(
            _expand_span_rows(structure._p1_rows, n, 1)
        )
        self.p1 = _FusedProgram(levels, cols, 1, arcs1)
        max_arcs = max(max_arcs, arcs1)
        levels, cols, arcs_s, _ = _build_fused_levels(
            _expand_span_rows(structure._ps_rows, n, span)
        )
        steady = _FusedProgram(levels, cols, span, arcs_s)
        max_arcs = max(max_arcs, arcs_s)
        self.steady = [steady.shifted(f * n, size) for f in range(self.frames)]
        if span == 1:
            self.tail = self.steady
        else:
            levels, cols, arcs_t, _ = _build_fused_levels(
                _expand_span_rows(structure._ps_rows, n, 1)
            )
            tail = _FusedProgram(levels, cols, 1, arcs_t)
            max_arcs = max(max_arcs, arcs_t)
            self.tail = [tail.shifted(f * n, size) for f in range(self.frames)]
        self.max_level_arcs = max_arcs


def _resolve_unroll(unroll: Optional[int], stack: int, periods: int) -> int:
    """The period-unroll span for ``stack`` stacked origins.

    Unrolling trades program size for fewer, larger vector ops; its
    win shrinks as the stacked width ``b * S`` grows, so the automatic
    policy unrolls aggressively only for small ``b``.  Always clamped
    so a span never exceeds the steady periods available."""
    if unroll is not None:
        if unroll < 1 or unroll > 8:
            raise SignalGraphError(
                "unroll must be between 1 and 8, got %r" % (unroll,)
            )
        limit = unroll
    elif stack <= 1:
        limit = 4
    elif stack == 2:
        limit = 2
    else:
        limit = 1
    return max(1, min(limit, periods - 1))


_FUSED_SCRATCH = threading.local()


def _fused_scratch(rows: int, arcs: int, width: int):
    """Reusable ``(buffer, workspace)`` scratch for fused sweeps.

    The fused execution order writes every slot before any read (p0
    covers all of frame 0, including ``-inf`` no-predecessor rows;
    p1/steady write every repetitive row of their target frames before
    a later level or a collect reads it), so the scratch needs no
    initialisation — which also makes it safe to reuse across sweeps.
    Reuse is thread-local and sized to the largest sweep seen, so the
    hot path of repeated sweeps pays neither the ~``frames * n * b * S``
    fill nor the page faults of a fresh allocation.
    """
    cached = getattr(_FUSED_SCRATCH, "arrays", None)
    if (
        cached is not None
        and cached[0].shape[1] == width
        and cached[0].shape[0] >= rows
        and cached[1].shape[0] >= arcs
    ):
        buffer, workspace = cached
    else:
        buffer = np.empty((rows, width))
        workspace = np.empty((max(arcs, 1), width))
        _FUSED_SCRATCH.arrays = (buffer, workspace)
    return buffer[:rows], workspace


def _run_fused_level(level: _FusedLevel, dmat_t: np.ndarray,
                     buffer: np.ndarray, workspace: np.ndarray,
                     stack: int) -> None:
    """Relax one fused level for all stacked bindings at once."""
    arcs = level.offsets.shape[0]
    if arcs:
        values = workspace[:arcs]
        np.take(buffer, level.offsets, axis=0, out=values)
        block = dmat_t[level.dlo:level.dlo + arcs]
        if stack > 1:
            # one delay column per *sample*: broadcast over the
            # stacked-origin axis without materialising b copies
            values.reshape(arcs, stack, -1)[...] += block[:, None, :]
        else:
            values += block
        out = values[:level.nrows]
        for count, lo, hi in level.steps:
            np.maximum(out[:count], values[lo:hi], out=out[:count])
        buffer[level.targets] = out
    if level.empty is not None:
        buffer[level.empty] = NEG_INF


def run_border_sweep_fused(
    bindings: BatchBindings,
    origin_ids: Sequence[int],
    periods: int,
    unroll: Optional[int] = None,
) -> List[np.ndarray]:
    """All border-initiated batch simulations as one fused sweep.

    Returns one ``(S, periods)`` initiator-times table per origin (the
    same tables :func:`run_initiated_batch` produces, bit-identically),
    but computes them in a single slot-major ``(frames * n, b * S)``
    buffer: the ``b`` origins are stacked along the sample axis, every
    level of every period is a handful of large vector ops, and the
    frame ring replaces the period-over-period buffer roll with
    precomputed index-array variants.

    Period 0 runs the *full* p0 program stacked: with only ``-inf``
    seeds every row evaluates to ``-inf``, after which each origin's
    own row is pinned to 0 in its column block — immediately after the
    level that wrote it, before any later level reads it — which
    reproduces the per-origin suffix semantics of the scalar kernel
    exactly.  Origins must be repetitive (border) events.
    """
    structure = bindings.structure
    n = structure.n
    stack = len(origin_ids)
    samples = bindings.samples
    span = _resolve_unroll(unroll, stack, periods)
    plan = structure.fused_plan(span)
    frames = plan.frames
    width = stack * samples
    profiler = active_profiler()
    with _phase("run"):
        buffer, workspace = _fused_scratch(
            frames * n, plan.max_level_arcs, width
        )
        # every cell is assigned by a collect below, so no -inf fill
        out = np.empty((stack, samples, periods))

        pins: Dict[int, List[Tuple[int, int]]] = {}
        for gi, origin_id in enumerate(origin_ids):
            pins.setdefault(plan.p0_level_of[origin_id], []).append(
                (gi, origin_id)
            )
        dmat_t = bindings.delays_t_for(plan.p0)
        for index, level in enumerate(plan.p0.levels):
            _run_fused_level(level, dmat_t, buffer, workspace, stack)
            for gi, origin_id in pins.get(index, ()):
                buffer[origin_id, gi * samples:(gi + 1) * samples] = 0.0

        def collect(period: int) -> None:
            base = (period % frames) * n
            for gi, origin_id in enumerate(origin_ids):
                out[gi, :, period - 1] = buffer[
                    base + origin_id, gi * samples:(gi + 1) * samples
                ]

        def run_span(program: _FusedProgram, first_period: int) -> None:
            started = time.perf_counter() if profiler is not None else 0.0
            dmat = bindings.delays_t_for(program)
            for level in program.levels:
                _run_fused_level(level, dmat, buffer, workspace, stack)
            for u in range(program.span):
                collect(first_period + u)
            if profiler is not None:
                share = (time.perf_counter() - started) / program.span
                for _ in range(program.span):
                    profiler.record_period(share)

        period = 1
        if periods >= 1:
            run_span(plan.p1, 1)
            period = 2
        while period + span - 1 <= periods:
            run_span(plan.steady[(period - 1) % frames], period)
            period += span
        while period <= periods:
            run_span(plan.tail[(period - 1) % frames], period)
            period += 1
    return [out[gi] for gi in range(stack)]


# ----------------------------------------------------------------------
# optional numba backend
# ----------------------------------------------------------------------
def _sweep_flat(matrix, n, periods, origin_ids,
                p0_starts, p0_offsets, p0_cols,
                p1_targets, p1_starts, p1_offsets, p1_cols,
                ps_targets, ps_starts, ps_offsets, ps_cols,
                out):
    """Per-sample border sweep over flat program arrays.

    Plain nested loops on purpose: this is both the pure-Python
    reference interpreter (always available, used by the
    cross-validation tests) and the function handed to ``numba.njit``
    when numba is importable.  Relaxation order and arc order match
    :func:`_sweep` exactly, so results are bit-identical to the
    per-sample float64 kernel.
    """
    neg_inf = -np.inf
    buffer = np.empty(2 * n, dtype=np.float64)
    for gi in range(origin_ids.shape[0]):
        origin = origin_ids[gi]
        for s in range(matrix.shape[0]):
            for i in range(2 * n):
                buffer[i] = neg_inf
            buffer[n + origin] = 0.0
            for row in range(origin + 1, n):
                best = neg_inf
                for a in range(p0_starts[row], p0_starts[row + 1]):
                    value = buffer[p0_offsets[a]] + matrix[s, p0_cols[a]]
                    if value > best:
                        best = value
                buffer[n + row] = best
            for period in range(1, periods + 1):
                for i in range(n):
                    buffer[i] = buffer[n + i]
                if period == 1:
                    targets, starts = p1_targets, p1_starts
                    offsets, cols = p1_offsets, p1_cols
                else:
                    targets, starts = ps_targets, ps_starts
                    offsets, cols = ps_offsets, ps_cols
                for row in range(targets.shape[0]):
                    best = neg_inf
                    for a in range(starts[row], starts[row + 1]):
                        value = buffer[offsets[a]] + matrix[s, cols[a]]
                        if value > best:
                            best = value
                    buffer[targets[row]] = best
                out[gi, s, period - 1] = buffer[n + origin]
    return out


_numba_fn = None
_numba_failed = False


def _numba_compiled():
    """The njit-compiled :func:`_sweep_flat`, or ``None``.

    Compilation is attempted once; any failure (numba missing, numba
    present but unable to target this platform) permanently selects
    the fallback so sweeps never re-pay a failing import.
    """
    global _numba_fn, _numba_failed
    if _numba_fn is None and not _numba_failed:
        try:
            import numba

            _numba_fn = numba.njit(cache=False, fastmath=False)(_sweep_flat)
        except Exception:
            _numba_failed = True
    return _numba_fn


def numba_available() -> bool:
    """Whether the optional numba backend can be used."""
    return _numba_compiled() is not None


def run_border_sweep_numba(
    bindings: BatchBindings,
    origin_ids: Sequence[int],
    periods: int,
    force_interpreter: bool = False,
) -> List[np.ndarray]:
    """The border sweep through the flat per-sample period loop.

    Uses the njit-compiled loop when numba is importable, the
    pure-Python reference interpreter otherwise (or when
    ``force_interpreter`` is set — the cross-validation tests exercise
    the exact code numba compiles without needing numba installed).
    Returns the same per-origin ``(S, periods)`` tables as
    :func:`run_border_sweep_fused`, bit-identically.
    """
    global _numba_failed
    structure = bindings.structure
    (_, p0_starts, p0_offsets, p0_cols), p1_flat, ps_flat = (
        structure.numba_arrays()
    )
    p1_targets, p1_starts, p1_offsets, p1_cols = p1_flat
    ps_targets, ps_starts, ps_offsets, ps_cols = ps_flat
    origin_arr = np.asarray(list(origin_ids), dtype=np.intp)
    out = np.full((origin_arr.shape[0], bindings.samples, periods), NEG_INF)
    fn = None if force_interpreter else _numba_compiled()
    profiler = active_profiler()
    with _phase("run"):
        started = time.perf_counter()
        args = (
            bindings.matrix, structure.n, periods, origin_arr,
            p0_starts, p0_offsets, p0_cols,
            p1_targets, p1_starts, p1_offsets, p1_cols,
            ps_targets, ps_starts, ps_offsets, ps_cols,
            out,
        )
        if fn is not None:
            try:
                fn(*args)
            except Exception:
                # typing/lowering failures surface at first call; fall
                # back for good rather than failing every sweep
                _numba_failed = True
                _sweep_flat(*args)
        else:
            _sweep_flat(*args)
        if profiler is not None and periods:
            share = (time.perf_counter() - started) / periods
            for _ in range(periods):
                profiler.record_period(share)
    return [out[gi] for gi in range(origin_arr.shape[0])]


def _run_chunk_tables(
    bindings: BatchBindings,
    origin_ids: Sequence[int],
    periods: int,
    kernel: str,
    unroll: Optional[int],
) -> List[np.ndarray]:
    """One chunk's per-origin initiator tables under one batch kernel."""
    if kernel == "batch":
        return [
            run_initiated_batch(bindings, origin_id, periods)
            for origin_id in origin_ids
        ]
    if kernel == "numba":
        return run_border_sweep_numba(bindings, origin_ids, periods)
    return run_border_sweep_fused(bindings, origin_ids, periods, unroll)


class BatchSweepResult:
    """Outcome of a batched border sweep over S delay bindings.

    ``initiator_times[g]`` is the ``(S, periods)`` table of collected
    ``t_{g_0}(g_i)`` values; everything else — λ per binding, δ
    records, critical cycles — is derived lazily so bindings whose
    details are never inspected cost nothing beyond the sweep itself.
    """

    def __init__(self, graph, cg, bindings, border, periods, initiator_times):
        self.graph = graph
        self.cg = cg
        self.bindings = bindings
        self.border = border
        self.periods = periods
        self.initiator_times = initiator_times

    @property
    def samples(self) -> int:
        return self.bindings.samples

    def cycle_times(self) -> np.ndarray:
        """λ per binding: the vectorized max over all collected δ."""
        from .errors import AcyclicGraphError

        divisors = np.arange(1, self.periods + 1, dtype=np.float64)
        best = np.full(self.samples, NEG_INF)
        for event in self.border:
            distances = self.initiator_times[event] / divisors
            np.maximum(best, distances.max(axis=1), out=best)
        if np.isneginf(best).any():
            raise AcyclicGraphError(
                "no border event of %r re-occurs within %d periods"
                % (self.graph.name, self.periods)
            )
        return best

    def sample_records(self, sample: int) -> list:
        """All ``BorderDistance`` records of one binding, in the same
        order the per-sample algorithm collects them."""
        from .cycle_time import BorderDistance

        records = []
        for event in self.border:
            row = self.initiator_times[event][sample]
            for index in range(self.periods):
                time = row[index]
                if time == NEG_INF:
                    continue
                time = float(time)
                records.append(
                    BorderDistance(event, index + 1, time, time / (index + 1))
                )
        return records

    def sample_graph(self, sample: int) -> TimedSignalGraph:
        """A graph copy carrying binding ``sample``'s delays, rebound
        to the shared compiled topology."""
        trial = self.graph.copy()
        for pair, value in zip(self.bindings.pairs, self.bindings.matrix[sample]):
            trial.set_delay(pair[0], pair[1], float(value))
        rebind_compiled(trial, self.cg)
        return trial

    def sample_result(self, sample: int, keep_simulations: bool = False):
        """The full :class:`~repro.core.cycle_time.CycleTimeResult` of
        one binding — λ, δ table and backtracked critical cycles —
        bit-identical to the per-sample float64 path.

        This is the lazy backtracking hook: it re-runs only the
        *winning* border simulations of the requested binding against
        a rebound graph copy, so a sweep that inspects criticality for
        a handful of samples never pays for the rest.
        """
        from .arithmetic import numbers_close
        from .cycle_time import (
            CycleTimeResult,
            _backtrack_critical_cycles,
        )
        from .errors import AcyclicGraphError
        from .simulation import EventInitiatedSimulation

        records = self.sample_records(sample)
        best = None
        for record in records:
            if best is None or record.distance > best:
                best = record.distance
        if best is None:
            raise AcyclicGraphError(
                "no border event of %r re-occurs within %d periods"
                % (self.graph.name, self.periods)
            )
        winners = [r for r in records if numbers_close(r.distance, best)]
        trial = self.sample_graph(sample)
        simulations = {}
        for record in winners:
            if record.border_event not in simulations:
                simulations[record.border_event] = EventInitiatedSimulation(
                    trial, record.border_event, self.periods, kernel="float"
                )
        cycles = _backtrack_critical_cycles(trial, simulations, winners, best)
        return CycleTimeResult(
            cycle_time=best,
            critical_cycles=cycles,
            border_events=self.border,
            distances=records,
            periods=self.periods,
            simulations=simulations if keep_simulations else {},
        )


def run_border_simulations_batch(
    graph: TimedSignalGraph,
    delays,
    periods: Optional[int] = None,
    border: Optional[Sequence[Event]] = None,
    batch_size: Optional[int] = None,
    workers: Optional[int] = None,
    executor: Optional[str] = None,
    kernel: Optional[str] = None,
    unroll: Optional[int] = None,
) -> BatchSweepResult:
    """Sweep all S delay bindings through every border simulation.

    ``delays`` is a :class:`BatchBindings` or an ``(S, m)`` matrix in
    graph arc order.  ``kernel`` picks the batch kernel
    (:data:`BATCH_KERNELS`; ``auto`` resolves to the fused
    whole-period programs, ``batch`` keeps the per-level index-array
    sweep, ``numba`` JIT-compiles the per-sample loop when numba is
    importable) — every kernel produces bit-identical float64 tables.
    ``unroll`` forces the fused period-unroll span (default: automatic
    by border count).  ``batch_size`` bounds memory by splitting the S
    bindings into chunks; ``workers`` fans the chunks out, either over
    a thread pool (``executor="thread"``, the default — NumPy releases
    the GIL inside the large vector ops, so chunked sweeps overlap) or
    over the shared :func:`process_pool` (``executor="process"`` —
    chunks escape the GIL entirely; the compiled graph ships once per
    pool worker via pickle, the delay matrix once per sweep via one
    shared-memory block that chunks reference by name and row range,
    and results concatenate bit-identically to the single-process
    sweep).  Always float64; int/Fraction callers that need exact
    results use the per-sample exact path instead.
    """
    from .errors import AcyclicGraphError

    if executor is None:
        executor = "thread"
    if executor not in EXECUTORS:
        raise SignalGraphError(
            "unknown executor %r (expected one of %s)"
            % (executor, ", ".join(EXECUTORS))
        )
    kernel = resolve_batch_kernel(kernel)

    cg = compiled_graph(graph)
    if isinstance(delays, BatchBindings):
        bindings = delays
    else:
        bindings = BatchBindings(cg, delays)
    if border is None:
        border = graph.border_events
    else:
        border = tuple(border)
    if not border:
        raise AcyclicGraphError(
            "graph %r has no border events (no marked arcs on cycles)"
            % graph.name
        )
    if periods is None:
        periods = len(border)
    origin_ids = [cg.id_of[event] for event in border]
    structure = bindings.structure
    # Compile the shared programs before any fan-out so worker threads
    # never race on the lazily-built caches.
    if kernel == "batch":
        for origin_id in origin_ids:
            structure.p0_suffix(origin_id)
    elif kernel == "numba":
        structure.numba_arrays()
    else:
        structure.fused_plan(_resolve_unroll(unroll, len(origin_ids), periods))
    samples = bindings.samples
    if batch_size is None and executor == "process" and workers and workers > 1:
        # default to one chunk per pool worker so the sweep actually
        # fans out instead of landing on a single child
        batch_size = max(1, -(-samples // workers))
    if batch_size is not None and batch_size < 1:
        raise SignalGraphError("batch_size must be positive")
    if batch_size is None or batch_size >= samples:
        ranges = [(0, samples)]
    else:
        ranges = [
            (lo, min(lo + batch_size, samples))
            for lo in range(0, samples, batch_size)
        ]

    def run_chunk(span: Tuple[int, int]):
        lo, hi = span
        chunk = bindings if (lo, hi) == (0, samples) else bindings.subset(lo, hi)
        return _run_chunk_tables(chunk, origin_ids, periods, kernel, unroll)

    if executor == "process" and workers is not None and workers > 1:
        token, blob = _pool_payload(bindings.base)
        pool = process_pool(workers)
        shared = None
        try:
            try:
                shared = _SharedMatrix(bindings.matrix)
            except Exception:
                # no usable shared memory on this platform: fall back
                # to pickling per-chunk row slices (correct, slower)
                _SHM_STATS["fallback"] += 1
                shared = None
            futures = [
                _submit_chunk(
                    pool, token, blob, shared, bindings.matrix,
                    lo, hi, origin_ids, periods, kernel, unroll,
                )
                for lo, hi in ranges
            ]
            parts = [future.result() for future in futures]
        finally:
            if shared is not None:
                shared.close()
    elif workers is not None and workers > 1 and len(ranges) > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=workers) as pool:
            parts = list(pool.map(run_chunk, ranges))
    else:
        parts = [run_chunk(span) for span in ranges]
    initiator_times = {}
    for position, event in enumerate(border):
        if len(parts) == 1:
            initiator_times[event] = parts[0][position]
        else:
            initiator_times[event] = np.concatenate(
                [part[position] for part in parts], axis=0
            )
    return BatchSweepResult(graph, cg, bindings, border, periods, initiator_times)
