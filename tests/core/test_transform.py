"""Unit tests for behaviour-preserving graph transformations."""

from fractions import Fraction

import pytest

from repro.core import (
    TimedSignalGraph,
    TimingSimulation,
    Transition,
    compute_cycle_time,
    merge_chain_events,
    relabel_events,
    remove_redundant_arcs,
    restrict_to_core,
    validate,
)
from repro.core.errors import GraphConstructionError


def T(text):
    return Transition.parse(text)


class TestRemoveRedundantArcs:
    def test_dominated_arc_removed(self, oscillator):
        oscillator.add_arc("a+", "a-", 4)  # a+ -> c+ -> a- is 5 >= 4
        reduced = remove_redundant_arcs(oscillator)
        assert not reduced.has_arc("a+", "a-")
        assert reduced.num_arcs == 11

    def test_binding_arc_kept(self, oscillator):
        oscillator.add_arc("a+", "a-", 6)  # longer than the 5-path
        reduced = remove_redundant_arcs(oscillator)
        assert reduced.has_arc("a+", "a-")

    def test_marking_must_match(self):
        g = TimedSignalGraph()
        g.add_arc("a+", "b+", 1)
        g.add_arc("b+", "c+", 1)
        g.add_arc("a+", "c+", 1, marked=True)  # parallel but marked
        g.add_arc("c+", "a+", 1, marked=True)
        reduced = remove_redundant_arcs(g)
        assert reduced.has_arc("a+", "c+")  # different token count: kept

    def test_timing_preserved(self, oscillator):
        oscillator.add_arc("e-", "b+", 2)  # dominated by e- -> f- -> b+
        reduced = remove_redundant_arcs(oscillator)
        assert not reduced.has_arc("e-", "b+")
        original = TimingSimulation(oscillator, periods=3)
        simplified = TimingSimulation(reduced, periods=3)
        assert original.times == simplified.times

    def test_prefix_paths_do_not_erase_core_arcs(self):
        # A long once-only path into y+ must not dominate the
        # every-instance constraint z+ -> y+.
        g = TimedSignalGraph()
        g.add_arc("z+", "y+", 3)
        g.add_arc("y+", "z+", 1, marked=True)
        g.add_arc("start-", "w-", 0)
        g.add_arc("w-", "y+", 9)
        reduced = remove_redundant_arcs(g)
        assert reduced.has_arc("z+", "y+")
        assert compute_cycle_time(reduced).cycle_time == 4

    def test_idempotent(self, oscillator):
        once = remove_redundant_arcs(oscillator)
        twice = remove_redundant_arcs(once)
        assert once.structurally_equal(twice)


class TestMergeChainEvents:
    def test_hidden_chain_contracted(self):
        g = TimedSignalGraph()
        g.add_multimarked_arc("a+", "b+", delay=5, tokens=2)
        g.add_arc("b+", "a+", 1)
        assert g.num_events == 3  # one hidden chain event
        merged = merge_chain_events(g)
        # contraction re-expands through add_multimarked_arc, so the
        # number of events stays but timing is preserved
        assert compute_cycle_time(merged).cycle_time == compute_cycle_time(g).cycle_time

    def test_explicit_removable_predicate(self):
        g = TimedSignalGraph()
        g.add_arc("a+", "mid+", 2)
        g.add_arc("mid+", "b+", 3)
        g.add_arc("b+", "a+", 1, marked=True)
        merged = merge_chain_events(g, removable=lambda e: str(e) == "mid+")
        assert not merged.has_event("mid+")
        assert merged.arc("a+", "b+").delay == 5
        assert compute_cycle_time(merged).cycle_time == compute_cycle_time(g).cycle_time

    def test_branching_event_kept(self, oscillator):
        merged = merge_chain_events(oscillator, removable=lambda e: True)
        # c+ has two in-arcs; a- has one in, one out and CAN merge;
        # check overall cycle time survives whatever merged
        assert compute_cycle_time(merged).cycle_time == 10

    def test_default_predicate_touches_only_hidden(self, oscillator):
        merged = merge_chain_events(oscillator)
        assert merged.structurally_equal(oscillator)


class TestRelabelEvents:
    def test_basic_rename(self, oscillator):
        renamed = relabel_events(oscillator, {T("a+"): T("x+")})
        assert renamed.has_event("x+")
        assert not renamed.has_event("a+")
        assert compute_cycle_time(renamed).cycle_time == 10

    def test_collision_rejected(self, oscillator):
        with pytest.raises(GraphConstructionError):
            relabel_events(oscillator, {T("a+"): T("b+")})

    def test_identity_mapping(self, oscillator):
        assert relabel_events(oscillator, {}).structurally_equal(oscillator)


class TestRestrictToCore:
    def test_prefix_dropped(self, oscillator):
        core = restrict_to_core(oscillator)
        assert core.num_events == 6
        assert not core.has_event("e-")
        validate(core)

    def test_cycle_time_unchanged(self, oscillator):
        core = restrict_to_core(oscillator)
        assert compute_cycle_time(core).cycle_time == 10

    def test_critical_cycle_unchanged(self, muller_ring_graph):
        core = restrict_to_core(muller_ring_graph)
        assert (
            compute_cycle_time(core).cycle_time
            == compute_cycle_time(muller_ring_graph).cycle_time
        )
