"""Karp's maximum mean cycle algorithm (baseline).

Runs on the token-to-token reduced graph, where the cycle time of the
Signal Graph equals the maximum mean cycle weight.  Karp's theorem::

    mu* = max over v of  min over 0 <= k < n of (D_n(v) - D_k(v)) / (n - k)

with ``D_k(v)`` the maximum weight of a k-edge walk from a source to
``v``.  The critical cycle is recovered by walking the predecessor
links of a maximising ``D_n`` entry; some node on that walk repeats
within ``n`` steps and the enclosed loop is a maximum mean cycle.

Complexity ``O(n * m)`` on the reduced graph, i.e. ``O(b^3)`` in terms
of the Signal Graph's tokens.  Exact with int/Fraction delays.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..core.arithmetic import Number, exact_div
from ..core.errors import AcyclicGraphError


def max_mean_cycle(graph: "nx.DiGraph", weight: str = "weight") -> Tuple[Number, List]:
    """Maximum mean cycle of a digraph: ``(mean, node cycle)``.

    Handles graphs that are not strongly connected by solving each
    strongly connected component separately.
    """
    best_mean: Optional[Number] = None
    best_cycle: List = []
    for component in nx.strongly_connected_components(graph):
        if len(component) == 1:
            (node,) = component
            if not graph.has_edge(node, node):
                continue
        subgraph = graph.subgraph(component)
        mean, cycle = _karp_scc(subgraph, weight)
        if best_mean is None or mean > best_mean:
            best_mean, best_cycle = mean, cycle
    if best_mean is None:
        raise AcyclicGraphError("graph has no cycles")
    return best_mean, best_cycle


def _karp_scc(graph: "nx.DiGraph", weight: str) -> Tuple[Number, List]:
    nodes = list(graph.nodes)
    count = len(nodes)
    index = {node: position for position, node in enumerate(nodes)}
    source = nodes[0]

    # D[k][v]: max weight of a k-edge walk source -> v (None = none).
    table: List[List[Optional[Number]]] = [
        [None] * count for _ in range(count + 1)
    ]
    parent: List[List[Optional[int]]] = [[None] * count for _ in range(count + 1)]
    table[0][index[source]] = 0
    for k in range(1, count + 1):
        for u, v, data in graph.edges(data=True):
            iu, iv = index[u], index[v]
            if table[k - 1][iu] is None:
                continue
            candidate = table[k - 1][iu] + data[weight]
            if table[k][iv] is None or candidate > table[k][iv]:
                table[k][iv] = candidate
                parent[k][iv] = iu

    best_mean: Optional[Number] = None
    best_node: Optional[int] = None
    for v in range(count):
        if table[count][v] is None:
            continue
        worst: Optional[Number] = None
        for k in range(count):
            if table[k][v] is None:
                continue
            ratio = exact_div(table[count][v] - table[k][v], count - k)
            if worst is None or ratio < worst:
                worst = ratio
        if worst is not None and (best_mean is None or worst > best_mean):
            best_mean = worst
            best_node = v
    assert best_mean is not None and best_node is not None

    # Recover a cycle: the optimal n-edge walk to best_node contains a
    # maximum-mean loop.  Decompose the walk into simple loops with a
    # stack and return one whose mean equals the optimum.
    walk = [best_node]
    k = count
    while k > 0:
        walk.append(parent[k][walk[-1]])
        k -= 1
    walk.reverse()  # walk[k] = node index at step k

    def loop_mean(loop: List[int]) -> Number:
        total: Number = 0
        for position, node in enumerate(loop):
            successor = loop[(position + 1) % len(loop)]
            total = total + graph[nodes[node]][nodes[successor]][weight]
        return exact_div(total, len(loop))

    stack: List[int] = []
    positions: Dict[int, int] = {}
    fallback: List[int] = []
    for node in walk:
        if node in positions:
            start = positions[node]
            loop = stack[start:]
            if loop_mean(loop) == best_mean:
                return best_mean, [nodes[i] for i in loop]
            if not fallback:
                fallback = loop
            for removed in loop:
                del positions[removed]
            del stack[start:]
        positions[node] = len(stack)
        stack.append(node)
    return best_mean, [nodes[i] for i in fallback]
