#!/usr/bin/env python
"""End-to-end smoke test of the real-circuit netlist pipeline.

Three legs, mirroring the acceptance criteria of the netlist front end:

1. **Library** — every shipped corpus circuit parses, ring-wraps,
   extracts structurally, and yields the golden unit-delay cycle time;
   the structural extraction is cross-checked bit-identical against the
   exhaustive oracle on c17.
2. **CLI** — ``repro netlist corpus:mult16`` (>=1000 gates) returns
   exit code 0 and reports the golden cycle time; ``repro convert``
   round-trips c17 through structural Verilog.
3. **Service** — a spawned ``repro serve`` daemon answers
   ``POST /netlist`` for c17 and mult16, the repeated request hits the
   result cache, and the daemon shuts down cleanly on SIGINT.

Exit code 0 means the whole loop works; this is the CI netlist smoke
job.

Usage::

    PYTHONPATH=src python scripts/netlist_smoke.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.circuits.extraction import extract_signal_graph  # noqa: E402
from repro.netlist import (  # noqa: E402
    analyze_network,
    corpus_path,
    load_corpus,
    ring_wrap,
    structural_extract,
)
from repro.service.client import ServiceClient, free_port  # noqa: E402

GOLDEN = {"c17": 8, "rca8": 22, "sreg16": 132, "mult16": 91}


def fail(message: str) -> int:
    print("FAIL: %s" % message, file=sys.stderr)
    return 1


def library_leg() -> int:
    for name, expected in sorted(GOLDEN.items()):
        started = time.perf_counter()
        network = load_corpus(name)
        _, report = analyze_network(network)
        elapsed = time.perf_counter() - started
        if report["cycle_time"] != expected:
            return fail(
                "%s: cycle time %r, expected %r"
                % (name, report["cycle_time"], expected)
            )
        print(
            "smoke: %-7s %4d gates -> %5d events, lambda=%s (%s/%s, %.2fs)"
            % (
                name,
                network.num_gates,
                report["graph"]["events"],
                report["cycle_time"],
                report["extraction"],
                report["method"],
                elapsed,
            )
        )
    mult16 = load_corpus("mult16")
    if mult16.num_gates < 1000:
        return fail("mult16 has %d gates, need >=1000" % mult16.num_gates)

    wrapped = ring_wrap(load_corpus("c17"))
    if not structural_extract(wrapped).structurally_equal(
        extract_signal_graph(wrapped)
    ):
        return fail("structural extraction diverges from the oracle on c17")
    print("smoke: structural == oracle on wrapped c17")
    return 0


def cli_leg() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )

    result = subprocess.run(
        [sys.executable, "-m", "repro", "netlist", "corpus:mult16"],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    if result.returncode != 0:
        return fail("repro netlist corpus:mult16 rc=%d\n%s"
                    % (result.returncode, result.stderr))
    if "cycle time: 91" not in result.stdout:
        return fail("mult16 CLI output missing golden cycle time:\n%s"
                    % result.stdout)
    print("smoke: CLI analyzed mult16 (>=1000 gates), lambda=91")

    convert = subprocess.run(
        [sys.executable, "-m", "repro", "convert", "corpus:c17"],
        capture_output=True,
        text=True,
        env=env,
        timeout=60,
    )
    if convert.returncode != 0 or "NAND" not in convert.stdout:
        return fail("repro convert corpus:c17 failed:\n%s" % convert.stderr)
    print("smoke: CLI converted c17 to .bench on stdout")
    return 0


def service_leg() -> int:
    port = free_port()
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--quiet"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )

    def daemon_fail(message: str) -> int:
        print("FAIL: %s" % message, file=sys.stderr)
        daemon.kill()
        out, _ = daemon.communicate(timeout=10)
        print("--- daemon output ---\n%s" % out, file=sys.stderr)
        return 1

    try:
        client = ServiceClient("http://127.0.0.1:%d" % port, timeout=300)
        if not client.wait_until_ready(timeout=30):
            return daemon_fail("daemon did not come up within 30s")

        with open(corpus_path("c17"), encoding="utf-8") as handle:
            c17 = handle.read()
        first = client.netlist(c17, name="c17")
        if first["cycle_time"] != GOLDEN["c17"]:
            return daemon_fail("c17 /netlist lambda %r" % first["cycle_time"])
        if first["cached"]:
            return daemon_fail("first /netlist claimed a cache hit")
        second = client.netlist(c17, name="c17")
        if not second["cached"]:
            return daemon_fail("second identical /netlist missed the cache")
        print("smoke: /netlist c17 lambda=%s, repeat cached" %
              first["cycle_time"])

        with open(corpus_path("mult16"), encoding="utf-8") as handle:
            mult16 = handle.read()
        started = time.perf_counter()
        big = client.netlist(mult16, name="mult16")
        elapsed = time.perf_counter() - started
        if big["cycle_time"] != GOLDEN["mult16"]:
            return daemon_fail("mult16 /netlist lambda %r"
                               % big["cycle_time"])
        print(
            "smoke: /netlist mult16 lambda=%s via %s/%s in %.2fs"
            % (big["cycle_time"], big["extraction"], big["method"], elapsed)
        )

        stats = client.stats()
        if stats["requests"].get("netlist", 0) < 3:
            return daemon_fail("netlist request counter: %r"
                               % stats["requests"])
    except Exception as error:  # noqa: BLE001 — smoke harness boundary
        return daemon_fail("%s: %s" % (type(error).__name__, error))

    daemon.send_signal(signal.SIGINT)
    try:
        out, _ = daemon.communicate(timeout=15)
    except subprocess.TimeoutExpired:
        return daemon_fail("daemon did not exit on SIGINT")
    if daemon.returncode != 0:
        print("FAIL: daemon exit code %d\n%s" % (daemon.returncode, out),
              file=sys.stderr)
        return 1
    print("smoke: clean SIGINT shutdown")
    return 0


def main() -> int:
    for leg in (library_leg, cli_leg, service_leg):
        rc = leg()
        if rc:
            return rc
    print("smoke: netlist pipeline OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
