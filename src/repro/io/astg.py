"""Reader/writer for SIS/petrify-style ``.g`` signal-transition-graph
files, extended with delay annotations.

The classic ``.g`` format describes a marked-graph STG::

    .model oscillator
    .inputs e
    .outputs a b c f
    .graph
    e- f-
    e- a+
    a+ c+
    ...
    .marking { <c-,a+> <c-,b+> }
    .end

The standard format carries no timing, so delays are written as a
third token on each arc line (``a+ c+ 3``) — files written this way
remain readable by tools that ignore trailing tokens on graph lines —
and disengageable arcs are flagged with a trailing ``/``.  Both
extensions are optional on input (missing delays default to 0).

Only the marked-graph subset of STGs is supported: each ``.graph``
line is ``source target [delay] [/]``; place-style multi-target lines
are expanded pairwise.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Set, TextIO, Tuple, Union

from ..core.errors import FormatError
from ..core.events import Transition
from ..core.signal_graph import TimedSignalGraph


def _parse_number(text: str):
    """Parse an int, fraction (``20/3``) or float delay token."""
    try:
        return int(text)
    except ValueError:
        pass
    if "/" in text:
        numerator, _, denominator = text.partition("/")
        try:
            return Fraction(int(numerator), int(denominator))
        except ValueError:
            pass
    try:
        return float(text)
    except ValueError:
        raise FormatError("not a delay: %r" % text) from None


def loads(text: str, name: Optional[str] = None) -> TimedSignalGraph:
    """Parse ``.g`` text into a Timed Signal Graph."""
    model_name = name or "astg"
    arcs: List[Tuple[str, str, object, bool]] = []
    marking: Set[Tuple[str, str]] = set()
    section = None
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            directive, _, rest = line.partition(" ")
            if directive == ".model":
                model_name = rest.strip() or model_name
            elif directive == ".graph":
                section = "graph"
            elif directive == ".marking":
                marking.update(_parse_marking(rest))
            elif directive == ".end":
                section = None
            elif directive in (".inputs", ".outputs", ".internal", ".dummy"):
                pass  # signal declarations are implicit in our model
            else:
                raise FormatError("unknown directive %r" % directive)
            continue
        if section != "graph":
            raise FormatError("arc line outside .graph section: %r" % line)
        arcs.extend(_parse_graph_line(line))

    graph = TimedSignalGraph(name=model_name)
    for source, target, delay, disengageable in arcs:
        graph.add_arc(
            source,
            target,
            delay,
            marked=(source, target) in marking,
            disengageable=disengageable,
        )
    missing = marking - {(str(a.source), str(a.target)) for a in graph.arcs}
    if missing:
        raise FormatError("marking on undeclared arcs: %s" % sorted(missing))
    return graph


def _parse_graph_line(line: str) -> List[Tuple[str, str, object, bool]]:
    tokens = line.split()
    disengageable = False
    if tokens and tokens[-1] == "/":
        disengageable = True
        tokens = tokens[:-1]
    if len(tokens) < 2:
        raise FormatError("graph line needs source and target: %r" % line)
    delay: object = 0
    targets = tokens[1:]
    # Trailing numeric token = delay extension.
    if len(targets) >= 1:
        try:
            delay = _parse_number(targets[-1])
        except FormatError:
            delay = 0
        else:
            targets = targets[:-1]
    if not targets:
        raise FormatError("graph line lost its target: %r" % line)
    source = tokens[0]
    Transition.parse(source)  # validate syntax
    result = []
    for target in targets:
        Transition.parse(target)
        result.append((source, target, delay, disengageable))
    return result


def _parse_marking(rest: str) -> Iterable[Tuple[str, str]]:
    body = rest.strip()
    if body.startswith("{"):
        body = body[1:]
    if body.endswith("}"):
        body = body[:-1]
    if body.count("<") != body.count(">"):
        raise FormatError("unbalanced marking entry in %r" % rest.strip())
    for chunk in body.split(">"):
        chunk = chunk.strip().lstrip("<")
        if not chunk:
            continue
        source, _, target = chunk.partition(",")
        if not target:
            raise FormatError("malformed marking entry: %r" % chunk)
        yield (source.strip(), target.strip())


def dumps(graph: TimedSignalGraph, inputs: Iterable[str] = ()) -> str:
    """Serialise a Timed Signal Graph to ``.g`` text.

    Events must be :class:`~repro.core.events.Transition` objects (or
    parse as such).  ``inputs`` optionally names the signals to list
    under ``.inputs``; the rest go under ``.outputs``.
    """
    signals = []
    for event in graph.events:
        if not isinstance(event, Transition):
            raise FormatError(
                "event %r is not a signal transition; .g export needs "
                "Transition events" % (event,)
            )
        if event.signal not in signals:
            signals.append(event.signal)
    inputs = [name for name in inputs if name in signals]
    outputs = [name for name in signals if name not in inputs]

    lines = [".model %s" % graph.name]
    if inputs:
        lines.append(".inputs %s" % " ".join(inputs))
    if outputs:
        lines.append(".outputs %s" % " ".join(outputs))
    lines.append(".graph")
    marked = []
    for arc in graph.arcs:
        suffix = " /" if arc.disengageable else ""
        lines.append(
            "%s %s %s%s" % (arc.source, arc.target, _format_number(arc.delay), suffix)
        )
        if arc.marked:
            marked.append("<%s,%s>" % (arc.source, arc.target))
    lines.append(".marking { %s }" % " ".join(marked))
    lines.append(".end")
    return "\n".join(lines) + "\n"


def _format_number(value) -> str:
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return str(value.numerator)
        return "%d/%d" % (value.numerator, value.denominator)
    return repr(value) if isinstance(value, float) else str(value)


def load(stream: Union[str, TextIO]) -> TimedSignalGraph:
    """Load from a path or open file object."""
    if isinstance(stream, str):
        with open(stream, "r", encoding="utf-8") as handle:
            return loads(handle.read())
    return loads(stream.read())


def dump(graph: TimedSignalGraph, stream: Union[str, TextIO], inputs=()) -> None:
    """Write to a path or open file object."""
    text = dumps(graph, inputs=inputs)
    if isinstance(stream, str):
        with open(stream, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        stream.write(text)
