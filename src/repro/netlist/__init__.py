"""Real-circuit front ends for the Timed Signal Graph pipeline.

This package turns standard benchmark circuits into analysable
self-timed workloads:

* :mod:`~repro.netlist.model` — the open :class:`LogicNetwork` IR
  (primary inputs/outputs, library cells, DFF seams);
* :mod:`~repro.netlist.bench` / :mod:`~repro.netlist.verilog` —
  ISCAS-85/89 ``.bench`` and structural-Verilog parsers and writers
  (round-trip clean);
* :mod:`~repro.netlist.transforms` — buffer insertion, fanout
  splitting and the **ring-wrap** transform closing a combinational
  DAG into an autonomous Muller-style handshake circuit with per-gate
  delay annotation;
* :mod:`~repro.netlist.extract` — the scalable structural extraction
  path (``structural_extract``) that folds thousands-of-gates wrapped
  circuits into Timed Signal Graphs without exhaustive state-space
  exploration, bit-identical to ``circuits.extraction`` where the
  oracle is feasible;
* :mod:`~repro.netlist.corpus` — the shipped ``.bench`` corpus plus
  parametric circuit generators;
* :mod:`~repro.netlist.pipeline` — the shared parse -> transform ->
  extract -> analyze pipeline behind ``repro netlist`` and the
  service's ``POST /netlist``.
"""

from .model import LogicGate, LogicNetwork, SUPPORTED_CELLS
from .bench import dump_bench, load_bench, parse_bench, write_bench
from .verilog import (
    dump_verilog,
    load_verilog,
    parse_verilog,
    write_verilog,
)
from .transforms import insert_buffers, ring_wrap, split_fanout
from .extract import structural_extract
from .corpus import corpus_names, corpus_path, load_corpus
from .pipeline import (
    analyze_network,
    analyze_source,
    detect_format,
    parse_source,
)

__all__ = [
    "LogicGate",
    "LogicNetwork",
    "SUPPORTED_CELLS",
    "parse_bench",
    "write_bench",
    "load_bench",
    "dump_bench",
    "parse_verilog",
    "write_verilog",
    "load_verilog",
    "dump_verilog",
    "insert_buffers",
    "split_fanout",
    "ring_wrap",
    "structural_extract",
    "corpus_names",
    "corpus_path",
    "load_corpus",
    "analyze_network",
    "analyze_source",
    "detect_format",
    "parse_source",
]
