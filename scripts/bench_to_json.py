#!/usr/bin/env python
"""Measure the kernel speedups and record them as JSON.

Two suites::

    PYTHONPATH=src python scripts/bench_to_json.py [--suite kernels]
    PYTHONPATH=src python scripts/bench_to_json.py --suite montecarlo

``kernels`` (the default) times the legacy, exact and float engines —
border simulations and end-to-end ``compute_cycle_time`` — on the
scaling-suite graphs and writes ``BENCH_cycle_time.json``.

``montecarlo`` times Monte-Carlo sweep throughput (samples/sec) for
the batched vectorized kernel vs the per-sample rebind loop across
graph sizes and batch widths, verifies the two paths produce
bit-identical λ samples, and writes ``BENCH_montecarlo.json``.  Both
records feed the README's performance notes and the CI smoke checks.

Timings are best-of-N wall clock after warmup (the float kernel's
code-generation tier activates during warmup, as it does in any
repeated analysis).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np  # noqa: E402

from repro.analysis import monte_carlo_cycle_time, uniform_spread  # noqa: E402
from repro.core import compute_cycle_time, run_border_simulations  # noqa: E402
from repro.generators import ring_with_chords  # noqa: E402

KERNELS = ("legacy", "exact", "float")
SIZES = (100, 400, 800)
WARMUP = 8
REPS = 15

MC_SIZES = (50, 100, 200)
MC_BATCHES = (100, 1000)
MC_WARMUP = 2
MC_REPS = 3


def best_of(fn, reps=REPS):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure(stages):
    graph = ring_with_chords(stages=stages, tokens=4, chords=stages // 4, seed=7)
    row = {
        "stages": stages,
        "events": graph.num_events,
        "arcs": graph.num_arcs,
        "border_events": len(graph.border_events),
        "simulate_ms": {},
        "end_to_end_ms": {},
    }
    for kernel in KERNELS:
        for _ in range(WARMUP):
            run_border_simulations(graph, kernel=kernel)
            compute_cycle_time(graph, check=False, kernel=kernel)
        row["simulate_ms"][kernel] = 1e3 * best_of(
            lambda: run_border_simulations(graph, kernel=kernel)
        )
        row["end_to_end_ms"][kernel] = 1e3 * best_of(
            lambda: compute_cycle_time(graph, check=False, kernel=kernel)
        )
    for section in ("simulate_ms", "end_to_end_ms"):
        legacy = row[section]["legacy"]
        row[section.replace("_ms", "_speedup")] = {
            kernel: legacy / row[section][kernel] for kernel in ("exact", "float")
        }
    return row


def measure_montecarlo(stages, batches):
    graph = ring_with_chords(stages=stages, tokens=4, chords=stages // 4, seed=7)
    sampler = uniform_spread(0.1)

    def run(samples, method):
        return monte_carlo_cycle_time(
            graph, sampler, samples=samples, seed=0,
            track_criticality=False, method=method,
        )

    row = {
        "stages": stages,
        "events": graph.num_events,
        "arcs": graph.num_arcs,
        "border_events": len(graph.border_events),
        "sweeps": [],
    }
    for samples in batches:
        for _ in range(MC_WARMUP):
            run(samples, "batch")
        batch = best_of(lambda: run(samples, "batch"), reps=MC_REPS)
        loop = best_of(lambda: run(samples, "persample"), reps=MC_REPS)
        identical = bool(
            np.array_equal(
                run(samples, "batch").samples, run(samples, "persample").samples
            )
        )
        row["sweeps"].append(
            {
                "samples": samples,
                "batch_samples_per_sec": samples / batch,
                "persample_samples_per_sec": samples / loop,
                "speedup": loop / batch,
                "identical": identical,
            }
        )
    return row


def run_montecarlo_suite(sizes, batches, output):
    rows = []
    for stages in sizes:
        row = measure_montecarlo(stages, batches)
        rows.append(row)
        for sweep in row["sweeps"]:
            print(
                "n=%-4d S=%-5d  per-sample %8.0f samples/sec  "
                "batch %8.0f samples/sec (%.1fx)  identical=%s"
                % (
                    stages,
                    sweep["samples"],
                    sweep["persample_samples_per_sec"],
                    sweep["batch_samples_per_sec"],
                    sweep["speedup"],
                    sweep["identical"],
                )
            )
    headline = rows[-1]["sweeps"][-1]
    document = {
        "benchmark": "batched Monte-Carlo delay sweep vs per-sample rebind loop",
        "workload": "ring_with_chords(stages=n, tokens=4, chords=n/4, seed=7), "
        "uniform_spread(0.1), track_criticality=False",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "warmup_runs": MC_WARMUP,
        "timer": "best of %d, wall clock" % MC_REPS,
        "rows": rows,
        "headline": {
            "graph": "stages=%d" % rows[-1]["stages"],
            "samples": headline["samples"],
            "batch_samples_per_sec": headline["batch_samples_per_sec"],
            "persample_samples_per_sec": headline["persample_samples_per_sec"],
            "speedup": headline["speedup"],
            "identical": headline["identical"],
        },
    }
    with open(output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % os.path.abspath(output))
    return 0


def main(argv=None) -> int:
    root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite", choices=("kernels", "montecarlo"), default="kernels",
        help="what to measure (default: the single-analysis kernels)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="output JSON path (default: repo-root BENCH_cycle_time.json "
        "or BENCH_montecarlo.json by suite)",
    )
    parser.add_argument(
        "--sizes", default=None,
        help="comma-separated ring sizes to measure",
    )
    parser.add_argument(
        "--samples", default=",".join(str(s) for s in MC_BATCHES),
        help="comma-separated batch widths S (montecarlo suite only)",
    )
    args = parser.parse_args(argv)
    if args.suite == "montecarlo":
        sizes = [
            int(part)
            for part in (args.sizes or ",".join(map(str, MC_SIZES))).split(",")
        ]
        batches = [int(part) for part in args.samples.split(",")]
        output = args.output or os.path.join(root, "BENCH_montecarlo.json")
        return run_montecarlo_suite(sizes, batches, output)
    sizes = [
        int(part) for part in (args.sizes or ",".join(map(str, SIZES))).split(",")
    ]
    rows = []
    for stages in sizes:
        row = measure(stages)
        rows.append(row)
        print(
            "n=%-4d  sim legacy %7.3f ms  exact %7.3f ms (%.1fx)  "
            "float %7.3f ms (%.1fx)"
            % (
                stages,
                row["simulate_ms"]["legacy"],
                row["simulate_ms"]["exact"],
                row["simulate_speedup"]["exact"],
                row["simulate_ms"]["float"],
                row["simulate_speedup"]["float"],
            )
        )
    largest = rows[-1]
    document = {
        "benchmark": "compiled simulation kernels vs legacy dict-based loops",
        "workload": "ring_with_chords(stages=n, tokens=4, chords=n/4, seed=7)",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "warmup_runs": WARMUP,
        "timer": "best of %d, wall clock" % REPS,
        "rows": rows,
        "headline": {
            "graph": "stages=%d" % largest["stages"],
            "float_simulation_speedup": largest["simulate_speedup"]["float"],
            "exact_simulation_speedup": largest["simulate_speedup"]["exact"],
            "float_end_to_end_speedup": largest["end_to_end_speedup"]["float"],
        },
    }
    output = args.output or os.path.join(root, "BENCH_cycle_time.json")
    with open(output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % os.path.abspath(output))
    return 0


if __name__ == "__main__":
    sys.exit(main())
