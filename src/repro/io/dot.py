"""Graphviz (DOT) export of Timed Signal Graphs.

Marked arcs are drawn with a token dot, disengageable arcs dashed, and
an optional critical-cycle highlight colours the bottleneck red — the
same visual language as the paper's Figure 1b.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Set, Tuple

from ..core.cycles import Cycle
from ..core.events import event_label
from ..core.signal_graph import TimedSignalGraph


def to_dot(
    graph: TimedSignalGraph,
    critical: Optional[Sequence[Cycle]] = None,
    title: Optional[str] = None,
) -> str:
    """Render the graph as DOT text.

    ``critical`` optionally highlights the arcs of the given cycles.
    """
    critical_arcs: Set[Tuple[object, object]] = set()
    for cycle in critical or ():
        events = list(cycle.events)
        for position, event in enumerate(events):
            critical_arcs.add((event, events[(position + 1) % len(events)]))

    lines = ["digraph %s {" % _quote(title or graph.name)]
    lines.append('  rankdir=LR; node [shape=plaintext, fontsize=12];')
    repetitive = graph.repetitive_events
    for event in graph.events:
        shape = "plaintext" if event in repetitive else "plaintext"
        style = "" if event in repetitive else ', fontcolor="gray40"'
        lines.append(
            "  %s [label=%s%s];"
            % (_identifier(event), _quote(event_label(event)), style)
        )
    for arc in graph.arcs:
        attributes = ["label=%s" % _quote(str(arc.delay))]
        if arc.marked:
            attributes.append('arrowtail=dot, dir=both')
        if arc.disengageable:
            attributes.append('style=dashed')
        if (arc.source, arc.target) in critical_arcs:
            attributes.append('color=red, penwidth=2, fontcolor=red')
        lines.append(
            "  %s -> %s [%s];"
            % (_identifier(arc.source), _identifier(arc.target), ", ".join(attributes))
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def _identifier(event) -> str:
    text = event_label(event)
    replacements = {"+": "_up", "-": "_dn", "/": "_t"}
    safe = "".join(
        char if char.isalnum() else replacements.get(char, "_") for char in text
    )
    return '"%s"' % safe


def _quote(text: str) -> str:
    return '"%s"' % text.replace('"', '\\"')


def write_dot(graph: TimedSignalGraph, path: str, critical=None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_dot(graph, critical=critical))
