"""Time separation between events.

Beyond the cycle time, asynchronous designers need pairwise timing
questions answered: "how long after ``req+`` does ``ack+`` fire?",
"do these two latch controls ever switch closer than the hold
margin?".  With fixed delays the execution is deterministic, so
separations are read off the timing simulation; in the steady state
they settle to the *steady separation* derived from the schedule
potentials::

    separation_k(e -> f) = (p(f) - p(e)) mod-shifted by k cycles

Two views are provided:

* :func:`transient_separations` — observed separations per period from
  a (finite) timing simulation, including start-up effects;
* :func:`steady_separation` — the asymptotic separation between the
  k-th following occurrence of ``f`` after each ``e``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.arithmetic import Number
from ..core.cycle_time import CycleTimeResult, compute_cycle_time
from ..core.errors import SimulationError
from ..core.events import as_event, event_label
from ..core.signal_graph import TimedSignalGraph
from ..core.simulation import TimingSimulation
from .performance import steady_state_potentials


@dataclass
class SeparationReport:
    """Separations between instance pairs ``(e_i, f_i+offset)``."""

    first: object
    second: object
    offset: int
    observed: List[Tuple[int, Number]]  # (i, t(f_{i+offset}) - t(e_i))
    steady: Number

    def settles(self, within: int = 0) -> bool:
        """Do the observed separations reach the steady value?"""
        return any(value == self.steady for _, value in self.observed)

    def __str__(self) -> str:
        return "separation %s -> %s (offset %d): steady %s" % (
            event_label(self.first),
            event_label(self.second),
            self.offset,
            self.steady,
        )


def transient_separations(
    graph: TimedSignalGraph,
    first,
    second,
    periods: int,
    offset: int = 0,
) -> List[Tuple[int, Number]]:
    """Observed ``t(second_{i+offset}) - t(first_i)`` for each period."""
    first, second = as_event(first), as_event(second)
    simulation = TimingSimulation(graph, periods)
    rows = []
    for index in range(periods + 1):
        partner = index + offset
        if simulation.defined(first, index) and simulation.defined(second, partner):
            rows.append(
                (index, simulation.time(second, partner) - simulation.time(first, index))
            )
    if not rows:
        raise SimulationError(
            "no comparable instances of %s and %s within %d periods"
            % (event_label(first), event_label(second), periods)
        )
    return rows


def steady_separation(
    graph: TimedSignalGraph,
    first,
    second,
    offset: int = 0,
    result: Optional[CycleTimeResult] = None,
) -> Number:
    """Asymptotic separation ``p(second) - p(first) + offset * λ``.

    Requires both events to be repetitive.  The potentials come from
    the longest-path schedule, i.e. the *as-late-as-necessary* firing
    times the MAX semantics converges to.
    """
    first, second = as_event(first), as_event(second)
    repetitive = graph.repetitive_events
    for event in (first, second):
        if event not in repetitive:
            raise SimulationError(
                "steady separation needs repetitive events, got %s"
                % event_label(event)
            )
    if result is None:
        result = compute_cycle_time(graph)
    potentials = steady_state_potentials(graph, result.cycle_time)
    return (
        potentials[second] - potentials[first] + result.cycle_time * offset
    )


def separation_report(
    graph: TimedSignalGraph,
    first,
    second,
    periods: int = 12,
    offset: int = 0,
) -> SeparationReport:
    """Transient and steady separations in one structure."""
    observed = transient_separations(graph, first, second, periods, offset)
    steady = steady_separation(graph, first, second, offset)
    return SeparationReport(
        first=as_event(first),
        second=as_event(second),
        offset=offset,
        observed=observed,
        steady=steady,
    )
