"""Consistency-decision tests: certificates both ways, exact/float."""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cycle_time import compute_cycle_time
from repro.generators import (
    plant_inconsistency,
    ptime_wrap,
    random_live_tsg,
    ring_with_chords,
)
from repro.ptime import (
    check_consistency,
    from_arcs,
    from_timed_graph,
    weak_consistency,
)

COMMON = settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def two_ring():
    """a -[2,10]-> b -[3,5]*-> a: one token, lam in [5, 15]."""
    return from_arcs([("a", "b", 2, 10), ("b", "a", 3, 5, True)])


class TestHandComputed:
    def test_two_event_ring_consistent(self):
        result = check_consistency(two_ring())
        assert result.consistent
        assert result.rate == 5  # smallest feasible rate
        # certificate offsets satisfy the lower constraint at lam=5
        assert result.offsets["b"] - result.offsets["a"] >= 2

    def test_rigid_single_ring_rate_is_sum_over_tokens(self):
        # rigid single circuit: lam forced to sum(d)/tokens exactly
        ptg = from_arcs([
            ("a", "b", 2, 2), ("b", "c", 3, 3), ("c", "a", 4, 4, True),
        ])
        result = check_consistency(ptg)
        assert result.consistent
        assert result.rate == 9

    def test_unbounded_wrap_matches_kernel(self):
        # [d, oo) wrap of a fixed-delay graph: lam_min == kernel lambda
        graph = ring_with_chords(8, 2, chords=2, seed=3)
        ptg = from_timed_graph(
            graph, bounds={arc.pair: (arc.delay, None) for arc in graph.arcs}
        )
        result = check_consistency(ptg)
        assert result.consistent
        assert result.rate == compute_cycle_time(graph).cycle_time

    def test_rigid_multi_circuit_inconsistent(self):
        # rigid wrap forces every circuit ratio equal; unequal ratios
        # (5 vs 7 here) cannot coexist
        ptg = from_arcs([
            ("a", "b", 2, 2), ("b", "a", 3, 3, True),   # ratio 5
            ("a", "c", 3, 3), ("c", "a", 4, 4, True),   # ratio 7
        ])
        result = check_consistency(ptg)
        assert not result.consistent
        assert result.violation.is_closed()

    def test_gadget_conflict_certificate(self):
        ptg = from_arcs([
            ("a", "b", 2, 2), ("b", "a", 3, 3, True),
            ("a", "w", 7, 7), ("w", "a", 0, 0, True),
        ])
        result = check_consistency(ptg)
        assert not result.consistent
        violation = result.violation
        assert violation.is_closed()
        # the circuit's constraint must be genuinely violated at some
        # rate the iteration reached
        assert violation.alpha < 0 or (
            violation.alpha == 0 and violation.beta < 0
        )


class TestCertificates:
    @COMMON
    @given(seed=st.integers(min_value=0, max_value=3_000))
    def test_consistent_wraps_accept(self, seed):
        ptg = ptime_wrap(
            random_live_tsg(events=6, extra_arcs=4, seed=seed),
            tightness=(seed % 5) / 4.0,
            infinite_fraction=(seed % 3) / 4.0,
            seed=seed,
        )
        result = check_consistency(ptg)
        assert result.consistent, str(result)
        # certificate satisfies every steady-state constraint
        offsets, rate = result.offsets, result.rate
        for arc, interval in ptg.arc_bounds():
            if arc.source not in offsets or arc.target not in offsets:
                continue
            if arc.disengageable:
                continue
            sojourn = offsets[arc.target] - offsets[arc.source] + rate * arc.tokens
            assert sojourn >= interval.lower
            if interval.upper is not None:
                assert sojourn <= interval.upper

    @COMMON
    @given(seed=st.integers(min_value=0, max_value=3_000))
    def test_planted_inconsistent_reject_with_circuit(self, seed):
        ptg = plant_inconsistency(
            ptime_wrap(
                random_live_tsg(events=5, extra_arcs=3, seed=seed), seed=seed
            ),
            seed=seed,
        )
        result = check_consistency(ptg)
        assert not result.consistent
        violation = result.violation
        assert violation.is_closed()
        # a violated circuit's condition is real: its weight is
        # negative at the rate it was found, or for every rate
        if violation.tested_at is not None:
            assert violation.weight_at(violation.tested_at) < 0

    @COMMON
    @given(seed=st.integers(min_value=0, max_value=3_000))
    def test_exact_and_float_agree(self, seed):
        base = random_live_tsg(events=5, extra_arcs=3, seed=seed)
        exact_wrap = ptime_wrap(base, tightness=0.5, seed=seed)
        float_wrap = exact_wrap.copy()
        for arc, interval in exact_wrap.arc_bounds():
            float_wrap.set_bounds(
                arc.source, arc.target,
                float(interval.lower),
                None if interval.upper is None else float(interval.upper),
            )
        exact_result = check_consistency(exact_wrap)
        float_result = check_consistency(float_wrap, exact=False)
        assert exact_result.consistent == float_result.consistent
        if exact_result.consistent:
            assert float(exact_result.rate) == pytest.approx(
                float_result.rate, rel=1e-6, abs=1e-6
            )

    def test_bit_reproducible(self):
        ptg = ptime_wrap(
            random_live_tsg(events=8, extra_arcs=6, seed=11), seed=11
        )
        first = check_consistency(ptg)
        second = check_consistency(ptg.copy())
        assert first.rate == second.rate
        assert first.offsets == second.offsets
        assert isinstance(first.rate, (int, Fraction))


class TestWeakConsistency:
    def test_strong_implies_weak(self):
        ptg = two_ring()
        weak = weak_consistency(ptg, horizon=6)
        assert weak.feasible
        timing = weak.timing
        # prefix respects the interval semantics (token free for k < m)
        for k in range(6):
            gap = timing["b"][k] - timing["a"][k]
            assert 2 <= gap <= 10
        for k in range(1, 6):
            gap = timing["a"][k] - timing["b"][k - 1]
            assert 3 <= gap <= 5
            assert timing["a"][k] >= timing["a"][k - 1]

    def test_conflicting_gadgets_prefix_infeasible(self):
        ptg = from_arcs([
            ("a", "b", 2, 2), ("b", "a", 3, 3, True),
            ("a", "w", 7, 7), ("w", "a", 0, 0, True),
        ])
        weak = weak_consistency(ptg, horizon=6)
        assert not weak.feasible
        assert weak.violation.is_closed()

    def test_weakly_but_not_strongly_consistent(self):
        # horizon 1 imposes only the m=0 constraints; the conflicting
        # circuits need repetition to bite
        ptg = from_arcs([
            ("a", "b", 2, 2), ("b", "a", 3, 3, True),
            ("a", "w", 7, 7), ("w", "a", 0, 0, True),
        ])
        assert weak_consistency(ptg, horizon=1).feasible
        assert not check_consistency(ptg).consistent
