#!/usr/bin/env python
"""Empirically fit the paper's O(b^2 * m) complexity bound.

The cycle-time algorithm runs one event-initiated simulation per
border event (``b`` of them), each over ``b`` unfolding periods, each
period relaxing every one of the ``m`` arcs once — ``O(b^2 * m)``
total simulation work.  This script measures the *simulation phase
only* (the ``run`` phase of :mod:`repro.obs.profile`, excluding
validation, toposort, codegen and backtracking) on the
``ring_with_chords`` generator family, which controls ``b`` (tokens)
and ``m`` (stages + chords) independently, and fits

    log(run_time) = alpha * log(b^2 * m) + c

by least squares.  ``alpha ~= 1`` confirms the bound; the script also
reports per-axis exponents (``m`` with ``b`` fixed, ``b`` with ``m``
fixed).  Exit status is non-zero when the joint exponent falls
outside ``[--min-exponent, --max-exponent]``.

Usage::

    PYTHONPATH=src python scripts/complexity_check.py
    PYTHONPATH=src python scripts/complexity_check.py --repeats 5 --json out.json
"""

import argparse
import json
import math
import sys

import numpy as np

from repro.core import compute_cycle_time, run_border_simulations_batch
from repro.generators.random_graphs import ring_with_chords
from repro.obs.profile import PhaseProfiler, profile_phases

#: kernels the fit can target: the scalar per-analysis path, the
#: per-level batch sweep, and the fused whole-period programs.  The
#: batch kernels sweep BATCH_SAMPLES bindings and divide the run time
#: by it, so the fitted exponent measures per-sample work.  S must be
#: large enough that vector arithmetic dominates numpy dispatch —
#: small S dilutes the b exponent (the fused kernel stacks the b
#: origins along the sample axis, so dispatch-bound ops scale like b,
#: not b^2, until the vectors are wide enough to cost real time).
KERNEL_CHOICES = ("scalar", "batch", "fused")

BATCH_SAMPLES = 64

#: m sweep: arcs grow ~8x, border count pinned at 4.
M_SWEEP = [(120, 4), (240, 4), (480, 4), (960, 4)]
#: b sweep: border count grows 16x on a fixed ring size.
B_SWEEP = [(480, 4), (480, 8), (480, 16), (480, 32), (480, 64)]

WARMUP_ANALYSES = 3  # settle the codegen tier before timing


def measure(stages, tokens, repeats, kernel="scalar", seed=7):
    """Best-of-``repeats`` run-phase seconds for one configuration."""
    graph = ring_with_chords(
        stages, tokens, chords=stages // 4, max_delay=10, seed=seed
    )
    # Float delays exercise the production codegen kernel; perturb one
    # delay so kernel="auto" resolves to float.
    first = graph.arcs[0]
    graph.set_delay(first.source, first.target, float(first.delay))

    if kernel == "scalar":
        def analyse():
            compute_cycle_time(
                graph, backtrack=False, keep_simulations=False, cache="off"
            )
    else:
        rng = np.random.default_rng(seed)
        nominal = np.asarray([float(arc.delay) for arc in graph.arcs])
        matrix = nominal * rng.uniform(
            0.8, 1.2, size=(BATCH_SAMPLES, nominal.size)
        )

        def analyse():
            run_border_simulations_batch(graph, matrix, kernel=kernel)

    for _ in range(WARMUP_ANALYSES):
        analyse()
    best = None
    for _ in range(repeats):
        profiler = PhaseProfiler()
        with profile_phases(profiler):
            analyse()
        run_s = profiler.total("run")
        if kernel != "scalar":
            run_s /= BATCH_SAMPLES
        if best is None or run_s < best:
            best = run_s
    return {
        "stages": stages,
        "tokens": tokens,
        "events": graph.num_events,
        "arcs": graph.num_arcs,
        "b": tokens,
        "m": graph.num_arcs,
        "work": tokens * tokens * graph.num_arcs,
        "run_s": best,
    }


def fit_exponent(points, x_key, y_key="run_s"):
    """Least-squares slope of log(y) against log(x)."""
    xs = [math.log(point[x_key]) for point in points]
    ys = [math.log(point[y_key]) for point in points]
    count = len(points)
    mean_x = sum(xs) / count
    mean_y = sum(ys) / count
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    denominator = sum((x - mean_x) ** 2 for x in xs)
    return numerator / denominator


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per configuration (best-of)")
    parser.add_argument("--min-exponent", type=float, default=0.6,
                        help="lower acceptance bound on the joint exponent")
    parser.add_argument("--max-exponent", type=float, default=1.4,
                        help="upper acceptance bound on the joint exponent")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the measurements as JSON")
    parser.add_argument("--kernel", choices=KERNEL_CHOICES,
                        default="scalar",
                        help="fit the scalar per-analysis path "
                        "(default), the per-level batch sweep, or the "
                        "fused whole-period programs")
    args = parser.parse_args(argv)

    points = []
    print("kernel: %s" % args.kernel)
    print("%8s %8s %8s %10s %12s" % ("b", "m", "events", "b^2*m", "run_s"))
    for stages, tokens in M_SWEEP + B_SWEEP:
        point = measure(stages, tokens, args.repeats, kernel=args.kernel)
        points.append(point)
        print("%8d %8d %8d %10d %12.6f"
              % (point["b"], point["m"], point["events"],
                 point["work"], point["run_s"]))

    m_points = points[:len(M_SWEEP)]
    b_points = points[len(M_SWEEP):]
    exponent_m = fit_exponent(m_points, "m")
    exponent_b = fit_exponent(b_points, "b")
    joint = fit_exponent(points, "work")

    print()
    print("exponent on m  (b fixed at %d): %.3f  (expected ~1)"
          % (m_points[0]["b"], exponent_m))
    print("exponent on b  (ring fixed at %d stages): %.3f  (expected ~2)"
          % (b_points[0]["stages"], exponent_b))
    print("joint exponent on b^2*m: %.3f  (expected ~1)" % joint)

    ok = args.min_exponent <= joint <= args.max_exponent
    verdict = "CONSISTENT" if ok else "INCONSISTENT"
    print("verdict: %s with O(b^2*m) (accept [%g, %g])"
          % (verdict, args.min_exponent, args.max_exponent))

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(
                {
                    "kernel": args.kernel,
                    "points": points,
                    "exponent_m": exponent_m,
                    "exponent_b": exponent_b,
                    "joint_exponent": joint,
                    "consistent": ok,
                },
                handle,
                indent=2,
            )
        print("wrote %s" % args.json)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
