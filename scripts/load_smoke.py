#!/usr/bin/env python
"""Sustained load harness for the multi-worker analysis daemon.

Boots ``repro serve --workers N [--router]`` as a subprocess, drives a
mixed ``/analyze`` + ``/montecarlo`` storm from a pool of keep-alive
clients for ``--duration`` seconds, and enforces the serving SLOs:

* **every request answered**: each request must end in a structured
  success after client-side retries — zero abandoned requests;
* **zero tracebacks** in the server's combined output;
* the final (router-merged, in ``--router`` mode) ``/metrics`` scrape
  parses cleanly and its ``repro_requests_total`` count covers every
  request the storm sent;
* clean SIGTERM shutdown: all workers drain and the parent exits 0.

Prints p50/p99 latency and throughput per endpoint; exits non-zero on
any SLO breach, so CI can run it directly::

    PYTHONPATH=src python scripts/load_smoke.py --workers 2 --duration 4
    PYTHONPATH=src python scripts/load_smoke.py --workers 2 --router
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np  # noqa: E402

from repro.generators import ring_with_chords  # noqa: E402
from repro.obs import textformat  # noqa: E402
from repro.service.client import ServiceClient, ServiceError  # noqa: E402

BANNER = re.compile(r"http://[\d.]+:(\d+)")


def boot(workers: int, router: bool):
    """Start the daemon subprocess; returns (process, url)."""
    src = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "src"
    )
    env = dict(
        os.environ,
        PYTHONPATH=os.path.abspath(src),
        PYTHONUNBUFFERED="1",
    )
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--workers", str(workers), "--port", "0", "--quiet",
        "--drain-timeout", "5",
    ]
    if router:
        argv.append("--router")
    process = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=env, text=True,
    )
    banner = process.stdout.readline()
    match = BANNER.search(banner)
    if not match:
        process.kill()
        raise SystemExit("no listening banner from server: %r" % banner)
    return process, "http://127.0.0.1:%s" % match.group(1)


def build_workload():
    """A mixed request schedule over a handful of distinct topologies."""
    graphs = [
        ring_with_chords(stages=n, tokens=4, chords=n // 4, seed=7)
        for n in (40, 60, 80)
    ]
    schedule = []
    for index, graph in enumerate(graphs):
        schedule.append(("analyze", graph, {}))
        schedule.append(
            ("montecarlo", graph, {"samples": 100, "seed": index})
        )
    return graphs, schedule


def storm(url: str, schedule, duration: float, concurrency: int):
    """Drive the schedule from ``concurrency`` keep-alive clients."""
    deadline = time.monotonic() + duration
    lock = threading.Lock()
    latencies = {"analyze": [], "montecarlo": []}
    failures = []
    sent = [0]

    def worker(offset: int):
        client = ServiceClient(url, timeout=30, retries=4)
        position = offset
        while time.monotonic() < deadline:
            kind, graph, params = schedule[position % len(schedule)]
            position += 1
            started = time.perf_counter()
            try:
                if kind == "analyze":
                    client.analyze(graph)
                else:
                    client.montecarlo(graph, **params)
            except ServiceError as error:
                with lock:
                    failures.append("%s: %s" % (kind, error))
                continue
            elapsed = time.perf_counter() - started
            with lock:
                latencies[kind].append(elapsed)
                sent[0] += 1
        client.close()

    threads = [
        threading.Thread(target=worker, args=(index,), daemon=True)
        for index in range(concurrency)
    ]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started
    return latencies, failures, sent[0], elapsed


def percentile(values, q):
    return float(np.percentile(np.asarray(values), q)) if values else 0.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--router", action="store_true")
    parser.add_argument("--duration", type=float, default=4.0,
                        help="storm length in seconds")
    parser.add_argument("--concurrency", type=int, default=8,
                        help="concurrent keep-alive clients")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the summary document as JSON")
    args = parser.parse_args(argv)

    process, url = boot(args.workers, args.router)
    reader_lines = []
    reader = threading.Thread(
        target=lambda: reader_lines.extend(process.stdout),
        daemon=True,
    )
    reader.start()
    breaches = []
    try:
        probe = ServiceClient(url, timeout=30)
        if not probe.wait_until_ready(timeout=20.0):
            raise SystemExit("daemon never became ready at %s" % url)
        graphs, schedule = build_workload()
        for kind, graph, params in schedule:  # warm every shard once
            if kind == "analyze":
                probe.analyze(graph)
            else:
                probe.montecarlo(graph, **params)

        latencies, failures, total, elapsed = storm(
            url, schedule, args.duration, args.concurrency
        )

        summary = {
            "url": url,
            "workers": args.workers,
            "router": args.router,
            "concurrency": args.concurrency,
            "duration_s": elapsed,
            "requests": total,
            "requests_per_sec": total / elapsed if elapsed else 0.0,
            "failures": len(failures),
            "endpoints": {},
        }
        for kind, values in latencies.items():
            summary["endpoints"][kind] = {
                "count": len(values),
                "p50_ms": 1e3 * percentile(values, 50),
                "p99_ms": 1e3 * percentile(values, 99),
            }
            print(
                "%-11s %6d reqs  p50 %7.2f ms  p99 %7.2f ms"
                % (
                    kind,
                    len(values),
                    summary["endpoints"][kind]["p50_ms"],
                    summary["endpoints"][kind]["p99_ms"],
                )
            )
        print(
            "total       %6d reqs in %.2fs  (%.0f req/s, %d clients)"
            % (total, elapsed, summary["requests_per_sec"],
               args.concurrency)
        )

        # SLO: every request answered (after client retries)
        if failures:
            breaches.append(
                "%d request(s) failed after retries; first: %s"
                % (len(failures), failures[0])
            )
        if total == 0:
            breaches.append("storm sent zero successful requests")

        # SLO: the scrape parses; only the router merges every worker's
        # registry, so full storm coverage is checkable in router mode
        # alone (a SO_REUSEPORT scrape lands on one kernel-picked worker).
        import urllib.request

        scrape = urllib.request.urlopen(url + "/metrics", timeout=30).read()
        families = textformat.parse(scrape.decode("utf-8"))
        counted = sum(
            value
            for _, labels, value in families["repro_requests_total"].samples
            if labels.get("endpoint") in ("/analyze", "/montecarlo")
            and labels.get("status") == "200"
        )
        warmups = len(schedule)
        if counted <= 0:
            breaches.append("metrics scrape shows no successful requests")
        if args.router and counted < total + warmups:
            breaches.append(
                "metrics undercount: scrape shows %d 200s, storm sent %d"
                % (counted, total + warmups)
            )
        if args.workers > 1 and args.router:
            workers_seen = {
                labels.get("worker")
                for _, labels, _ in families["repro_requests_total"].samples
            }
            if len(workers_seen - {None}) < 2:
                breaches.append(
                    "router scrape shows only workers %r" % workers_seen
                )
        summary["metrics_requests_200"] = counted
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(summary, handle, indent=2)
                handle.write("\n")
            print("wrote %s" % os.path.abspath(args.json))
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            breaches.append("daemon did not exit within 30s of SIGTERM")
        reader.join(timeout=5)

    output = "".join(reader_lines)
    if process.returncode != 0:
        breaches.append("daemon exited %r" % process.returncode)
    if "Traceback" in output:
        breaches.append("server output contains a traceback")
    if "shut down cleanly" not in output:
        breaches.append("no clean-shutdown banner in server output")
    if breaches:
        print("LOAD SMOKE FAILED:")
        for breach in breaches:
            print("  - " + breach)
        sys.stdout.write(output)
        return 1
    print("load smoke OK: all SLOs held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
