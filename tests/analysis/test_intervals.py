"""Unit tests for interval delay analysis."""

from fractions import Fraction

import pytest

from repro.analysis import interval_cycle_time, uniform_interval_cycle_time
from repro.core import Transition, compute_cycle_time
from repro.core.errors import GraphConstructionError


def T(text):
    return Transition.parse(text)


class TestIntervalCycleTime:
    def test_bounds_on_oscillator(self, oscillator):
        bounds = {
            (T("a+"), T("c+")): (2, 5),  # the critical a+ -> c+ arc
        }
        result = interval_cycle_time(oscillator, bounds)
        assert result.bounds == (9, 12)
        assert result.spread == 3

    def test_point_intervals_reproduce_fixed_analysis(self, oscillator):
        bounds = {arc.pair: (arc.delay, arc.delay) for arc in oscillator.arcs}
        result = interval_cycle_time(oscillator, bounds)
        assert result.bounds == (10, 10)
        assert result.spread == 0

    def test_off_critical_interval_no_effect_below_threshold(self, oscillator):
        # b+ -> c+ has slack 2: widening it by <= 2 leaves λ at 10
        bounds = {(T("b+"), T("c+")): (2, 4)}
        result = interval_cycle_time(oscillator, bounds)
        assert result.bounds == (10, 10)

    def test_off_critical_interval_takes_over_above_threshold(self, oscillator):
        bounds = {(T("b+"), T("c+")): (2, 9)}
        result = interval_cycle_time(oscillator, bounds)
        assert result.bounds == (10, 15)  # b-cycle becomes critical

    def test_any_fixed_choice_within_bounds(self, oscillator):
        bounds = {
            (T("a+"), T("c+")): (1, 6),
            (T("c-"), T("b+")): (0, 3),
        }
        result = interval_cycle_time(oscillator, bounds)
        low, high = result.bounds
        # probe a few interior corners
        for a_delay, b_delay in [(1, 3), (6, 0), (3, 2), (4, 1)]:
            probe = oscillator.copy()
            probe.set_delay("a+", "c+", a_delay)
            probe.set_delay("c-", "b+", b_delay)
            value = compute_cycle_time(probe).cycle_time
            assert low <= value <= high

    def test_missing_arc_rejected(self, oscillator):
        with pytest.raises(GraphConstructionError):
            interval_cycle_time(oscillator, {(T("a+"), T("b+")): (1, 2)})

    def test_empty_interval_rejected(self, oscillator):
        with pytest.raises(GraphConstructionError):
            interval_cycle_time(oscillator, {(T("a+"), T("c+")): (5, 2)})

    def test_robust_critical_events(self, oscillator):
        bounds = {(T("a+"), T("c+")): (3, 4)}
        result = interval_cycle_time(oscillator, bounds)
        robust = {str(e) for e in result.robust_critical_events()}
        assert robust == {"a+", "c+", "a-", "c-"}

    def test_str(self, oscillator):
        result = interval_cycle_time(oscillator, {(T("a+"), T("c+")): (2, 4)})
        assert "cycle time in [" in str(result)


class TestUniformMargin:
    def test_exact_fraction_margin(self, oscillator):
        result = uniform_interval_cycle_time(oscillator, Fraction(1, 10))
        assert result.bounds == (9, 11)  # λ scales with all delays

    def test_zero_margin(self, oscillator):
        result = uniform_interval_cycle_time(oscillator, 0)
        assert result.spread == 0

    def test_negative_margin_rejected(self, oscillator):
        with pytest.raises(GraphConstructionError):
            uniform_interval_cycle_time(oscillator, -0.1)

    def test_muller_ring(self, muller_ring_graph):
        result = uniform_interval_cycle_time(muller_ring_graph, Fraction(1, 2))
        assert result.bounds == (Fraction(10, 3), 10)


class TestBatchedFloatCorners:
    def test_float_bounds_match_exact_corners(self, oscillator):
        bounds = {(T("a+"), T("c+")): (2, 5), (T("c-"), T("a+")): (1, 3)}
        exact = interval_cycle_time(oscillator, bounds)
        float_bounds = {
            pair: (float(low), float(high))
            for pair, (low, high) in bounds.items()
        }
        batched = interval_cycle_time(oscillator, float_bounds)
        assert batched.bounds[0] == float(exact.bounds[0])
        assert batched.bounds[1] == float(exact.bounds[1])
        assert (
            batched.robust_critical_events() == exact.robust_critical_events()
        )

    def test_float_corners_recover_critical_cycles(self, oscillator):
        result = interval_cycle_time(
            oscillator, {(T("a+"), T("c+")): (3.0, 3.0)}
        )
        assert result.lower.critical_cycles
        assert result.spread == 0.0

    def test_string_keys_with_float_endpoints(self, oscillator):
        # Regression: string-labelled bounds with float endpoints used
        # to pass validation yet miss the arc.pair lookup, silently
        # returning the nominal cycle time for both corners.
        result = interval_cycle_time(oscillator, {("a+", "c+"): (2.0, 5.0)})
        assert result.bounds == (9.0, 12.0)

    def test_float_margin_brackets_exact_bounds(self, oscillator):
        exact = uniform_interval_cycle_time(oscillator, Fraction(1, 5))
        floated = uniform_interval_cycle_time(oscillator, 0.2)
        assert floated.bounds[0] == pytest.approx(float(exact.bounds[0]))
        assert floated.bounds[1] == pytest.approx(float(exact.bounds[1]))
