"""Compiled simulation kernel: dense-index unfolding fast paths.

The legacy simulation loops (:mod:`repro.core.simulation`, kernel
``"legacy"``) pay a tuple construction plus a dict lookup keyed by
``(event, index)`` for every unfolding arc.  This module removes both
costs by *compiling* a :class:`~repro.core.signal_graph.TimedSignalGraph`
once into dense integer indices:

* every event gets an integer id equal to its position in the
  topological order of the unmarked subgraph (the paper's intra-period
  firing order), so instance ``(event, k)`` lives in *slot*
  ``id + k * n`` of a flat list;
* all in-arcs are flattened into per-event programs of
  ``(source_offset, delay)`` pairs addressing a rolling two-period
  buffer — adding nothing at run time: the offsets are final.

Because the model is initially safe (``tokens`` is 0 or 1), the set of
unfolding in-arcs of an instance depends only on which of three period
classes it is in, never on the period index itself:

* **period 0** — arcs with ``tokens == 0`` (the source instance 0
  always exists);
* **period 1** — arcs with ``tokens == 1`` (source instance 0) plus
  token-free arcs from repetitive sources (source instance 1);
* **periods >= 2** (steady state) — arcs whose source is repetitive.

Each class is precompiled into one program.  A period is simulated
inside a buffer of ``2n`` slots — previous period in the lower half,
current period in the upper half — and flushed to the flat result by a
C-speed slice copy, so the inner loop performs no index arithmetic at
all.  Period-over-period the structure is identical, which is what
makes the driver :func:`run_border_simulations` able to run all ``b``
border simulations of the cycle-time algorithm against one compiled
structure.

Two interchangeable kernels run over the same programs:

* the **exact** kernel keeps the original delay objects, so ``int`` /
  :class:`fractions.Fraction` arithmetic is preserved bit-for-bit;
* the **float** kernel replays the programs over ``float64`` copies of
  the delays — the fast path for Monte-Carlo and scaling sweeps.  Once
  a compiled structure has been exercised a few times
  (:data:`CODEGEN_THRESHOLD` kernel runs), its float programs are
  additionally *specialised to straight-line Python source* — one
  statement per unfolding arc, delays inlined as literals — compiled
  with :func:`compile` and cached, removing even the interpreter's loop
  and unpacking overhead.  One-shot analyses never pay the codegen
  cost; benchmarks and repeated sweeps amortise it after the first
  call.

Both kernels are branch-free in the inner loop: undefined instances are
the sentinel ``-inf`` (comparisons and additions with ``-inf`` behave
like the paper's "neglected" arcs under MAX semantics, for exact
operands too), and the argmax predecessor needed for critical-path
backtracking is *not* tracked in the loop — it is recovered on demand
by re-scanning the (tiny) in-arc program of the queried instance, which
reproduces the legacy first-maximum tie-breaking exactly.

The compiled structure is cached on the graph itself (see
:meth:`TimedSignalGraph.cached`) and is invalidated automatically by
any mutation.  Delay-only sweeps can skip recompilation entirely with
:func:`rebind_compiled`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from .errors import NotLiveError, SignalGraphError
from .signal_graph import Event, TimedSignalGraph
from .validation import find_unmarked_cycle, unmarked_subgraph

#: Sentinel for "instance has no simulated time" in flat time arrays.
NEG_INF = float("-inf")

#: Kernel names accepted by the public entry points.
KERNELS = ("auto", "exact", "float", "legacy")

#: Float-kernel runs of one compiled structure before its programs are
#: specialised to straight-line code.  Small enough that benchmarks and
#: sweeps hit the fast tier almost immediately, large enough that a
#: single analysis (``b`` runs for typical small ``b``) stays on the
#: no-setup interpreted tier.
CODEGEN_THRESHOLD = 6

_CACHE_KEY = "compiled-kernel"

#: One compiled in-arc program row:
#: (buffer_index_of_target, [(buffer_index_of_source, delay), ...]).
Row = Tuple[int, List[Tuple[int, object]]]


class CompiledGraph:
    """Dense-index view of a live Timed Signal Graph.

    Attributes
    ----------
    order:
        Events in unmarked-subgraph topological order; the id of an
        event is its position here, so ids themselves are topologically
        sorted and slot ``id + k*n`` layouts are period-major.
    id_of:
        Event -> dense id.
    repetitive:
        Per-id booleans (is the event on a cycle?).
    rep_ids / nonrep_ids:
        Ids of the (non-)repetitive events, ascending (= topo order).
    in_compact:
        Per-event ``(source, tokens, delay, source_is_repetitive)``
        tuples, shared with :class:`~repro.core.unfolding.Unfolding`.

    Program rows address the rolling two-period buffer: the current
    period occupies indices ``n .. 2n-1``, the previous period
    ``0 .. n-1``, so a source reached over ``tokens`` marked arcs sits
    at buffer index ``n + source_id - tokens * n``.
    """

    def __init__(self, graph: TimedSignalGraph):
        cycle = find_unmarked_cycle(graph)
        if cycle is not None:
            raise NotLiveError(
                "cannot unfold a non-live graph (token-free cycle exists)",
                cycle=cycle,
            )
        self.graph = graph
        order: List[Event] = list(nx.topological_sort(unmarked_subgraph(graph)))
        self.order = order
        self.n = n = len(order)
        self.id_of: Dict[Event, int] = {event: i for i, event in enumerate(order)}
        repetitive_set = graph.repetitive_events
        self.repetitive: List[bool] = [event in repetitive_set for event in order]
        self.rep_ids: List[int] = [i for i in range(n) if self.repetitive[i]]
        self.nonrep_ids: List[int] = [i for i in range(n) if not self.repetitive[i]]
        self.topo_repetitive: List[Event] = [order[i] for i in self.rep_ids]
        # position of an id inside rep_ids, -1 for non-repetitive events
        self.rep_index: List[int] = [-1] * n
        for position, tid in enumerate(self.rep_ids):
            self.rep_index[tid] = position
        self._build_programs(graph, repetitive_set)

    def _build_programs(self, graph: TimedSignalGraph, repetitive_set) -> None:
        """(Re)build the per-period-class arc programs from the graph.

        Factored out so :meth:`rebound` can refresh delays on an
        existing topology without re-running the liveness check and the
        topological sort.
        """
        n = self.n
        order = self.order
        id_of = self.id_of
        self.in_compact = {
            event: tuple(
                (arc.source, arc.tokens, arc.delay, arc.source in repetitive_set)
                for arc in graph.in_arcs(event)
            )
            for event in order
        }
        # In-arc order per event is preserved from the graph, which
        # fixes argmax tie-breaking to match the legacy loops.
        p0: List[Row] = []
        p1: List[Row] = []
        ps: List[Row] = []
        for tid, event in enumerate(order):
            p0.append(
                (
                    n + tid,
                    [
                        (n + id_of[source], delay)
                        for source, tokens, delay, _ in self.in_compact[event]
                        if tokens == 0
                    ],
                )
            )
        for tid in self.rep_ids:
            arcs_one: List[Tuple[int, object]] = []
            arcs_steady: List[Tuple[int, object]] = []
            for source, tokens, delay, source_rep in self.in_compact[order[tid]]:
                offset = n + id_of[source] - tokens * n
                if tokens or source_rep:
                    arcs_one.append((offset, delay))
                if source_rep:
                    arcs_steady.append((offset, delay))
            p1.append((n + tid, arcs_one))
            ps.append((n + tid, arcs_steady))
        self.p0, self.p1, self.ps = p0, p1, ps
        self._float_programs: Optional[tuple] = None
        self._float_fns: Optional[tuple] = None
        self._float_runs = 0
        self._allow_codegen = True

    @classmethod
    def rebound(cls, base: "CompiledGraph", graph: TimedSignalGraph) -> "CompiledGraph":
        """A compiled view of ``graph`` reusing ``base``'s topology.

        ``graph`` must have exactly ``base.graph``'s events and arcs
        (same objects, e.g. via :meth:`TimedSignalGraph.copy`) and may
        differ only in delays — the contract of delay sweeps.  Skips
        the liveness check and topological sort, so a rebind is O(m).
        """
        new = cls.__new__(cls)
        new.graph = graph
        new.order = base.order
        new.n = base.n
        new.id_of = base.id_of
        new.repetitive = base.repetitive
        new.rep_ids = base.rep_ids
        new.nonrep_ids = base.nonrep_ids
        new.topo_repetitive = base.topo_repetitive
        new.rep_index = base.rep_index
        new._build_programs(graph, frozenset(base.topo_repetitive))
        # A rebound structure carries trial-specific delays and lives
        # for one analysis; specialising code for it can never pay off.
        new._allow_codegen = False
        return new

    # ------------------------------------------------------------------
    def programs(self, float_mode: bool) -> tuple:
        """The (period-0, period-1, steady) programs for one kernel."""
        if not float_mode:
            return self.p0, self.p1, self.ps
        if self._float_programs is None:

            def convert(program: List[Row]) -> List[Row]:
                return [
                    (tid, [(offset, float(delay)) for offset, delay in arcs])
                    for tid, arcs in program
                ]

            self._float_programs = (
                convert(self.p0),
                convert(self.p1),
                convert(self.ps),
            )
        return self._float_programs

    def float_kernels(self) -> Optional[tuple]:
        """Straight-line compiled float programs, once warmed up.

        Returns ``None`` until :data:`CODEGEN_THRESHOLD` float runs
        have been counted, then a ``(period0, period1, steady)`` triple
        of generated functions ``f(buffer, empty)``.
        """
        if not self._allow_codegen:
            return None
        self._float_runs += 1
        if self._float_fns is None:
            if self._float_runs <= CODEGEN_THRESHOLD:
                return None
            self._float_fns = tuple(
                _generate(program) for program in self.programs(True)
            )
        return self._float_fns

    def arcs_for(self, tid: int, period: int, float_mode: bool):
        """The in-arc program row of instance ``(order[tid], period)``."""
        p0, p1, ps = self.programs(float_mode)
        if period == 0:
            return p0[tid][1]
        position = self.rep_index[tid]
        if position < 0:
            return ()
        return (p1 if period == 1 else ps)[position][1]

    def slot(self, event: Event, index: int, periods: int) -> int:
        """Flat slot of ``(event, index)``, or -1 if outside the prefix."""
        tid = self.id_of.get(event, -1)
        if tid < 0 or index < 0 or index > periods:
            return -1
        if index and not self.repetitive[tid]:
            return -1
        return tid + index * self.n

    def instance_of(self, slot: int) -> Tuple[Event, int]:
        """Inverse of :meth:`slot` for valid slots."""
        index, tid = divmod(slot, self.n)
        return (self.order[tid], index)


def compiled_graph(graph: TimedSignalGraph) -> CompiledGraph:
    """The compiled structure of ``graph``, cached until mutation."""
    return graph.cached(_CACHE_KEY, lambda: CompiledGraph(graph))


def rebind_compiled(graph: TimedSignalGraph, base: CompiledGraph) -> CompiledGraph:
    """Install a delay-rebound compiled structure on ``graph``.

    For bulk delay sweeps (Monte-Carlo sampling, interval corners,
    bottleneck shaving): ``graph`` must be structurally identical to
    ``base.graph`` — same events and arcs, only delays changed — which
    holds for any :meth:`TimedSignalGraph.copy` mutated exclusively via
    :meth:`set_delay`.  The structural classifications (repetitive,
    border, initial events) and the compiled topology are carried over,
    so re-analysis costs O(m) instead of a full recompilation; callers
    then pass ``check=False`` to :func:`~repro.core.compute_cycle_time`.
    """
    donor = base.graph
    graph.cached("repetitive", lambda: donor.repetitive_events)
    graph.cached("border", lambda: donor.border_events)
    graph.cached("initial", lambda: donor.initial_events)
    rebound = CompiledGraph.rebound(base, graph)
    return graph.cached(_CACHE_KEY, lambda: rebound)


def resolve_kernel(graph: TimedSignalGraph, kernel: Optional[str]) -> str:
    """Normalise a kernel selector to ``exact``/``float``/``legacy``.

    ``auto`` (the default everywhere) keeps exact arithmetic whenever
    every delay is an ``int`` or :class:`~fractions.Fraction` — so
    auto-selected results are bit-identical to the legacy path — and
    takes the float64 fast path when float delays are present (where
    the legacy path computed floats anyway).
    """
    if kernel is None or kernel == "auto":
        return "exact" if graph.is_exact else "float"
    if kernel not in ("exact", "float", "legacy"):
        raise SignalGraphError(
            "unknown kernel %r (choose from %s)" % (kernel, ", ".join(KERNELS))
        )
    return kernel


# ----------------------------------------------------------------------
# the kernels
# ----------------------------------------------------------------------
def _sweep(buffer: list, rows: Sequence[Row], init) -> None:
    """Relax one period's program inside the rolling buffer.

    ``init`` is the MAX identity for the simulation kind: ``0`` for the
    global simulation (instances with no predecessors occur at time 0;
    all candidates are non-negative, so pre-seeding 0 never changes a
    maximum) and ``-inf`` for event-initiated simulations (no defined
    predecessor leaves the instance undefined).  ``-inf`` operands flow
    through additions and comparisons exactly like the paper's
    neglected arcs, so the loop needs no definedness branch.
    """
    for target, arcs in rows:
        best = init
        for offset, delay in arcs:
            candidate = buffer[offset] + delay
            if candidate > best:
                best = candidate
        buffer[target] = best


def _generate(rows: Sequence[Row]):
    """Specialise one float program to a straight-line Python function.

    Emits one assignment per event — loop, unpacking and delay-lookup
    overhead all disappear; float delays are inlined as repr literals
    (repr round-trips float64 exactly).  ``empty`` supplies the value
    of no-predecessor rows: 0.0 for global simulations, -inf for
    event-initiated ones, so one generated function serves both kinds.
    """
    lines = ["def _kernel(b, empty):"]
    for target, arcs in rows:
        if not arcs:
            lines.append("    b[%d] = empty" % target)
        elif len(arcs) == 1:
            offset, delay = arcs[0]
            lines.append("    b[%d] = b[%d] + %r" % (target, offset, delay))
        else:
            offset, delay = arcs[0]
            lines.append("    _a = b[%d] + %r" % (offset, delay))
            for offset, delay in arcs[1:]:
                lines.append("    _c = b[%d] + %r" % (offset, delay))
                lines.append("    if _c > _a: _a = _c")
            lines.append("    b[%d] = _a" % target)
    namespace: dict = {}
    exec(compile("\n".join(lines), "<repro-kernel>", "exec"), namespace)
    return namespace["_kernel"]


def _run_periods(
    cg: CompiledGraph, times: list, buffer: list, periods: int, float_mode: bool, init
) -> None:
    """Replay periods 1..periods and flush each into ``times``."""
    n = cg.n
    _, p1, ps = cg.programs(float_mode)
    fns = cg.float_kernels() if float_mode else None
    nonrep = cg.nonrep_ids
    for period in range(1, periods + 1):
        buffer[:n] = buffer[n:]
        if fns is not None:
            (fns[1] if period == 1 else fns[2])(buffer, init)
        else:
            _sweep(buffer, p1 if period == 1 else ps, init)
        kn = period * n
        times[kn:kn + n] = buffer[n:]
        # Non-repetitive events have no instance beyond period 0; their
        # buffer slots carry stale period-0 values (never read by the
        # repetitive-only programs) which must not leak into the result.
        for tid in nonrep:
            times[kn + tid] = NEG_INF


def run_global(cg: CompiledGraph, periods: int, float_mode: bool) -> list:
    """Flat times of the global timing simulation ``t(f)``."""
    n = cg.n
    zero = 0.0 if float_mode else 0
    times = [NEG_INF] * ((periods + 1) * n)
    buffer = [NEG_INF] * (2 * n)
    fns = cg.float_kernels() if float_mode else None
    if fns is not None:
        fns[0](buffer, zero)
    else:
        _sweep(buffer, cg.programs(float_mode)[0], zero)
    times[0:n] = buffer[n:]
    _run_periods(cg, times, buffer, periods, float_mode, zero)
    return times


def run_initiated(
    cg: CompiledGraph, origin_id: int, periods: int, float_mode: bool
) -> list:
    """Flat times of the event-initiated simulation ``t_g(f)``.

    Instances topologically before the origin stay at the ``-inf``
    sentinel (the paper assigns them "the past"); later instances
    maximise over *defined* predecessors only, which the sentinel
    arithmetic handles without branching.  The period-0 prefix depends
    on the origin, so that one period is always interpreted; periods
    1.. replay the shared (possibly code-generated) programs.
    """
    n = cg.n
    p0 = cg.programs(float_mode)[0]
    times = [NEG_INF] * ((periods + 1) * n)
    buffer = [NEG_INF] * (2 * n)
    buffer[n + origin_id] = 0.0 if float_mode else 0
    # Ids equal topological positions, so the period-0 instances after
    # the origin are exactly the rows origin_id+1 .. n-1.
    _sweep(buffer, p0[origin_id + 1:], NEG_INF)
    times[0:n] = buffer[n:]
    _run_periods(cg, times, buffer, periods, float_mode, NEG_INF)
    return times


def argmax_slot(
    cg: CompiledGraph, times: list, slot: int, float_mode: bool
) -> Optional[int]:
    """Recover the argmax predecessor slot of a defined instance.

    The kernels do not track argmax in the hot loop; re-scanning the
    queried instance's in-arc program and taking the *first* candidate
    that equals its time reproduces the legacy strict-``>`` tie-break
    (the first maximal predecessor in graph in-arc order).  Undefined
    predecessors re-evaluate to ``-inf`` and can never match a defined
    time, so they are skipped for free.
    """
    target = times[slot]
    if target == NEG_INF:
        return None
    n = cg.n
    period, tid = divmod(slot, n)
    # Program offsets address the rolling buffer (current period at
    # n..2n-1); shift them back to absolute slots of this period.
    shift = (period - 1) * n
    for offset, delay in cg.arcs_for(tid, period, float_mode):
        if times[offset + shift] + delay == target:
            return offset + shift
    return None


# ----------------------------------------------------------------------
# batched border-event driver
# ----------------------------------------------------------------------
def run_border_simulations(
    graph: TimedSignalGraph,
    periods: Optional[int] = None,
    kernel: str = "auto",
    workers: Optional[int] = None,
    border: Optional[Sequence[Event]] = None,
):
    """Run all border-initiated simulations against one compiled graph.

    Returns ``{border_event: EventInitiatedSimulation}`` in border
    order — the input of the cycle-time algorithm's distance collection.
    ``workers`` > 1 fans the ``b`` simulations out over a thread pool;
    the compiled structure is built once up front and shared read-only,
    so the workers are safe (the pure-Python kernels still serialise on
    the GIL, so this mainly helps when delays trigger non-trivial
    arithmetic such as large Fractions).
    """
    from .simulation import EventInitiatedSimulation

    if border is None:
        border = graph.border_events
    else:
        border = tuple(border)
    if periods is None:
        periods = len(border)
    kernel = resolve_kernel(graph, kernel)
    if kernel != "legacy":
        # Build (and cache) the shared structures before any fan-out.
        cg = compiled_graph(graph)
        cg.programs(kernel == "float")

    def simulate(event):
        return EventInitiatedSimulation(graph, event, periods, kernel=kernel)

    if workers is not None and workers > 1 and len(border) > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=workers) as pool:
            simulations = list(pool.map(simulate, border))
    else:
        simulations = [simulate(event) for event in border]
    return dict(zip(border, simulations))
