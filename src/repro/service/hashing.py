"""Canonical content hashing of Timed Signal Graphs.

Two cooperating hashes address the cache:

* :func:`topology_hash` covers everything *except* delays — the event
  set, the arc set, markings, disengageable flags and the declared
  initial events.  Graphs that differ only in delays share a topology
  hash, so a delay-only rebind reuses the compiled topology of any
  previously seen sibling (:func:`repro.core.kernel.CompiledGraph` is
  canonical for content-equal topologies since the lexicographical
  topological order rework).
* :func:`delay_hash` covers the delay binding alone, keyed per arc.
* :func:`graph_hash` combines both: the full content address.

All hashes are insertion-order independent — events and arcs are
enumerated in the canonical sorted order of
:attr:`~repro.core.signal_graph.TimedSignalGraph.sorted_arcs` — and
ignore the graph's display ``name``.  Delays hash by *exact value and
kind*: ``int`` and ``Fraction`` with denominator 1 coincide (they are
interchangeable under exact arithmetic), while ``5`` and ``5.0``
differ (they select different kernels).  Hashes are memoised on the
graph via :meth:`~repro.core.signal_graph.TimedSignalGraph.cached`,
so they are invalidated automatically by any mutation and repeated
lookups on the same object cost one dict hit.

Events must have a stable ``str()`` across processes (true for
:class:`~repro.core.events.Transition`, strings and ints — every type
the toolkit produces); see :func:`repro.core.events.event_sort_key`.
"""

from __future__ import annotations

import hashlib
from fractions import Fraction
from typing import Iterable

from ..core.events import event_sort_key
from ..core.signal_graph import TimedSignalGraph

#: Bump when the hash payload layout changes; embedded in every hash
#: and in the disk-cache directory layout, so stale on-disk entries
#: from older layouts can never be served.
HASH_VERSION = "1"

_TOPOLOGY_KEY = "service-topology-hash"
_DELAY_KEY = "service-delay-hash"


def delay_token(delay) -> str:
    """Exact, kind-preserving encoding of one delay value."""
    if isinstance(delay, Fraction):
        if delay.denominator == 1:
            return "i%d" % delay.numerator
        return "f%d/%d" % (delay.numerator, delay.denominator)
    if isinstance(delay, int):
        return "i%d" % delay
    # repr round-trips float64 exactly; coerce other Real types
    # (e.g. numpy scalars) through float first.
    return "d" + repr(float(delay))


def _digest(lines: Iterable[str]) -> str:
    h = hashlib.sha256()
    for line in lines:
        h.update(line.encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


def topology_hash(graph: TimedSignalGraph) -> str:
    """Order-independent hash of the delay-free topology."""

    def compute() -> str:
        lines = ["topology-v" + HASH_VERSION]
        lines.extend("e|" + event_sort_key(e) for e in graph.sorted_events)
        lines.extend(
            "i|" + key
            for key in sorted(
                event_sort_key(e) for e in graph.declared_initial_events
            )
        )
        for arc in graph.sorted_arcs:
            lines.append(
                "a|%s|%s|%d%d"
                % (
                    event_sort_key(arc.source),
                    event_sort_key(arc.target),
                    arc.tokens,
                    1 if arc.disengageable else 0,
                )
            )
        return _digest(lines)

    return graph.cached(_TOPOLOGY_KEY, compute)


def delay_hash(graph: TimedSignalGraph) -> str:
    """Order-independent hash of the delay binding alone."""

    def compute() -> str:
        lines = ["delays-v" + HASH_VERSION]
        for arc in graph.sorted_arcs:
            lines.append(
                "d|%s|%s|%s"
                % (
                    event_sort_key(arc.source),
                    event_sort_key(arc.target),
                    delay_token(arc.delay),
                )
            )
        return _digest(lines)

    return graph.cached(_DELAY_KEY, compute)


def graph_hash(graph: TimedSignalGraph) -> str:
    """The full content address: topology plus delay binding."""
    return _digest(
        ["graph-v" + HASH_VERSION, topology_hash(graph), delay_hash(graph)]
    )


# ----------------------------------------------------------------------
# P-time graphs
# ----------------------------------------------------------------------
_PTIME_BOUNDS_KEY = "service-ptime-bounds-hash"


def bound_token(value) -> str:
    """Like :func:`delay_token`, with ``None`` encoding ``+oo``."""
    if value is None:
        return "inf"
    return delay_token(value)


def ptime_bounds_hash(ptg) -> str:
    """Order-independent hash of the ``[l, u]`` binding alone.

    The structural half of a P-time graph's address is
    :func:`topology_hash` of the underlying graph — unchanged, so the
    service cache adopts compiled topologies across bound rebinds,
    exactly as fixed-delay rebinds reuse them across delay rebinds.
    Memoised per wrapper revision (the wrapper mutates through its own
    API, not ``graph.cached`` invalidation).
    """
    cached = getattr(ptg, "_bounds_hash_memo", None)
    if cached is not None and cached[0] == ptg.revision:
        return cached[1]

    lines = ["ptime-bounds-v" + HASH_VERSION]
    for arc, interval in sorted(
        ptg.arc_bounds(),
        key=lambda item: (
            event_sort_key(item[0].source),
            event_sort_key(item[0].target),
        ),
    ):
        lines.append(
            "b|%s|%s|%s|%s"
            % (
                event_sort_key(arc.source),
                event_sort_key(arc.target),
                bound_token(interval.lower),
                bound_token(interval.upper),
            )
        )
    digest = _digest(lines)
    ptg._bounds_hash_memo = (ptg.revision, digest)
    return digest


def ptime_graph_hash(ptg) -> str:
    """Full content address of a P-time graph: topology + bounds."""
    return _digest(
        [
            "ptime-graph-v" + HASH_VERSION,
            topology_hash(ptg.graph),
            ptime_bounds_hash(ptg),
        ]
    )


def ptime_analysis_key(ptg, kind: str, **params) -> str:
    """Cache key for one finished P-time analysis (cf. :func:`analysis_key`)."""
    lines = ["ptime-analysis-v" + HASH_VERSION, kind, ptime_graph_hash(ptg)]
    for name in sorted(params):
        lines.append("%s=%r" % (name, params[name]))
    return _digest(lines)


def analysis_key(graph: TimedSignalGraph, kind: str, **params) -> str:
    """Cache key for one finished analysis of ``graph``.

    ``params`` must be JSON-ish scalars (str/int/float/bool/None);
    they are folded into the key sorted by name, so keyword order at
    the call site never matters.
    """
    lines = ["analysis-v" + HASH_VERSION, kind, graph_hash(graph)]
    for name in sorted(params):
        lines.append("%s=%r" % (name, params[name]))
    return _digest(lines)


# ----------------------------------------------------------------------
# Netlist front-end sources
# ----------------------------------------------------------------------
def netlist_source_hash(source: str) -> str:
    """Content address of a raw circuit source (.bench/Verilog/JSON).

    Hashing the text verbatim is deliberate: the parse itself is part
    of what a cached ``/netlist`` response certifies, so two sources
    that would parse identically but differ textually get distinct
    entries (cheap) rather than sharing one (needs a parse to prove).
    """
    return _digest(["netlist-source-v" + HASH_VERSION, source])


def netlist_analysis_key(source: str, **params) -> str:
    """Cache key for one finished ``/netlist`` pipeline run.

    ``params`` are the transform/extract/analyze knobs (delay, ack
    delay, fanout bound, seed, extraction mode, method) as JSON-ish
    scalars, folded in sorted by name like :func:`analysis_key`.
    """
    lines = ["netlist-analysis-v" + HASH_VERSION, netlist_source_hash(source)]
    for name in sorted(params):
        lines.append("%s=%r" % (name, params[name]))
    return _digest(lines)
