"""The shipped sample files must stay loadable and correct.

Guards against format drift: examples/data/ is user-facing.
"""

import os
from fractions import Fraction

import pytest

from repro.core import compute_cycle_time
from repro.io import astg, json_io

DATA = os.path.join(os.path.dirname(__file__), "..", "..", "examples", "data")

EXPECTED = {
    "oscillator.g": (8, 11, 10),
    "muller_ring.g": (20, 30, Fraction(20, 3)),
    "async_stack.g": (66, 112, 44),
}


class TestSampleGraphFiles:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_loads_and_analyses(self, name):
        events, arcs, cycle_time = EXPECTED[name]
        graph = astg.load(os.path.join(DATA, name))
        assert graph.num_events == events
        assert graph.num_arcs == arcs
        assert compute_cycle_time(graph).cycle_time == cycle_time

    def test_oscillator_matches_library(self):
        from repro.circuits.library import oscillator_tsg

        graph = astg.load(os.path.join(DATA, "oscillator.g"))
        assert graph.structurally_equal(oscillator_tsg())


class TestSampleSVGFiles:
    @pytest.mark.parametrize(
        "name", ["oscillator.svg", "muller_ring.svg", "oscillator_waves.svg"]
    )
    def test_svg_files_are_well_formed(self, name):
        import xml.etree.ElementTree as ET

        with open(os.path.join(DATA, name)) as handle:
            root = ET.fromstring(handle.read())
        assert root.tag.endswith("svg")

    def test_graph_svgs_regenerate_identically(self):
        """The shipped SVGs are exactly what the current renderer
        produces (regeneration is deterministic)."""
        from repro.circuits.library import oscillator_tsg
        from repro.core import compute_cycle_time
        from repro.io.svg import graph_to_svg

        graph = oscillator_tsg()
        critical = compute_cycle_time(graph).critical_cycles
        with open(os.path.join(DATA, "oscillator.svg")) as handle:
            assert handle.read() == graph_to_svg(graph, critical=critical)


class TestSampleNetlistFiles:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("oscillator_netlist.json", 10),
            ("muller_ring_netlist.json", Fraction(20, 3)),
        ],
    )
    def test_loads_and_extracts(self, name, expected):
        from repro.circuits.extraction import extract_signal_graph

        netlist = json_io.load(os.path.join(DATA, name))
        graph = extract_signal_graph(netlist)
        assert compute_cycle_time(graph).cycle_time == expected
