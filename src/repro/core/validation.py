"""Structural validation of Timed Signal Graphs (Section III-A).

The paper restricts analysis to graphs that are:

* **connected** — the repetitive events form one strongly connected
  core (so all repetitive events share a single cycle time,
  Proposition 2);
* **bounded** — automatic for strongly connected marked graphs (token
  counts on cycles are invariant);
* **initially-safe** — boolean marking, enforced at construction time
  by :class:`~repro.core.signal_graph.TimedSignalGraph`;
* **live** — every cycle carries at least one initial token
  (Commoner's condition for marked graphs [5]);
* **well-formed** — no repetitive events before disengageable arcs;
  we also require, equivalently for our initially-safe setting, that
  arcs out of non-repetitive events never need to fire twice.

``validate(graph)`` runs all checks and raises the first violation;
individual ``check_*`` predicates report booleans with witnesses.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import networkx as nx

from .errors import (
    AcyclicGraphError,
    NotConnectedError,
    NotLiveError,
    NotWellFormedError,
)
from .events import Transition, event_label
from .signal_graph import TimedSignalGraph


def unmarked_subgraph(graph: TimedSignalGraph) -> "nx.DiGraph":
    """The sub-digraph of arcs without an initial token.

    Liveness of the Signal Graph is equivalent to this subgraph being
    acyclic, and its topological order is the firing order within one
    unfolding period.
    """
    subgraph = nx.DiGraph()
    subgraph.add_nodes_from(graph.events)
    for arc in graph.arcs:
        if not arc.marked:
            subgraph.add_edge(arc.source, arc.target, delay=arc.delay)
    return subgraph


def find_unmarked_cycle(graph: TimedSignalGraph) -> Optional[List]:
    """An event cycle with no token, or None if the graph is live."""
    subgraph = unmarked_subgraph(graph)
    try:
        cycle_edges = nx.find_cycle(subgraph)
    except nx.NetworkXNoCycle:
        return None
    return [edge[0] for edge in cycle_edges]


def check_live(graph: TimedSignalGraph) -> bool:
    """True iff every cycle contains an initially marked arc."""
    return find_unmarked_cycle(graph) is None


def check_connected_core(graph: TimedSignalGraph) -> bool:
    """True iff the repetitive events form one strongly connected core.

    Graphs whose cyclic behaviour splits into independent components
    have, in general, different cycle times per component, which
    Proposition 2 excludes.
    """
    repetitive = graph.repetitive_events
    if not repetitive:
        return True
    core = graph.repetitive_core()
    return nx.is_strongly_connected(core)


def check_well_formed(graph: TimedSignalGraph) -> bool:
    """True iff no disengageable arc has a repetitive source."""
    repetitive = graph.repetitive_events
    return not any(
        arc.disengageable and arc.source in repetitive for arc in graph.arcs
    )


def check_has_cycles(graph: TimedSignalGraph) -> bool:
    """True iff the graph has repetitive behaviour to analyse."""
    return bool(graph.repetitive_events)


def check_switchover_correct(graph: TimedSignalGraph) -> Tuple[bool, Optional[str]]:
    """Necessary conditions for circuit implementability (Section VIII-A).

    Applies only to graphs whose events are
    :class:`~repro.core.events.Transition` objects: for every signal the
    numbers of rising and falling *repetitive* events must balance, so
    up- and down-going transitions can alternate.  Non-transition
    events make the check vacuously true.

    Returns ``(ok, message)``.
    """
    rising = {}
    falling = {}
    repetitive = graph.repetitive_events
    for event in graph.events:
        if not isinstance(event, Transition) or event not in repetitive:
            continue
        bucket = rising if event.is_rising else falling
        bucket[event.signal] = bucket.get(event.signal, 0) + 1
    for signal in set(rising) | set(falling):
        ups = rising.get(signal, 0)
        downs = falling.get(signal, 0)
        if ups != downs:
            return (
                False,
                "signal %r has %d rising but %d falling repetitive events"
                % (signal, ups, downs),
            )
    return True, None


def validate(graph: TimedSignalGraph, require_cycles: bool = True) -> None:
    """Run all structural checks, raising the first failure.

    Parameters
    ----------
    graph:
        The graph to check.
    require_cycles:
        When True (default) an entirely acyclic graph raises
        :class:`~repro.core.errors.AcyclicGraphError`, because no cycle
        time exists for it.
    """
    cycle = find_unmarked_cycle(graph)
    if cycle is not None:
        raise NotLiveError(
            "cycle without initial token: %s"
            % " -> ".join(event_label(e) for e in cycle),
            cycle=cycle,
        )
    if not check_connected_core(graph):
        raise NotConnectedError(
            "repetitive events do not form one strongly connected core"
        )
    if not check_well_formed(graph):
        raise NotWellFormedError("disengageable arc with repetitive source event")
    if require_cycles and not check_has_cycles(graph):
        raise AcyclicGraphError(
            "graph %r has no cycles; cycle time is undefined" % graph.name
        )
