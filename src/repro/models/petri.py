"""General place/transition nets and the marked-graph check.

Signal Graphs are the Petri-net subclass where every place has exactly
one producer and one consumer ("no conflict situations are possible",
footnote 1 of the paper).  Real specifications often arrive as general
nets; this module accepts them, *checks* whether they are (timed)
marked graphs, and converts exactly when they are:

* :class:`PetriNet` — places and transitions with arbitrary arcs,
  tokens per place, delay per place;
* :func:`is_marked_graph` / :func:`marked_graph_violations` — the
  structural test, with precise diagnostics (which place has
  choice/merge);
* :meth:`PetriNet.to_marked_graph` — conversion to
  :class:`repro.models.marked_graph.MarkedGraph` (and from there to a
  Timed Signal Graph) when the test passes, a typed error otherwise.

The conversion refuses nets with choice rather than approximating
them: the paper's model "Neither OR-causality, nor non-deterministic
choice is considered" (Section III-A), and silently linearising a
choice would produce wrong cycle times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.arithmetic import Number
from ..core.errors import GraphConstructionError, NotWellFormedError
from .marked_graph import MarkedGraph


@dataclass(frozen=True)
class PetriPlace:
    """A place with its producers/consumers resolved lazily."""

    name: str
    tokens: int
    delay: Number


class PetriNet:
    """A place/transition net with timing on places."""

    def __init__(self, name: str = "petri-net"):
        self.name = name
        self._transitions: List[str] = []
        self._places: Dict[str, PetriPlace] = {}
        self._inputs: Dict[str, List[str]] = {}   # place -> producer transitions
        self._outputs: Dict[str, List[str]] = {}  # place -> consumer transitions

    # ------------------------------------------------------------------
    def add_transition(self, name: str) -> str:
        if name not in self._transitions:
            self._transitions.append(name)
        return name

    def add_place(
        self,
        name: str,
        tokens: int = 0,
        delay: Number = 0,
    ) -> PetriPlace:
        if name in self._places:
            raise GraphConstructionError("duplicate place %r" % name)
        if tokens < 0:
            raise GraphConstructionError("tokens must be non-negative")
        place = PetriPlace(name, tokens, delay)
        self._places[name] = place
        self._inputs[name] = []
        self._outputs[name] = []
        return place

    def add_arc(self, source: str, target: str) -> None:
        """Connect transition -> place or place -> transition."""
        source_is_place = source in self._places
        target_is_place = target in self._places
        if source_is_place == target_is_place:
            raise GraphConstructionError(
                "arcs must connect a transition and a place (%r -> %r)"
                % (source, target)
            )
        if source_is_place:
            self.add_transition(target)
            self._outputs[source].append(target)
        else:
            self.add_transition(source)
            self._inputs[target].append(source)

    # ------------------------------------------------------------------
    @property
    def places(self) -> List[PetriPlace]:
        return list(self._places.values())

    @property
    def transitions(self) -> List[str]:
        return list(self._transitions)

    def producers(self, place: str) -> List[str]:
        return list(self._inputs[place])

    def consumers(self, place: str) -> List[str]:
        return list(self._outputs[place])

    # ------------------------------------------------------------------
    def marked_graph_violations(self) -> List[str]:
        """Human-readable reasons this net is not a marked graph."""
        problems = []
        for name in self._places:
            producers = self._inputs[name]
            consumers = self._outputs[name]
            if len(producers) != 1:
                problems.append(
                    "place %r has %d producers (needs exactly 1)%s"
                    % (
                        name,
                        len(producers),
                        " — merge/OR-join" if len(producers) > 1 else "",
                    )
                )
            if len(consumers) != 1:
                problems.append(
                    "place %r has %d consumers (needs exactly 1)%s"
                    % (
                        name,
                        len(consumers),
                        " — choice/conflict" if len(consumers) > 1 else "",
                    )
                )
        return problems

    def is_marked_graph(self) -> bool:
        return not self.marked_graph_violations()

    def to_marked_graph(self) -> MarkedGraph:
        """Convert, raising with diagnostics when the net has choice."""
        problems = self.marked_graph_violations()
        if problems:
            raise NotWellFormedError(
                "not a marked graph: " + "; ".join(problems)
            )
        result = MarkedGraph(self.name)
        for place in self._places.values():
            (producer,) = self._inputs[place.name]
            (consumer,) = self._outputs[place.name]
            result.add_place(
                place.name,
                producer,
                consumer,
                delay=place.delay,
                tokens=place.tokens,
            )
        return result

    def to_signal_graph(self):
        """Straight to a Timed Signal Graph (via the marked graph)."""
        return self.to_marked_graph().to_signal_graph()

    def __repr__(self) -> str:
        return "PetriNet(name=%r, transitions=%d, places=%d)" % (
            self.name,
            len(self._transitions),
            len(self._places),
        )
