"""Two-tier cache behaviour: LRU bounds, sharing tiers, persistence."""

from __future__ import annotations

import os
import subprocess
import sys
import threading

import pytest

from repro.circuits.library import muller_ring_tsg, oscillator_tsg
from repro.core.cycle_time import compute_cycle_time
from repro.core.kernel import peek_compiled
from repro.service.cache import (
    DiskCache,
    LRUCache,
    TwoTierCache,
    compile_cache,
    shared_compiled_graph,
)
from .test_hashing import shuffled_copy

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


class TestLRUCache:
    def test_entry_bound_evicts_lru_first(self):
        cache = LRUCache(max_entries=3)
        for key in "abc":
            cache.put(key, key.upper())
        cache.get("a")  # refresh a; b is now the LRU
        cache.put("d", "D")
        assert cache.get("b") is None
        assert cache.get("a") == "A" and cache.get("d") == "D"
        assert len(cache) == 3
        assert cache.stats.get("evictions") == 1

    def test_cost_bound(self):
        cache = LRUCache(max_entries=100, max_cost=10, cost_fn=lambda v: v)
        cache.put("a", 4)
        cache.put("b", 4)
        cache.put("c", 4)  # 12 > 10: evict a
        assert cache.get("a") is None
        assert cache.total_cost == 8

    def test_oversized_entry_is_kept_alone(self):
        # One entry above max_cost must not evict itself into a loop.
        cache = LRUCache(max_entries=100, max_cost=10, cost_fn=lambda v: v)
        cache.put("big", 50)
        assert cache.get("big") == 50

    def test_overwrite_updates_cost(self):
        cache = LRUCache(max_entries=10, max_cost=10, cost_fn=lambda v: v)
        cache.put("a", 9)
        cache.put("a", 2)
        assert cache.total_cost == 2

    def test_concurrent_get_put(self):
        cache = LRUCache(max_entries=64)
        errors = []

        def worker(base):
            try:
                for i in range(500):
                    cache.put((base, i % 80), i)
                    cache.get((base, (i * 7) % 80))
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64


class TestSharedCompiledGraph:
    def test_identical_content_adopts(self, oscillator):
        shared_compiled_graph(oscillator)
        twin = shuffled_copy(oscillator, seed=3)
        cg = shared_compiled_graph(twin)
        stats = compile_cache().stats
        assert stats.get("adopted") == 1
        # Programs are shared by reference with the cached compile.
        base = peek_compiled(oscillator)
        assert cg.p0 is base.p0 and cg.order is base.order

    def test_delay_variant_rebinds(self, oscillator):
        shared_compiled_graph(oscillator)
        variant = oscillator.copy()
        arc = variant.arcs[0]
        variant.set_delay(arc.source, arc.target, arc.delay + 1)
        shared_compiled_graph(variant)
        stats = compile_cache().stats
        assert stats.get("rebound") == 1
        assert stats.get("misses") == 1  # only the first compile missed

    def test_analysis_matches_uncached(self, oscillator):
        baseline = compute_cycle_time(oscillator.copy(), cache="off")
        shared_compiled_graph(oscillator)  # warm
        twin = shuffled_copy(oscillator, seed=11)
        cached = compute_cycle_time(twin)
        assert cached.cycle_time == baseline.cycle_time
        assert {c.events for c in cached.critical_cycles} == {
            c.events for c in baseline.critical_cycles
        }

    def test_rebound_analysis_matches(self):
        ring = muller_ring_tsg(4)
        shared_compiled_graph(ring)
        variant = shuffled_copy(ring, seed=5)
        arc = variant.arcs[0]
        variant.set_delay(arc.source, arc.target, arc.delay + 2)
        fresh = variant.copy()
        assert (
            compute_cycle_time(variant).cycle_time
            == compute_cycle_time(fresh, cache="off").cycle_time
        )
        assert compile_cache().stats.get("rebound") == 1

    def test_concurrent_resolution_is_safe(self, oscillator):
        graphs = [shuffled_copy(oscillator, seed=s) for s in range(16)]
        results = [None] * len(graphs)

        def resolve(index):
            results[index] = shared_compiled_graph(graphs[index])

        threads = [
            threading.Thread(target=resolve, args=(i,))
            for i in range(len(graphs))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(cg is not None for cg in results)
        lambdas = {compute_cycle_time(g).cycle_time for g in graphs}
        assert len(lambdas) == 1


class TestDiskCache:
    def test_round_trip_and_corruption(self, tmp_path):
        disk = DiskCache(str(tmp_path), "t")
        assert disk.put("key1", {"x": 1})
        assert disk.get("key1") == {"x": 1}
        assert disk.get("absent", default="d") == "d"
        # Corrupt the entry on disk: must degrade to a miss and clean up.
        path = disk._path("key1")
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert disk.get("key1") is None
        assert not os.path.exists(path)

    def test_unpicklable_value_degrades(self, tmp_path):
        disk = DiskCache(str(tmp_path), "t")
        assert not disk.put("key", lambda: None)

    def test_two_tier_promotes_disk_hits(self, tmp_path):
        disk = DiskCache(str(tmp_path), "t")
        cache = TwoTierCache(LRUCache(max_entries=4), disk=disk)
        cache.put("k", [1, 2])
        cache.memory.clear()  # simulate memory pressure
        assert cache.get("k") == [1, 2]
        assert cache.stats.get("disk_hits") == 1
        assert cache.get("k") == [1, 2]  # promoted: memory hit now
        assert cache.stats.get("hits") == 1

    def test_survives_process_restart(self, tmp_path):
        """A second process (different PYTHONHASHSEED) reuses the disk tier.

        Exercises cross-process pickling of the compiled structure,
        including Transition's salted-hash reconstruction.
        """
        script = (
            "import sys; sys.path.insert(0, %r)\n"
            "from repro.circuits.library import muller_ring_tsg\n"
            "from repro.service.cache import configure, compile_cache\n"
            "from repro.service.cache import shared_compiled_graph\n"
            "from repro.core.cycle_time import compute_cycle_time\n"
            "configure(disk=True, disk_dir=%r)\n"
            "g = muller_ring_tsg(3)\n"
            "shared_compiled_graph(g)\n"
            "print(compute_cycle_time(g).cycle_time)\n"
            "s = compile_cache().stats\n"
            "print('disk_hits=%%d misses=%%d'\n"
            "      %% (s.get('disk_hits'), s.get('misses')))\n"
        ) % (os.path.abspath(REPO_SRC), str(tmp_path))

        def run(seed):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            return subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, timeout=120,
            )

        first = run("1")
        assert first.returncode == 0, first.stderr
        assert "disk_hits=0 misses=1" in first.stdout
        second = run("2")
        assert second.returncode == 0, second.stderr
        assert "disk_hits=1 misses=0" in second.stdout
        assert first.stdout.splitlines()[0] == second.stdout.splitlines()[0]


class TestDiskCacheAdversarial:
    """Checksummed entries under hostile bytes: every corruption is
    detected, counted, evicted, and degrades to a miss."""

    @staticmethod
    def _seeded(tmp_path):
        disk = DiskCache(str(tmp_path), "adv")
        assert disk.put("victim", {"payload": list(range(32))})
        assert disk.get("victim") == {"payload": list(range(32))}
        return disk, disk._path("victim")

    def test_truncated_pickle_is_evicted(self, tmp_path):
        disk, path = self._seeded(tmp_path)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        assert disk.get("victim") is None
        assert not os.path.exists(path)
        assert disk.stats.get("corrupt_evicted") == 1

    def test_flipped_byte_fails_checksum(self, tmp_path):
        disk, path = self._seeded(tmp_path)
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0x01  # single bit deep in the payload
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        assert disk.get("victim") is None
        assert not os.path.exists(path)
        assert disk.stats.get("corrupt_evicted") == 1

    def test_zero_length_file_is_evicted(self, tmp_path):
        disk, path = self._seeded(tmp_path)
        open(path, "wb").close()
        assert disk.get("victim") is None
        assert not os.path.exists(path)
        assert disk.stats.get("corrupt_evicted") == 1

    def test_valid_checksum_over_garbage_pickle_is_evicted(self, tmp_path):
        import hashlib

        disk, path = self._seeded(tmp_path)
        garbage = b"\x80\x05definitely not a pickle"
        with open(path, "wb") as handle:
            handle.write(hashlib.sha256(garbage).digest() + garbage)
        assert disk.get("victim") is None
        assert disk.stats.get("corrupt_evicted") == 1

    def test_crashed_writer_temp_files_gcd_on_startup(self, tmp_path):
        disk, _ = self._seeded(tmp_path)
        # Simulate a writer that died between mkstemp and os.replace.
        for index in range(3):
            leftover = os.path.join(disk.directory, "crash%d.tmp" % index)
            with open(leftover, "wb") as handle:
                handle.write(b"partial write")
        reopened = DiskCache(str(tmp_path), "adv")
        assert not [
            name for name in os.listdir(reopened.directory)
            if name.endswith(".tmp")
        ]
        assert reopened.stats.get("temp_gc") == 3
        # The committed entry survived the GC.
        assert reopened.get("victim") == {"payload": list(range(32))}

    def test_concurrent_readers_of_corrupt_entry_are_safe(self, tmp_path):
        disk, path = self._seeded(tmp_path)
        with open(path, "wb") as handle:
            handle.write(b"\x00" * 40)
        outcomes = []

        def read():
            outcomes.append(disk.get("victim", default="miss"))

        threads = [threading.Thread(target=read) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes == ["miss"] * 8


class TestComputeCycleTimeCacheModes:
    def test_results_mode_memoises(self, oscillator):
        first = compute_cycle_time(
            oscillator, cache="results", keep_simulations=False
        )
        twin = shuffled_copy(oscillator, seed=2)
        second = compute_cycle_time(twin, cache="results", keep_simulations=False)
        assert second is first  # memoised object, served by content hash

    def test_off_mode_skips_the_shared_cache(self, oscillator):
        compute_cycle_time(oscillator, cache="off")
        stats = compile_cache().stats
        assert stats.get("misses") == 0 and stats.get("puts") == 0


class TestCrossProcessDiskCache:
    """Multi-worker hardening: concurrent same-key writers never tear an
    entry, and the temp GC never collects a live sibling's in-flight
    ``mkstemp`` files."""

    WRITER = (
        "import sys\n"
        "sys.path.insert(0, %r)\n"
        "from repro.service.cache import DiskCache\n"
        "disk = DiskCache(sys.argv[1], 'xproc')\n"
        "tag = int(sys.argv[2])\n"
        "for round in range(150):\n"
        "    assert disk.put('contended', {'writer': tag, 'round': round,"
        " 'pad': list(range(256))})\n"
    ) % os.path.abspath(REPO_SRC)

    def test_concurrent_same_key_writers_never_tear(self, tmp_path):
        # Two processes hammer one key while this process reads it the
        # whole time: every read must be a complete record from one
        # writer (the checksum turns a torn os.replace into a counted
        # eviction — so corrupt_evicted must stay zero too).
        writers = [
            subprocess.Popen(
                [sys.executable, "-c", self.WRITER, str(tmp_path), str(tag)],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            )
            for tag in (1, 2)
        ]
        disk = DiskCache(str(tmp_path), "xproc")
        observed = set()
        while any(writer.poll() is None for writer in writers):
            record = disk.get("contended")
            if record is not None:
                assert set(record) == {"writer", "round", "pad"}
                assert record["pad"] == list(range(256))
                observed.add(record["writer"])
        for writer in writers:
            _, stderr = writer.communicate(timeout=30)
            assert writer.returncode == 0, stderr.decode()
        assert observed <= {1, 2} and observed
        assert disk.stats.get("corrupt_evicted") == 0
        final = disk.get("contended")
        assert final is not None and final["round"] == 149

    def test_temp_gc_spares_live_writers(self, tmp_path):
        disk = DiskCache(str(tmp_path), "gc")
        assert disk.put("seed", {"value": 1})  # materialise the directory
        sleeper = subprocess.Popen([sys.executable, "-c",
                                    "import time; time.sleep(60)"])
        dead = subprocess.Popen([sys.executable, "-c", "pass"])
        dead.wait()
        try:
            live_tmp = os.path.join(disk.directory,
                                    "w%d-inflight.tmp" % sleeper.pid)
            own_tmp = os.path.join(disk.directory,
                                   "w%d-inflight.tmp" % os.getpid())
            dead_tmp = os.path.join(disk.directory,
                                    "w%d-crashed.tmp" % dead.pid)
            legacy_tmp = os.path.join(disk.directory, "legacy.tmp")
            for path in (live_tmp, own_tmp, dead_tmp, legacy_tmp):
                with open(path, "wb") as handle:
                    handle.write(b"partial")
            reopened = DiskCache(str(tmp_path), "gc")
            # live sibling + our own in-flight files survive; the dead
            # writer's file and pre-pid-tag leftovers are collected
            assert os.path.exists(live_tmp)
            assert os.path.exists(own_tmp)
            assert not os.path.exists(dead_tmp)
            assert not os.path.exists(legacy_tmp)
            assert reopened.stats.get("temp_gc") == 2
        finally:
            sleeper.kill()
            sleeper.wait()

    def test_put_tags_temp_files_with_the_writer_pid(self, tmp_path, monkeypatch):
        disk = DiskCache(str(tmp_path), "tag")
        seen = []
        original = os.replace

        def spy(src, dst):
            seen.append(os.path.basename(src))
            return original(src, dst)

        monkeypatch.setattr(os, "replace", spy)
        assert disk.put("key", {"value": 1})
        assert seen and seen[0].startswith("w%d-" % os.getpid())
        assert seen[0].endswith(".tmp")
