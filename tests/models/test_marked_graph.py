"""Unit tests for the Marked Graph (Petri) front-end."""

from fractions import Fraction

import pytest

from repro.core import validate
from repro.core.errors import GraphConstructionError
from repro.models import MarkedGraph, marked_graph_cycle_time


def producer_consumer(credits=3):
    mg = MarkedGraph("producer-consumer")
    mg.add_place("buffer", "produce", "consume", delay=1, tokens=0)
    mg.add_place("credit", "consume", "produce", delay=2, tokens=credits)
    return mg


class TestConstruction:
    def test_places_and_transitions(self):
        mg = producer_consumer()
        assert mg.transitions == ["produce", "consume"]
        assert len(mg.places) == 2
        assert mg.place("buffer").delay == 1
        assert mg.total_tokens() == 3

    def test_duplicate_place_rejected(self):
        mg = producer_consumer()
        with pytest.raises(GraphConstructionError):
            mg.add_place("buffer", "a", "b")

    def test_negative_tokens_rejected(self):
        mg = MarkedGraph()
        with pytest.raises(GraphConstructionError):
            mg.add_place("p", "a", "b", tokens=-1)

    def test_str_and_repr(self):
        mg = producer_consumer()
        assert "tokens" in str(mg.place("credit"))
        assert "places=2" in repr(mg)


class TestConversion:
    def test_single_token_place(self):
        mg = MarkedGraph()
        mg.add_place("p", "a", "b", delay=3, tokens=1)
        mg.add_place("q", "b", "a", delay=4, tokens=0)
        graph = mg.to_signal_graph()
        assert graph.arc("a", "b").marked
        assert not graph.arc("b", "a").marked
        validate(graph)

    def test_multi_token_place_expands_safely(self):
        mg = producer_consumer(credits=3)
        graph = mg.to_signal_graph()
        assert graph.total_tokens() == 3
        assert all(arc.tokens <= 1 for arc in graph.arcs)
        validate(graph)

    def test_parallel_places_with_different_marking(self):
        mg = MarkedGraph()
        mg.add_place("data", "a", "b", delay=5, tokens=0)
        mg.add_place("slot", "a", "b", delay=1, tokens=1)
        mg.add_place("back", "b", "a", delay=1, tokens=1)
        graph = mg.to_signal_graph()
        validate(graph)
        # both constraints survive: unmarked a->b and marked a~>b
        result = marked_graph_cycle_time(mg)
        assert result.cycle_time == 6  # data place + back place


class TestCycleTime:
    def test_pipelining_through_tokens(self):
        # 3 credits: one item every (1+2)/3 time units
        assert marked_graph_cycle_time(producer_consumer(3)).cycle_time == 1
        assert marked_graph_cycle_time(producer_consumer(1)).cycle_time == 3

    def test_fractional_result(self):
        mg = producer_consumer(2)
        assert marked_graph_cycle_time(mg).cycle_time == Fraction(3, 2)

    def test_agrees_with_exhaustive(self):
        from repro.baselines import compute_cycle_time as by_method

        mg = MarkedGraph("net")
        mg.add_place("p1", "t1", "t2", delay=4, tokens=1)
        mg.add_place("p2", "t2", "t3", delay=2, tokens=0)
        mg.add_place("p3", "t3", "t1", delay=5, tokens=2)
        graph = mg.to_signal_graph()
        timing = by_method(graph, "timing").cycle_time
        exhaustive = by_method(graph, "exhaustive").cycle_time
        assert timing == exhaustive == Fraction(11, 3)
