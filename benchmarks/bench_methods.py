"""E14b — cross-method comparison: agreement and relative speed.

The paper positions timing simulation against linear programming [2],
parametric shortest paths [13] and min-ratio-cycle algorithms [1, 8,
11].  This bench runs all six implemented methods on the same
workloads, asserts exact agreement, and lets pytest-benchmark rank
their runtimes — reproducing the qualitative claim that the timing-
simulation algorithm is competitive on circuit-like graphs (small b)
while exhaustive enumeration blows up.
"""

import pytest

from conftest import emit
from repro.baselines import METHODS, compute_cycle_time
from repro.generators import random_live_tsg, ring_with_chords

WORKLOAD = ring_with_chords(stages=120, tokens=6, chords=30, seed=21)
SMALL = random_live_tsg(events=10, extra_arcs=12, seed=5)

FAST_METHODS = ["timing", "karp", "howard", "lawler", "lp"]


@pytest.mark.parametrize("method", FAST_METHODS)
def test_e14_method_on_circuit_like_graph(benchmark, method):
    result = benchmark(compute_cycle_time, WORKLOAD, method)
    reference = compute_cycle_time(WORKLOAD, "timing").cycle_time
    if method == "lp":
        assert abs(result.cycle_time - float(reference)) < 1e-6
    else:
        assert result.cycle_time == reference
    emit(
        "E14b method=%s on 120-stage ring (b=6)" % method,
        "lambda=%s, mean %.3f ms"
        % (result.cycle_time, benchmark.stats.stats.mean * 1e3),
    )


@pytest.mark.parametrize("method", sorted(METHODS))
def test_e14_method_on_small_dense_graph(benchmark, method):
    result = benchmark(compute_cycle_time, SMALL, method)
    reference = compute_cycle_time(SMALL, "exhaustive").cycle_time
    if method == "lp":
        assert abs(result.cycle_time - float(reference)) < 1e-6
    else:
        assert result.cycle_time == reference
    emit(
        "E14b method=%s on dense 10-event graph" % method,
        "lambda=%s, mean %.3f ms"
        % (result.cycle_time, benchmark.stats.stats.mean * 1e3),
    )


def test_e14_exhaustive_blowup_documented():
    """Section II: 'the number of cycles may be exponential in the
    number of arcs'.  Count simple cycles on growing dense graphs to
    document the blow-up that rules out exhaustive search."""
    from repro.core import simple_cycles

    counts = {}
    for events in (4, 6, 8, 10):
        graph = random_live_tsg(events=events, extra_arcs=3 * events, seed=1)
        counts[(graph.num_events, graph.num_arcs)] = sum(
            1 for _ in simple_cycles(graph)
        )
    values = list(counts.values())
    assert values[-1] > 10 * values[0]
    emit(
        "E14b exponential cycle counts (why exhaustive search loses)",
        "\n".join(
            "n=%d, m=%d: %d simple cycles" % (n, m, c)
            for (n, m), c in counts.items()
        ),
    )
