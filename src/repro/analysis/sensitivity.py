"""Delay sensitivity and bottleneck optimisation.

For an arc on a critical cycle with occurrence period ε, increasing its
delay by ``d`` increases the cycle time by ``d/ε`` (until another cycle
takes over); off-critical arcs have zero first-order sensitivity.  The
*bottleneck ranking* orders arcs by that derivative — the actionable
output of a performance analysis: "speed up this gate input first".

:func:`optimize_bottlenecks` applies the obvious greedy loop: shave a
chosen amount off the most sensitive arc, re-analyse, repeat — the
workflow the paper motivates for asynchronous circuit design.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..core.arithmetic import Number, exact_div
from ..core.cycle_time import compute_cycle_time
from ..core.events import event_label
from ..core.kernel import compiled_graph, rebind_compiled
from ..core.signal_graph import Event, TimedSignalGraph
from ..core.validation import validate as validate_graph
from .performance import PerformanceReport, analyze


@dataclass(frozen=True)
class ArcSensitivity:
    """First-order derivative of the cycle time w.r.t. one arc delay."""

    source: Event
    target: Event
    delay: Number
    sensitivity: Number  # dλ/dδ — 1/ε for critical arcs, else 0

    def __str__(self) -> str:
        return "%s -> %s (delay %s): dλ/dδ = %s" % (
            event_label(self.source),
            event_label(self.target),
            self.delay,
            self.sensitivity,
        )


def delay_sensitivities(
    graph: TimedSignalGraph,
    report: Optional[PerformanceReport] = None,
) -> List[ArcSensitivity]:
    """Sensitivity of the cycle time to every repetitive-core arc.

    Arcs on several critical cycles take the largest ``1/ε``.
    Returned sorted by decreasing sensitivity, then delay.
    """
    if report is None:
        report = analyze(graph)
    best: Dict[Tuple[Event, Event], Number] = {}
    for cycle in report.all_critical_cycles():
        weight = exact_div(1, cycle.occurrence_period)
        for arc in cycle.arcs(graph):
            key = arc.pair
            if key not in best or weight > best[key]:
                best[key] = weight
    rows = []
    for (source, target), slack in report.slacks.items():
        arc = graph.arc(source, target)
        rows.append(
            ArcSensitivity(
                source, target, arc.delay, best.get(arc.pair, Fraction(0))
            )
        )
    rows.sort(key=lambda row: (-float(row.sensitivity), -float(row.delay), str(row.source)))
    return rows


@dataclass
class OptimizationStep:
    """One greedy improvement step."""

    arc: Tuple[Event, Event]
    old_delay: Number
    new_delay: Number
    cycle_time_before: Number
    cycle_time_after: Number


def optimize_bottlenecks(
    graph: TimedSignalGraph,
    steps: int,
    shave: Number = 1,
    floor: Number = 0,
) -> Tuple[TimedSignalGraph, List[OptimizationStep]]:
    """Greedy bottleneck shaving.

    Each step reduces the most sensitive positive-delay arc by
    ``shave`` (not below ``floor``) and re-analyses.  Returns the
    improved graph copy and the step log.  Stops early when no
    critical arc can be reduced further.
    """
    work = graph.copy(name=graph.name + "-optimized")
    log: List[OptimizationStep] = []
    # Validate and compile once: shaving only changes delays, so each
    # re-analysis rebinds the compiled structure and skips the checks,
    # and one cycle-time result per step feeds both the step log and
    # the sensitivity ranking.
    validate_graph(work)
    base = compiled_graph(graph)
    result = compute_cycle_time(work, check=False, keep_simulations=False)
    for _ in range(steps):
        before = result.cycle_time
        candidates = [
            row
            for row in delay_sensitivities(work, analyze(work, result))
            if row.sensitivity > 0 and row.delay > floor
        ]
        if not candidates:
            break
        chosen = candidates[0]
        new_delay = max(floor, chosen.delay - shave)
        work.set_delay(chosen.source, chosen.target, new_delay)
        rebind_compiled(work, base)
        result = compute_cycle_time(work, check=False, keep_simulations=False)
        log.append(
            OptimizationStep(
                arc=(chosen.source, chosen.target),
                old_delay=chosen.delay,
                new_delay=new_delay,
                cycle_time_before=before,
                cycle_time_after=result.cycle_time,
            )
        )
    return work, log
