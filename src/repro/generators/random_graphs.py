"""Random live Timed Signal Graphs for testing and scaling studies.

Construction guarantees the structural invariants by design:

* start from a random Hamiltonian cycle over ``n`` events (strong
  connectivity);
* add ``extra_arcs`` random chords;
* mark every arc that jumps *backwards* in a fixed ordering of the
  cycle, plus the cycle-closing arc — every cycle of the digraph must
  pass through at least one backward arc, so every cycle carries a
  token (liveness);
* draw integer delays uniformly from ``[0, max_delay]``.

The number of border events is controlled indirectly: dense backward
chords create more marked arcs.  ``ring_with_chords`` exposes a direct
handle on ``b`` for the O(b^2 m) scaling experiment.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.signal_graph import TimedSignalGraph


def random_live_tsg(
    events: int,
    extra_arcs: int,
    max_delay: int = 10,
    seed: Optional[int] = None,
    name: Optional[str] = None,
) -> TimedSignalGraph:
    """A random live, strongly connected Timed Signal Graph.

    ``events >= 2``; the result has ``events`` events and at most
    ``events + extra_arcs`` arcs (duplicate draws are merged).
    """
    if events < 2:
        raise ValueError("need at least 2 events")
    rng = random.Random(seed)
    graph = TimedSignalGraph(
        name=name or "random-%d-%d-%s" % (events, extra_arcs, seed)
    )
    order = list(range(events))
    rng.shuffle(order)
    labels = ["e%d" % index for index in range(events)]

    def position(index: int) -> int:
        return order[index]

    # Hamiltonian cycle over the shuffled order.
    for step in range(events):
        source = order[step]
        target = order[(step + 1) % events]
        backward = step == events - 1  # the closing arc jumps backwards
        graph.add_arc(
            labels[source],
            labels[target],
            rng.randint(0, max_delay),
            marked=backward,
        )

    rank = {node: step for step, node in enumerate(order)}
    for _ in range(extra_arcs):
        source, target = rng.sample(range(events), 2)
        backward = rank[target] <= rank[source]
        if graph.has_arc(labels[source], labels[target]):
            continue
        graph.add_arc(
            labels[source],
            labels[target],
            rng.randint(0, max_delay),
            marked=backward,
        )
    return graph


def ring_with_chords(
    stages: int,
    tokens: int,
    chords: int = 0,
    max_delay: int = 10,
    seed: Optional[int] = None,
) -> TimedSignalGraph:
    """A ring of ``stages`` events carrying ``tokens`` marked arcs.

    The marked arcs (hence border events, hence the paper's ``b``) are
    spread evenly around the ring; optional *forward* chords add arcs
    without changing ``b`` much.  This gives independent control of
    ``n``, ``m`` and ``b`` for the complexity experiment.
    """
    if not 1 <= tokens <= stages:
        raise ValueError("tokens must be in 1..stages")
    rng = random.Random(seed)
    graph = TimedSignalGraph(name="ring-%d-%d" % (stages, tokens))
    marked_positions = {
        round(position * stages / tokens) % stages for position in range(tokens)
    }
    for index in range(stages):
        graph.add_arc(
            "r%d" % index,
            "r%d" % ((index + 1) % stages),
            rng.randint(1, max_delay),
            marked=index in marked_positions,
        )
    added = 0
    attempts = 0
    while added < chords and attempts < 50 * chords:
        attempts += 1
        source = rng.randrange(stages)
        span = rng.randint(2, max(2, stages // 4))
        target = (source + span) % stages
        if target == source or graph.has_arc("r%d" % source, "r%d" % target):
            continue
        # Only add chords whose skipped span contains no marked ring
        # arc: the chord stays unmarked, so the border set (and hence
        # the paper's b) is exactly `tokens`.  Liveness is preserved
        # because every cycle still wraps the whole ring and must cross
        # each marked position through the ring arc itself.
        crosses_marked = any(
            ((source + offset) % stages) in marked_positions for offset in range(span)
        )
        if crosses_marked:
            continue
        graph.add_arc(
            "r%d" % source,
            "r%d" % target,
            rng.randint(1, max_delay),
            marked=False,
        )
        added += 1
    return graph


def random_marked_graph_batch(
    count: int, events: int, extra_arcs: int, seed: int = 0
):
    """A reproducible list of random live graphs (for benchmarks)."""
    return [
        random_live_tsg(events, extra_arcs, seed=seed + index)
        for index in range(count)
    ]
