"""Cross-validation of the fused period-program kernel (and numba tier).

Every batch kernel — the per-level ``batch`` sweep, the ``fused``
whole-period programs, and the ``numba`` per-sample loop (or its
pure-Python reference interpreter) — runs the same IEEE float64
additions and maximums in a semantically identical order, so their
initiator-time tables, λ values and backtracked critical cycles must
agree **bit for bit** with each other and with the per-sample float
kernel.  These tests pin that invariant across random topologies,
degenerate shapes (b=1, S=1, single-level graphs) and every unroll
span the fused planner can choose.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.circuits.library import (
    async_stack_tsg,
    linear_pipeline_tsg,
    muller_ring_tsg,
    oscillator_tsg,
)
from repro.core import (
    SignalGraphError,
    compiled_graph,
    compute_cycle_time,
    rebind_compiled,
    run_border_simulations_batch,
)
from repro.core.kernel import (
    BATCH_KERNELS,
    BatchBindings,
    CompiledGraph,
    _batch_structure_of,
    numba_available,
    resolve_batch_kernel,
    run_border_sweep_fused,
    run_border_sweep_numba,
    run_initiated_batch,
)
from repro.core.signal_graph import TimedSignalGraph
from repro.generators import ring_with_chords

from tests.strategies import live_tsgs

COMMON = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

SAMPLES = 5


def _floatified(graph):
    clone = graph.copy(name=graph.name + "-float")
    for arc in graph.arcs:
        clone.set_delay(arc.source, arc.target, float(arc.delay) * 1.25)
    return clone


def _random_matrix(graph, samples, seed):
    rng = np.random.default_rng(seed)
    nominal = np.asarray([float(arc.delay) for arc in graph.arcs])
    return nominal * rng.uniform(0.5, 1.5, size=(samples, len(nominal)))


def _per_sample(graph, matrix, index, **kwargs):
    base = compiled_graph(graph)
    trial = graph.copy()
    for arc, value in zip(graph.arcs, matrix[index]):
        trial.set_delay(arc.source, arc.target, float(value))
    rebind_compiled(trial, base)
    return compute_cycle_time(
        trial, check=False, kernel="float", keep_simulations=False, **kwargs
    )


def _tables(graph, matrix, kernel, **kwargs):
    sweep = run_border_simulations_batch(
        graph, matrix, kernel=kernel, **kwargs
    )
    return sweep, {
        event: table for event, table in sweep.initiator_times.items()
    }


# ----------------------------------------------------------------------
# property-based cross-validation
# ----------------------------------------------------------------------
@COMMON
@given(graph=live_tsgs())
def test_fused_tables_bit_identical_to_batch(graph):
    clone = _floatified(graph)
    matrix = _random_matrix(clone, SAMPLES, seed=0)
    _, batch = _tables(clone, matrix, "batch")
    _, fused = _tables(clone, matrix, "fused")
    assert batch.keys() == fused.keys()
    for event, table in batch.items():
        assert np.array_equal(table, fused[event])


@COMMON
@given(graph=live_tsgs())
def test_fused_lambda_bit_identical_to_per_sample(graph):
    clone = _floatified(graph)
    matrix = _random_matrix(clone, SAMPLES, seed=1)
    lambdas = run_border_simulations_batch(
        clone, matrix, kernel="fused"
    ).cycle_times()
    for index in range(SAMPLES):
        reference = _per_sample(clone, matrix, index, backtrack=False)
        assert lambdas[index] == float(reference.cycle_time)


@COMMON
@given(graph=live_tsgs())
def test_fused_backtracked_cycles_match_per_sample(graph):
    clone = _floatified(graph)
    matrix = _random_matrix(clone, SAMPLES, seed=2)
    sweep = run_border_simulations_batch(clone, matrix, kernel="fused")
    for index in range(SAMPLES):
        reference = _per_sample(clone, matrix, index)
        lazy = sweep.sample_result(index)
        assert lazy.cycle_time == float(reference.cycle_time)
        assert sorted(cycle.events for cycle in lazy.critical_cycles) == sorted(
            cycle.events for cycle in reference.critical_cycles
        )


@COMMON
@given(graph=live_tsgs())
def test_fused_agrees_with_exact_oracle(graph):
    # The float64 fused sweep at the graph's own (int/Fraction) delays
    # must reproduce the exact kernel's λ up to float conversion.
    matrix = np.asarray(
        [[float(arc.delay) for arc in graph.arcs]], dtype=np.float64
    )
    fused = run_border_simulations_batch(
        graph, matrix, kernel="fused"
    ).cycle_times()
    exact = compute_cycle_time(graph, check=False, kernel="exact")
    assert fused[0] == pytest.approx(float(exact.cycle_time), rel=1e-12)


@COMMON
@given(graph=live_tsgs())
def test_numba_interpreter_bit_identical_to_fused(graph):
    # force_interpreter exercises the exact loop numba would compile,
    # without requiring numba in the environment.
    clone = _floatified(graph)
    matrix = _random_matrix(clone, SAMPLES, seed=3)
    cg = compiled_graph(clone)
    bindings = BatchBindings(cg, matrix)
    origins = [cg.id_of[event] for event in clone.border_events]
    periods = len(clone.border_events)
    fused = run_border_sweep_fused(bindings, origins, periods)
    interp = run_border_sweep_numba(
        bindings, origins, periods, force_interpreter=True
    )
    for expected, got in zip(fused, interp):
        assert np.array_equal(expected, got)


# ----------------------------------------------------------------------
# odd shapes
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "factory",
    [
        oscillator_tsg,                              # b=2, tiny
        lambda: linear_pipeline_tsg(stages=7),       # b=1 (deep unroll)
        lambda: linear_pipeline_tsg(stages=2),       # b=1, minimal levels
        lambda: muller_ring_tsg(stages=5),           # odd ring
        async_stack_tsg,                             # b=22, wide border
    ],
    ids=["oscillator", "pipeline7", "pipeline2", "muller5", "stack"],
)
@pytest.mark.filterwarnings(
    "ignore:numba is not importable:RuntimeWarning"
)
def test_odd_shapes_bit_identical(factory):
    graph = _floatified(factory())
    for samples in (1, 3):  # S=1 exercises the degenerate sample axis
        matrix = _random_matrix(graph, samples, seed=samples)
        _, batch = _tables(graph, matrix, "batch")
        _, fused = _tables(graph, matrix, "fused")
        _, numba_t = _tables(graph, matrix, "numba")
        for event, table in batch.items():
            assert np.array_equal(table, fused[event])
            assert np.array_equal(table, numba_t[event])


@pytest.mark.parametrize("unroll", [1, 2, 3, 4])
def test_forced_unroll_spans_bit_identical(unroll):
    # Forcing every span covers both the empty tail (periods-1 a
    # multiple of the span) and partial tails.
    graph = _floatified(ring_with_chords(stages=24, tokens=4, chords=6,
                                         seed=9))
    matrix = _random_matrix(graph, 4, seed=unroll)
    _, batch = _tables(graph, matrix, "batch")
    _, fused = _tables(graph, matrix, "fused", unroll=unroll)
    for event, table in batch.items():
        assert np.array_equal(table, fused[event])


def test_single_period_sweep():
    # periods == 1 leaves no room for any steady span: p0 + p1 only.
    graph = _floatified(linear_pipeline_tsg(stages=4))
    matrix = _random_matrix(graph, 3, seed=5)
    cg = compiled_graph(graph)
    origins = [cg.id_of[event] for event in graph.border_events]
    fused = run_border_sweep_fused(BatchBindings(cg, matrix), origins, 1)
    for origin, table in zip(origins, fused):
        reference = run_initiated_batch(BatchBindings(cg, matrix), origin, 1)
        assert np.array_equal(table, reference)


# ----------------------------------------------------------------------
# kernel registry
# ----------------------------------------------------------------------
def test_registry_auto_resolves_to_fused():
    assert resolve_batch_kernel(None) == "fused"
    assert resolve_batch_kernel("auto") == "fused"
    assert resolve_batch_kernel("batch") == "batch"
    assert set(BATCH_KERNELS) == {"auto", "batch", "fused", "numba"}


def test_registry_rejects_unknown_kernel():
    with pytest.raises(SignalGraphError):
        resolve_batch_kernel("gpu")
    graph = _floatified(oscillator_tsg())
    with pytest.raises(SignalGraphError):
        run_border_simulations_batch(
            graph, _random_matrix(graph, 2, seed=0), kernel="exact"
        )


def test_numba_fallback_warns_when_unavailable():
    if numba_available():
        pytest.skip("numba importable: no fallback to exercise")
    with pytest.warns(RuntimeWarning, match="falling back"):
        assert resolve_batch_kernel("numba") == "fused"


@pytest.mark.skipif(not numba_available(), reason="numba not installed")
def test_numba_compiled_bit_identical_to_fused():
    graph = _floatified(muller_ring_tsg(stages=6))
    matrix = _random_matrix(graph, 4, seed=13)
    _, fused = _tables(graph, matrix, "fused")
    _, jit = _tables(graph, matrix, "numba")
    for event, table in fused.items():
        assert np.array_equal(table, jit[event])


# ----------------------------------------------------------------------
# plan caching across adopt / rebound
# ----------------------------------------------------------------------
def test_adopt_carries_fused_plans_as_donor():
    graph = _floatified(ring_with_chords(stages=16, tokens=3, chords=4,
                                         seed=2))
    cg = compiled_graph(graph)
    matrix = _random_matrix(graph, 3, seed=0)
    run_border_simulations_batch(graph, matrix, kernel="fused")
    structure = _batch_structure_of(cg)
    assert structure._fused_plans  # warmed by the sweep

    twin = graph.copy()
    adopted = CompiledGraph.adopt(cg, twin)
    # O(1) adoption defers validation: the donor rides along and the
    # twin's first batch use resolves to the very same structure.
    assert adopted._batch_structure is None
    assert _batch_structure_of(adopted) is structure

    sweep = run_border_simulations_batch(
        twin, matrix, kernel="fused"
    ).cycle_times()
    original = run_border_simulations_batch(
        graph, matrix, kernel="fused"
    ).cycle_times()
    assert np.array_equal(sweep, original)


def test_rebound_carries_fused_plans_as_donor():
    graph = _floatified(ring_with_chords(stages=16, tokens=3, chords=4,
                                         seed=3))
    cg = compiled_graph(graph)
    run_border_simulations_batch(
        graph, _random_matrix(graph, 2, seed=1), kernel="fused"
    )
    structure = _batch_structure_of(cg)

    trial = graph.copy()
    for arc in graph.arcs:
        trial.set_delay(arc.source, arc.target, float(arc.delay) * 1.5)
    rebound = rebind_compiled(trial, cg)
    assert _batch_structure_of(rebound) is structure


def test_donor_dropped_when_arc_order_differs():
    graph = _floatified(ring_with_chords(stages=10, tokens=2, chords=3,
                                         seed=4))
    cg = compiled_graph(graph)
    run_border_simulations_batch(
        graph, _random_matrix(graph, 2, seed=2), kernel="fused"
    )
    donor = _batch_structure_of(cg)

    # Same content, different arc insertion order: the donor's column
    # layout no longer matches and must be rebuilt, not reused.
    reordered = TimedSignalGraph(name=graph.name + "-reordered")
    for event in graph.events:
        reordered.add_event(event)
    for arc in reversed(list(graph.arcs)):
        reordered.add_arc(arc.source, arc.target, arc.delay,
                          marked=arc.marked,
                          disengageable=arc.disengageable)
    assert [a.pair for a in reordered.arcs] != [a.pair for a in graph.arcs]
    adopted = CompiledGraph.adopt(cg, reordered)
    fresh = _batch_structure_of(adopted)
    assert fresh is not donor

    matrix = _random_matrix(reordered, 3, seed=5)
    got = run_border_simulations_batch(
        reordered, matrix, kernel="fused"
    ).cycle_times()
    want = run_border_simulations_batch(
        reordered, matrix, kernel="batch"
    ).cycle_times()
    assert np.array_equal(got, want)


def test_pickle_roundtrip_drops_donor_and_still_sweeps():
    import pickle

    graph = _floatified(ring_with_chords(stages=10, tokens=2, chords=2,
                                         seed=6))
    cg = compiled_graph(graph)
    matrix = _random_matrix(graph, 3, seed=7)
    want = run_border_simulations_batch(
        graph, matrix, kernel="fused"
    ).cycle_times()
    clone = pickle.loads(pickle.dumps(cg))
    assert clone._batch_donor is None
    origins = [clone.id_of[event] for event in graph.border_events]
    fused = run_border_sweep_fused(
        BatchBindings(clone, matrix), origins, len(origins)
    )
    reference = run_border_simulations_batch(
        graph, matrix, kernel="fused"
    )
    for event, table in zip(graph.border_events, fused):
        assert np.array_equal(table, reference.initiator_times[event])
    assert np.array_equal(want, reference.cycle_times())
