#!/usr/bin/env python3
"""Bottleneck hunting: use the critical cycle to guide optimisation.

The critical cycle is "the bottleneck of the system" (Section I).
This example takes an unbalanced 8-stage ring with one slow stage,
identifies the bottleneck through sensitivity analysis (dλ/dδ per
arc), and greedily shaves the most critical delay until the ring is
balanced — printing the cycle time after each step and verifying each
claim with a fresh analysis.

Run:  python examples/bottleneck_tuning.py
"""

from repro import compute_cycle_time
from repro.analysis import delay_sensitivities, optimize_bottlenecks
from repro.generators import unbalanced_ring


def main() -> None:
    graph = unbalanced_ring(stages=8, slow_stage=3, slow_delay=12, fast_delay=2)
    result = compute_cycle_time(graph)
    print("initial cycle time:", result.cycle_time)
    print("critical cycle:", result.critical_cycles[0])
    print()

    print("delay sensitivities (dλ/dδ):")
    for row in delay_sensitivities(graph):
        print("  ", row)
    print()

    improved, log = optimize_bottlenecks(graph, steps=12, shave=2, floor=2)
    print("greedy bottleneck shaving (2 units per step, floor 2):")
    for step in log:
        print(
            "  %s -> %s : delay %s -> %s, cycle time %s -> %s"
            % (
                step.arc[0],
                step.arc[1],
                step.old_delay,
                step.new_delay,
                step.cycle_time_before,
                step.cycle_time_after,
            )
        )
    final = compute_cycle_time(improved)
    print()
    print("final cycle time:", final.cycle_time)
    print(
        "the ring is balanced: every arc is now critical"
        if len(final.critical_cycles[0]) == 8
        else "further shaving would chase the next bottleneck"
    )


if __name__ == "__main__":
    main()
