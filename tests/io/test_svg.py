"""Unit tests for the dependency-free SVG renderers."""

import xml.etree.ElementTree as ET

import pytest

from repro.core import EventInitiatedSimulation, TimingSimulation, compute_cycle_time
from repro.io.svg import graph_to_svg, waveforms_to_svg, write_svg


def _parse(svg_text):
    return ET.fromstring(svg_text)


class TestGraphSVG:
    def test_well_formed_xml(self, oscillator):
        root = _parse(graph_to_svg(oscillator))
        assert root.tag.endswith("svg")

    def test_all_events_labelled(self, oscillator):
        text = graph_to_svg(oscillator)
        for label in ["a↑", "a↓", "c↑", "c↓", "e↓", "f↓"]:
            assert label in text

    def test_tokens_drawn(self, oscillator):
        root = _parse(graph_to_svg(oscillator))
        dots = [
            el for el in root.iter()
            if el.tag.endswith("circle") and el.get("fill") == "#1a1a1a"
        ]
        assert len(dots) == 2  # the two marked arcs

    def test_disengageable_dashed(self, oscillator):
        text = graph_to_svg(oscillator)
        assert text.count("stroke-dasharray") == 3

    def test_critical_highlight(self, oscillator):
        result = compute_cycle_time(oscillator)
        text = graph_to_svg(oscillator, critical=result.critical_cycles)
        assert "#c62828" in text
        plain = graph_to_svg(oscillator)
        assert "#c62828" not in plain

    def test_self_loop_rendered(self):
        from repro.core import TimedSignalGraph

        g = TimedSignalGraph()
        g.add_arc("a+", "a+", 3, marked=True)
        root = _parse(graph_to_svg(g))
        loops = [
            el for el in root.iter()
            if el.tag.endswith("circle") and el.get("fill") == "none"
        ]
        assert loops

    def test_deterministic(self, oscillator):
        assert graph_to_svg(oscillator) == graph_to_svg(oscillator)

    def test_write_svg(self, tmp_path, oscillator):
        path = str(tmp_path / "osc.svg")
        write_svg(graph_to_svg(oscillator), path)
        with open(path) as handle:
            assert "<svg" in handle.read()


class TestWaveformSVG:
    def test_well_formed(self, oscillator):
        sim = TimingSimulation(oscillator, periods=2)
        root = _parse(waveforms_to_svg(sim))
        assert root.tag.endswith("svg")

    def test_one_polyline_per_signal(self, oscillator):
        sim = TimingSimulation(oscillator, periods=2)
        root = _parse(waveforms_to_svg(sim))
        polylines = [el for el in root.iter() if el.tag.endswith("polyline")]
        assert len(polylines) == 5  # a b c e f

    def test_signal_subset(self, oscillator):
        sim = TimingSimulation(oscillator, periods=2)
        root = _parse(waveforms_to_svg(sim, signals=["a", "c"]))
        polylines = [el for el in root.iter() if el.tag.endswith("polyline")]
        assert len(polylines) == 2

    def test_event_initiated(self, oscillator):
        sim = EventInitiatedSimulation(oscillator, "a+", periods=2)
        text = waveforms_to_svg(sim)
        assert "polyline" in text

    def test_empty_simulation(self):
        from repro.core import TimedSignalGraph, TimingSimulation

        g = TimedSignalGraph()
        g.add_arc("n1", "n2", 1)
        g.add_arc("n2", "n1", 1, marked=True)
        sim = TimingSimulation(g, periods=1)
        root = _parse(waveforms_to_svg(sim))
        assert root.tag.endswith("svg")
