"""Equivalent front-end models: Marked Graphs and Event-Rule Systems.

The paper's algorithm applies to "any other equivalent model"
(Section I); these modules provide the two it names — Marked Graphs
[5] in Petri-net vocabulary and Burns' Event-Rule Systems [2] — as
thin, lossless front-ends over the Timed Signal Graph core.
"""

from .event_rules import EventRuleSystem, Rule
from .event_rules import cycle_time as ers_cycle_time
from .marked_graph import MarkedGraph, Place
from .petri import PetriNet, PetriPlace
from .marked_graph import cycle_time as marked_graph_cycle_time

__all__ = [
    "PetriNet",
    "PetriPlace",
    "EventRuleSystem",
    "MarkedGraph",
    "Place",
    "Rule",
    "ers_cycle_time",
    "marked_graph_cycle_time",
]
