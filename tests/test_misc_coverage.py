"""Edge-path coverage for corners no other file exercises."""

from fractions import Fraction

import pytest

from repro.core import TimedSignalGraph, Transition, compute_cycle_time
from repro.core.errors import SignalGraphError


class TestGraphEdgePaths:
    def test_remove_event_cascades_arcs(self, oscillator):
        oscillator.remove_event("c+")
        assert not oscillator.has_arc("a+", "c+")
        assert not oscillator.has_arc("c+", "a-")
        assert oscillator.num_events == 7

    def test_remove_unknown_event(self, oscillator):
        with pytest.raises(KeyError):
            oscillator.remove_event("ghost+")

    def test_remove_declared_initial_event(self):
        g = TimedSignalGraph()
        g.add_event("boot", initial=True)
        g.add_arc("boot", "a+", 1)
        g.add_arc("a+", "a+", 1, marked=True)
        g.remove_event("boot")
        assert "boot" not in {str(e) for e in g.initial_events}

    def test_set_delay_on_missing_arc(self, oscillator):
        with pytest.raises(KeyError):
            oscillator.set_delay("a+", "b+", 1)

    def test_multimarked_negative_tokens(self):
        from repro.core.errors import GraphConstructionError

        g = TimedSignalGraph()
        with pytest.raises(GraphConstructionError):
            g.add_multimarked_arc("a+", "b+", 1, -1)


class TestCutsetOptions:
    def test_minimum_cut_set_with_upper_bound(self, oscillator):
        from repro.core import minimum_cut_set

        result = minimum_cut_set(oscillator, upper_bound=1)
        assert len(result) == 1

    def test_minimum_cut_sets_explicit_size(self, oscillator):
        from repro.core import minimum_cut_sets

        pairs = minimum_cut_sets(oscillator, size=2)
        assert all(len(s) == 2 for s in pairs)
        assert pairs  # e.g. {a+, b+} and friends


class TestAstgOptions:
    def test_loads_name_parameter(self):
        from repro.io import astg

        g = astg.loads(".graph\na+ a+ 1\n.marking { <a+,a+> }\n", name="custom")
        assert g.name == "custom"

    def test_model_overrides_name_parameter(self):
        from repro.io import astg

        g = astg.loads(
            ".model declared\n.graph\na+ a+ 1\n.marking { <a+,a+> }\n",
            name="fallback",
        )
        assert g.name == "declared"

    def test_stream_round_trip(self, oscillator):
        import io

        from repro.io import astg

        buffer = io.StringIO()
        astg.dump(oscillator, buffer)
        buffer.seek(0)
        assert astg.load(buffer).structurally_equal(oscillator)


class TestSimulatorOptions:
    def test_until_boundary_inclusive(self, oscillator_circuit):
        from repro.circuits.simulator import EventDrivenSimulator

        sim = EventDrivenSimulator(oscillator_circuit)
        sim.run(until=11)
        times = [t.time for t in sim.trace]
        assert 11 in times  # c- fires exactly at the boundary

    def test_signal_times_direction_filter(self, oscillator_circuit):
        from repro.circuits.simulator import EventDrivenSimulator

        sim = EventDrivenSimulator(oscillator_circuit)
        sim.run(max_transitions=40)
        both = sim.signal_times("a")
        rising = sim.signal_times("a", "+")
        falling = sim.signal_times("a", "-")
        assert sorted(rising + falling) == both


class TestResultObjects:
    def test_border_distance_fields(self, oscillator):
        result = compute_cycle_time(oscillator)
        record = result.distances[0]
        assert record.time == record.distance * record.period

    def test_cycle_len_and_arcs(self, oscillator):
        result = compute_cycle_time(oscillator)
        cycle = result.critical_cycles[0]
        arcs = cycle.arcs(oscillator)
        assert len(arcs) == len(cycle)
        assert arcs[0].target == cycle.events[1]

    def test_unfolding_out_arcs_cross_period(self, oscillator):
        from repro.core import Unfolding

        u = Unfolding(oscillator)
        succs = {
            (str(instance[0]), instance[1])
            for instance, _ in u.out_arcs((Transition.parse("c-"), 2))
        }
        assert succs == {("a+", 3), ("b+", 3)}


class TestExactnessCorners:
    def test_fraction_only_graph(self):
        g = TimedSignalGraph()
        g.add_arc("a+", "b+", Fraction(1, 7))
        g.add_arc("b+", "a+", Fraction(2, 7), marked=True)
        assert compute_cycle_time(g).cycle_time == Fraction(3, 7)

    def test_large_integer_delays(self):
        g = TimedSignalGraph()
        big = 10**15
        g.add_arc("a+", "b+", big)
        g.add_arc("b+", "a+", big + 1, marked=True)
        assert compute_cycle_time(g).cycle_time == 2 * big + 1

    def test_mixed_exact_float_is_float_result(self):
        g = TimedSignalGraph()
        g.add_arc("a+", "b+", 1.5)
        g.add_arc("b+", "a+", 1, marked=True)
        value = compute_cycle_time(g).cycle_time
        assert isinstance(value, float)
        assert value == 2.5
