"""Exception hierarchy for the Timed Signal Graph library.

All library errors derive from :class:`SignalGraphError` so callers can
catch one base class.  Structural problems detected by validation raise
specific subclasses that carry enough context (offending events, arcs or
cycles) to be actionable.
"""

from __future__ import annotations


class SignalGraphError(Exception):
    """Base class for all errors raised by this library."""


class GraphConstructionError(SignalGraphError):
    """Raised when a Signal Graph is built with inconsistent elements.

    Examples: duplicate arcs with conflicting attributes, negative
    delays, arcs referencing undeclared events when strict mode is on.
    """


class ValidationError(SignalGraphError):
    """Base class for structural-validation failures (Section III-A)."""


class NotLiveError(ValidationError):
    """The graph contains a cycle without an initially marked arc.

    Such a cycle can never fire, so the graph is not live and no cycle
    time exists for it.  ``cycle`` holds one offending event cycle.
    """

    def __init__(self, message: str, cycle=None):
        super().__init__(message)
        self.cycle = list(cycle) if cycle is not None else None


class NotConnectedError(ValidationError):
    """The repetitive events do not form one strongly connected core."""


class NotWellFormedError(ValidationError):
    """A disengageable arc has a repetitive source event.

    The paper requires that no repetitive events appear before
    disengageable arcs (one of the well-formedness properties of [9]).
    """


class NotInitiallySafeError(ValidationError):
    """An arc carries an initial marking greater than one."""


class AcyclicGraphError(SignalGraphError):
    """Cycle-time analysis was requested for a graph with no cycles."""


class SimulationError(SignalGraphError):
    """A timing simulation was asked for an impossible quantity.

    Examples: the time of an unfolding instance that does not exist, or
    an event-initiated simulation from a non-existent event.
    """


class CircuitError(SignalGraphError):
    """Base class for errors in the circuit substrate."""


class NetlistError(CircuitError):
    """The netlist is malformed (unknown signals, double drivers...)."""


class NotSemiModularError(CircuitError):
    """The circuit is not semi-modular (speed-independence violation).

    An excited gate was disabled by another transition before it could
    fire.  ``state`` and ``signal`` identify the violation witness.
    """

    def __init__(self, message: str, state=None, signal=None):
        super().__init__(message)
        self.state = state
        self.signal = signal


class DistributivityError(CircuitError):
    """The circuit behaviour exhibits OR-causality.

    Signal Graphs can only express AND-causality; like TRASPEC [9], the
    extractor reports the first violation instead of producing a wrong
    graph.  ``transition`` identifies the offending output transition.
    """

    def __init__(self, message: str, transition=None):
        super().__init__(message)
        self.transition = transition


class ExtractionError(CircuitError):
    """Signal Graph extraction failed for a structural reason.

    For instance the circuit never reaches a periodic regime within the
    step budget (livelock-free circuits always do), or the folded graph
    would not be initially-safe.
    """


class StateSpaceLimitError(ExtractionError):
    """Exhaustive exploration hit its state or step budget.

    Not a verdict about the circuit — the analysis was *abandoned*, so
    neither semi-modularity nor its violation was established.
    ``states`` and ``steps`` record how far exploration got;
    ``max_states``/``max_steps`` the budget that stopped it.  Large
    netlists should use the structural extraction path
    (:mod:`repro.netlist.extract`) instead of raising these budgets.
    """

    def __init__(self, message, states=None, steps=None,
                 max_states=None, max_steps=None):
        super().__init__(message)
        self.states = states
        self.steps = steps
        self.max_states = max_states
        self.max_steps = max_steps


class FormatError(SignalGraphError):
    """A file being parsed does not conform to its expected format."""
