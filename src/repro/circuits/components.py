"""Composable handshake components.

Specification-level building blocks (Signal Graph fragments) that
synchronise on shared link events, demonstrating modular system
construction with :func:`repro.core.compose.compose`:

* a *link* ``i`` is the 4-phase channel alphabet
  ``r<i>+, a<i>+, r<i>-, a<i>-``;
* :func:`requester` drives a link (the active party);
* :func:`reflector` completes a link (the passive party responding
  immediately);
* :func:`forwarding_stage` connects link ``i`` to link ``i+1``,
  propagating requests forward and acknowledgements backward;
* :func:`closed_pipeline` composes requester + stages + reflector
  into a closed, live system ready for cycle-time analysis.

The delays are per-fragment parameters, so the composed system
exercises heterogeneous-delay analysis.
"""

from __future__ import annotations

from typing import Optional

from ..core.compose import compose
from ..core.errors import GraphConstructionError
from ..core.signal_graph import TimedSignalGraph


def _req(link: int, edge: str) -> str:
    return "r%d%s" % (link, edge)


def _ack(link: int, edge: str) -> str:
    return "a%d%s" % (link, edge)


def requester(link: int, delay=1) -> TimedSignalGraph:
    """The active party of link ``link``: raises a new request after
    each completed handshake (the token sits on the idle state)."""
    graph = TimedSignalGraph(name="requester-%d" % link)
    graph.add_arc(_ack(link, "+"), _req(link, "-"), delay)
    graph.add_arc(_ack(link, "-"), _req(link, "+"), delay, marked=True)
    return graph


def reflector(link: int, delay=1) -> TimedSignalGraph:
    """The passive party of link ``link``: acknowledges immediately."""
    graph = TimedSignalGraph(name="reflector-%d" % link)
    graph.add_arc(_req(link, "+"), _ack(link, "+"), delay)
    graph.add_arc(_req(link, "-"), _ack(link, "-"), delay)
    return graph


def forwarding_stage(
    link: int, forward=1, backward=1
) -> TimedSignalGraph:
    """A stage between link ``link`` (left) and ``link + 1`` (right).

    Requests propagate rightward with ``forward`` delay, acknowledges
    leftward with ``backward`` delay — the undecoupled (ripple)
    pipeline stage.
    """
    right = link + 1
    graph = TimedSignalGraph(name="stage-%d" % link)
    graph.add_arc(_req(link, "+"), _req(right, "+"), forward)
    graph.add_arc(_req(link, "-"), _req(right, "-"), forward)
    graph.add_arc(_ack(right, "+"), _ack(link, "+"), backward)
    graph.add_arc(_ack(right, "-"), _ack(link, "-"), backward)
    return graph


def closed_pipeline(
    stages: int,
    forward=1,
    backward=1,
    requester_delay=1,
    reflector_delay=1,
    name: Optional[str] = None,
) -> TimedSignalGraph:
    """Requester + ``stages`` forwarding stages + reflector, composed.

    The system is a single handshake loop; its cycle time is the loop
    latency::

        2 * (requester_delay + stages*(forward + backward) + reflector_delay)

    which makes it a closed-form oracle for composition tests.
    """
    if stages < 0:
        raise GraphConstructionError("stages must be non-negative")
    parts = [requester(0, requester_delay)]
    parts.extend(
        forwarding_stage(index, forward, backward) for index in range(stages)
    )
    parts.append(reflector(stages, reflector_delay))
    return compose(*parts, name=name or "closed-pipeline-%d" % stages)


def closed_pipeline_cycle_time(
    stages: int, forward=1, backward=1, requester_delay=1, reflector_delay=1
):
    """The closed-form oracle for :func:`closed_pipeline`."""
    return 2 * (
        requester_delay + stages * (forward + backward) + reflector_delay
    )
