"""Unit tests for event separation analysis."""

from fractions import Fraction

import pytest

from repro.analysis import (
    separation_report,
    steady_separation,
    transient_separations,
)
from repro.core import compute_cycle_time
from repro.core.errors import SimulationError


class TestTransientSeparations:
    def test_same_period_pair(self, oscillator):
        rows = transient_separations(oscillator, "a+", "c+", periods=3)
        # t(c+_i) - t(a+_i): 4, 3, 3, 3 (start-up then settled)
        assert rows == [(0, 4), (1, 3), (2, 3), (3, 3)]

    def test_offset_pair(self, oscillator):
        rows = transient_separations(oscillator, "c-", "a+", periods=3, offset=1)
        # a+ always fires 2 after the previous c- (the marked arc)
        assert all(value == 2 for _, value in rows)

    def test_self_separation_is_occurrence_distance(self, oscillator):
        rows = transient_separations(oscillator, "a+", "a+", periods=3, offset=1)
        assert rows[0] == (0, 11)
        assert rows[1] == (1, 10)

    def test_nonrepetitive_events_work_in_period_zero(self, oscillator):
        rows = transient_separations(oscillator, "e-", "f-", periods=2)
        assert rows == [(0, 3)]

    def test_impossible_pair_raises(self, oscillator):
        with pytest.raises(SimulationError):
            transient_separations(oscillator, "e-", "f-", periods=2, offset=2)


class TestSteadySeparation:
    def test_matches_settled_transient(self, oscillator):
        steady = steady_separation(oscillator, "a+", "c+")
        settled = transient_separations(oscillator, "a+", "c+", periods=10)[-1]
        assert steady == settled[1] == 3

    def test_antisymmetry_with_offset(self, oscillator):
        forward = steady_separation(oscillator, "a+", "c+")
        backward = steady_separation(oscillator, "c+", "a+", offset=1)
        lam = compute_cycle_time(oscillator).cycle_time
        assert forward + backward == lam

    def test_self_offset_is_cycle_time(self, oscillator):
        lam = compute_cycle_time(oscillator).cycle_time
        assert steady_separation(oscillator, "b-", "b-", offset=1) == lam

    def test_nonrepetitive_rejected(self, oscillator):
        with pytest.raises(SimulationError):
            steady_separation(oscillator, "e-", "a+")

    def test_reuses_precomputed_result(self, oscillator):
        result = compute_cycle_time(oscillator)
        value = steady_separation(oscillator, "a+", "c+", result=result)
        assert value == 3


class TestSeparationReport:
    def test_report_structure(self, oscillator):
        report = separation_report(oscillator, "a+", "c+", periods=6)
        assert report.steady == 3
        assert report.settles()
        assert "a+" in str(report)

    def test_oscillating_ring_pattern(self, muller_ring_graph):
        """In the ring the per-period separations cycle through a
        pattern (the Δ row 6,7,7 of the paper's table); the steady
        potential difference is one representative of that pattern."""
        rows = transient_separations(
            muller_ring_graph, "s0+", "s0+", periods=9, offset=1
        )
        values = [value for _, value in rows]
        assert set(values[2:]) == {6, 7}
