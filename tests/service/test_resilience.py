"""Resilience layer: deadlines, backpressure, retries, chaos, drain."""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import pytest

from repro.circuits.library import muller_ring_tsg
from repro.io.json_io import graph_to_dict
from repro.service import faults
from repro.service.cache import DiskCache, LRUCache, TwoTierCache
from repro.service.client import (
    CircuitOpenError,
    DeadlineExceededError,
    ServerSaturatedError,
    ServiceClient,
    ServiceError,
)
from repro.service.faults import FaultInjector, InjectedFault
from repro.service.resilience import (
    AdmissionQueue,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    Saturated,
)
from repro.service.server import make_server


@pytest.fixture(autouse=True)
def no_leaked_faults():
    """Chaos armed by a test must never leak into the next one."""
    yield
    faults.clear()


@pytest.fixture
def server_factory():
    """Spin up daemons with arbitrary config; tear all of them down."""
    servers = []

    def build(**overrides):
        server = make_server(quiet=True, **overrides)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append((server, thread))
        return server

    yield build
    for server, thread in servers:
        server.shutdown()
        server.close()
        thread.join(timeout=5)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestDeadline:
    def test_fresh_deadline_has_budget(self):
        deadline = Deadline.after_ms(5000)
        assert not deadline.expired()
        assert 4.0 < deadline.remaining() <= 5.0
        deadline.check("anywhere")  # must not raise

    def test_expired_deadline_raises_with_stage(self):
        clock = FakeClock()
        deadline = Deadline(0.05, clock=clock)
        clock.now = 0.06
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded) as caught:
            deadline.check("pre-compile")
        assert caught.value.stage == "pre-compile"
        assert caught.value.timeout_s == pytest.approx(0.05)


class TestAdmissionQueue:
    def test_admit_and_release(self):
        queue = AdmissionQueue(max_inflight=2, max_queue_depth=1)
        with queue.admit():
            assert queue.inflight() == 1
        assert queue.inflight() == 0
        assert queue.snapshot()["admitted"] == 1

    def test_sheds_when_queue_full(self):
        queue = AdmissionQueue(max_inflight=1, max_queue_depth=0,
                               retry_after=0.5)
        release = threading.Event()

        def occupant():
            with queue.admit():
                release.wait(5)

        thread = threading.Thread(target=occupant, daemon=True)
        thread.start()
        for _ in range(100):
            if queue.inflight() == 1:
                break
            time.sleep(0.005)
        with pytest.raises(Saturated) as caught:
            queue.acquire()
        assert caught.value.retry_after == 0.5
        assert queue.snapshot()["shed"] == 1
        assert queue.saturated()
        release.set()
        thread.join(5)
        with queue.admit():  # slot is free again
            pass

    def test_queued_request_expires_with_deadline(self):
        queue = AdmissionQueue(max_inflight=1, max_queue_depth=2)
        release = threading.Event()

        def occupant():
            with queue.admit():
                release.wait(5)

        thread = threading.Thread(target=occupant, daemon=True)
        thread.start()
        for _ in range(100):
            if queue.inflight() == 1:
                break
            time.sleep(0.005)
        with pytest.raises(DeadlineExceeded):
            queue.acquire(Deadline.after_ms(40))
        assert queue.snapshot()["expired_in_queue"] == 1
        release.set()
        thread.join(5)

    def test_queued_request_gets_slot_when_freed(self):
        queue = AdmissionQueue(max_inflight=1, max_queue_depth=2)
        release = threading.Event()
        acquired = threading.Event()

        def occupant():
            with queue.admit():
                release.wait(5)

        def waiter():
            with queue.admit(Deadline.after_ms(5000)):
                acquired.set()

        occupant_thread = threading.Thread(target=occupant, daemon=True)
        occupant_thread.start()
        for _ in range(100):
            if queue.inflight() == 1:
                break
            time.sleep(0.005)
        waiter_thread = threading.Thread(target=waiter, daemon=True)
        waiter_thread.start()
        time.sleep(0.05)
        assert not acquired.is_set()  # still parked in the queue
        release.set()
        assert acquired.wait(5)
        occupant_thread.join(5)
        waiter_thread.join(5)


class TestRetryPolicy:
    def test_full_jitter_is_bounded_and_grows(self):
        import random

        policy = RetryPolicy(retries=5, base=0.1, cap=10.0,
                             rng=random.Random(7))
        for attempt in range(5):
            ceiling = 0.1 * (2 ** attempt)
            for _ in range(50):
                assert 0.0 <= policy.backoff(attempt) <= ceiling

    def test_cap_limits_backoff(self):
        import random

        policy = RetryPolicy(retries=8, base=0.1, cap=0.3,
                             rng=random.Random(1))
        assert all(policy.backoff(10) <= 0.3 for _ in range(100))

    def test_retry_after_is_a_floor(self):
        import random

        policy = RetryPolicy(retries=3, base=0.001, cap=0.002,
                             rng=random.Random(2))
        assert policy.backoff(0, retry_after=0.7) >= 0.7


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_after=10,
                                 clock=clock)
        assert breaker.state == CircuitBreaker.CLOSED
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_the_run(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_then_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after=5,
                                 clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.now = 6.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()        # single probe
        assert not breaker.allow()    # second caller must wait
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after=5,
                                 clock=clock)
        breaker.record_failure()
        clock.now = 6.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_half_open_race_admits_exactly_one_probe(self):
        """Two threads racing into half-open must get exactly one True."""
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_after=5,
                                 clock=clock)
        for _ in range(50):  # many rounds to flush out lock races
            breaker.record_failure()
            assert breaker.state == CircuitBreaker.OPEN
            clock.now += 6.0
            barrier = threading.Barrier(2)
            verdicts = []
            lock = threading.Lock()

            def racer():
                barrier.wait(5)
                allowed = breaker.allow()
                with lock:
                    verdicts.append(allowed)

            threads = [
                threading.Thread(target=racer, daemon=True) for _ in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(5)
            assert sorted(verdicts) == [False, True]
            # The losing thread's outcome must not have corrupted the
            # transitions: the single probe decides the state.
            breaker.record_success()
            assert breaker.state == CircuitBreaker.CLOSED
            assert breaker.allow()


class TestFaultInjector:
    def test_parse_round_trip(self):
        injector = FaultInjector.parse(
            "latency:p=0.4,ms=80,site=handler;error:p=0.1,status=500;"
            "corrupt:p=0.5;slowkernel:ms=40;seed=11"
        )
        assert injector.seed == 11
        kinds = [rule.kind for rule in injector.rules]
        assert kinds == ["latency", "error", "corrupt", "slowkernel"]
        assert injector.rules[0].site == "handler"
        assert injector.rules[1].status == 500

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultInjector.parse("explode:p=1")
        with pytest.raises(ValueError):
            FaultInjector.parse("latency:p=2")
        with pytest.raises(ValueError):
            FaultInjector.parse("latency:warp=9")
        with pytest.raises(ValueError):
            FaultInjector.parse("turbo=1")

    def test_corruption_is_deterministic_per_seed(self):
        blob = bytes(range(256))
        first = FaultInjector.parse("corrupt:p=1;seed=3").corrupt_blob(blob)
        second = FaultInjector.parse("corrupt:p=1;seed=3").corrupt_blob(blob)
        other = FaultInjector.parse("corrupt:p=1;seed=4").corrupt_blob(blob)
        assert first == second != blob
        assert sum(a != b for a, b in zip(first, blob)) == 1  # one byte
        assert other != first

    def test_error_injection_respects_probability(self):
        always = FaultInjector.parse("error:p=1")
        with pytest.raises(InjectedFault) as caught:
            always.maybe_error("handler")
        assert caught.value.status == 503
        never = FaultInjector.parse("error:p=0")
        never.maybe_error("handler")  # must not raise
        assert always.snapshot()["injected"]["errors_injected"] == 1

    def test_latency_injection_sleeps(self):
        injector = FaultInjector.parse("latency:p=1,ms=30")
        start = time.monotonic()
        slept = injector.sleep_latency("handler")
        assert time.monotonic() - start >= 0.025
        assert slept == pytest.approx(0.03)

    def test_site_scoping(self):
        injector = FaultInjector.parse("error:p=1,site=disk")
        injector.maybe_error("handler")  # different site: no fault
        with pytest.raises(InjectedFault):
            injector.maybe_error("disk")


class TestServerDeadlines:
    def test_tiny_deadline_is_structured_504(self, server_factory):
        server = server_factory(
            chaos="latency:p=1,ms=300,site=handler", request_timeout=30
        )
        client = ServiceClient(server.url, timeout=30, retries=0)
        assert client.wait_until_ready(10)
        with pytest.raises(DeadlineExceededError) as caught:
            client.analyze(muller_ring_tsg(3), timeout_ms=50)
        assert caught.value.status == 504
        stats = client.stats()
        assert stats["requests"]["expired"] >= 1
        assert stats["faults"]["injected"]["latency_injected"] >= 1

    def test_generous_deadline_succeeds(self, server_factory):
        server = server_factory()
        client = ServiceClient(server.url, timeout=30)
        assert client.wait_until_ready(10)
        result = client.analyze(muller_ring_tsg(3), timeout_ms=30000)
        assert result["cycle_time"] is not None

    def test_bad_timeout_field_is_400(self, server_factory):
        server = server_factory()
        client = ServiceClient(server.url, timeout=30, retries=0)
        assert client.wait_until_ready(10)
        with pytest.raises(ServiceError) as caught:
            client.analyze(muller_ring_tsg(3), timeout_ms=-5)
        assert caught.value.status == 400


class TestBackpressure:
    def test_excess_load_is_shed_with_429(self, server_factory):
        server = server_factory(
            chaos="latency:p=1,ms=400,site=handler",
            max_inflight=1, max_queue_depth=0,
        )
        url = server.url
        probe = ServiceClient(url, timeout=30, retries=0)
        assert probe.wait_until_ready(10)
        graph = muller_ring_tsg(3)
        outcomes = []
        lock = threading.Lock()

        def fire(seed):
            client = ServiceClient(url, timeout=30, retries=0)
            try:
                client.montecarlo(graph, samples=20, seed=seed)
                value = "ok"
            except ServerSaturatedError:
                value = "shed"
            except ServiceError as error:
                value = "error:%s" % error.kind
            with lock:
                outcomes.append(value)

        threads = [threading.Thread(target=fire, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert "ok" in outcomes
        assert "shed" in outcomes
        assert not any(o.startswith("error:") for o in outcomes)
        stats = probe.stats()
        assert stats["requests"]["shed"] >= 1
        assert stats["admission"]["shed"] >= 1

    def test_retry_after_header_present_on_429(self, server_factory):
        server = server_factory(
            chaos="latency:p=1,ms=400,site=handler",
            max_inflight=1, max_queue_depth=0, retry_after_s=0.75,
        )
        probe = ServiceClient(server.url, timeout=30, retries=0)
        assert probe.wait_until_ready(10)
        graph = muller_ring_tsg(3)
        slow = threading.Thread(
            target=lambda: ServiceClient(server.url, retries=0).montecarlo(
                graph, samples=20, seed=1
            ),
            daemon=True,
        )
        slow.start()
        for _ in range(200):
            if server.service.admission.inflight() >= 1:
                break
            time.sleep(0.005)
        body = json.dumps(
            {"graph": graph_to_dict(graph), "samples": 10}
        ).encode()
        request = urllib.request.Request(
            server.url + "/montecarlo", data=body,
            headers={"Content-Type": "application/json"}, method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as reply:
                pytest.fail("expected 429, got %d" % reply.status)
        except urllib.error.HTTPError as error:
            assert error.code == 429
            assert error.headers.get("Retry-After") == "0.75"
        slow.join(10)


class TestReadiness:
    def test_readyz_ready_then_draining(self, server_factory):
        server = server_factory()
        client = ServiceClient(server.url, timeout=30)
        assert client.wait_until_ready(10)
        assert client.readyz() is True
        server.service.draining = True
        assert client.readyz() is False
        assert client.healthz() is True  # liveness unaffected


class TestClientResilience:
    def test_retries_recover_from_injected_errors(self, server_factory):
        # error:p=0.5 with a seeded stream: some attempts 503, retries win.
        server = server_factory(chaos="error:p=0.5,site=handler;seed=2")
        import random

        client = ServiceClient(
            server.url, timeout=30, retries=6,
            retry_policy=RetryPolicy(retries=6, base=0.005, cap=0.02,
                                     rng=random.Random(0)),
        )
        assert client.wait_until_ready(10)
        for seed in range(4):
            result = client.montecarlo(muller_ring_tsg(3), samples=10,
                                       seed=seed)
            assert result["count"] == 10

    def test_retry_exhaustion_surfaces_last_error(self, server_factory):
        server = server_factory(chaos="error:p=1,site=handler")
        import random

        client = ServiceClient(
            server.url, timeout=30, retries=2,
            retry_policy=RetryPolicy(retries=2, base=0.001, cap=0.005,
                                     rng=random.Random(0)),
        )
        assert client.wait_until_ready(10)
        with pytest.raises(ServiceError) as caught:
            client.montecarlo(muller_ring_tsg(3), samples=10)
        assert caught.value.status == 503
        assert caught.value.kind == "InjectedFault"

    def test_idempotent_replay_is_byte_identical(self, server_factory):
        server = server_factory()
        client = ServiceClient(server.url, timeout=30)
        assert client.wait_until_ready(10)
        graph = muller_ring_tsg(3)
        body = json.dumps({"graph": graph_to_dict(graph), "samples": 30,
                           "seed": 5}).encode()

        def post():
            request = urllib.request.Request(
                server.url + "/montecarlo", data=body,
                headers={"Content-Type": "application/json",
                         "X-Idempotency-Key": "test-key-1"},
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=30) as reply:
                return reply.read()

        first, second = post(), post()
        assert first == second  # bit-identical replay, not a recompute
        stats = client.stats()
        assert stats["requests"]["idempotent_replays"] == 1

    def test_circuit_breaker_fast_fails_and_recovers(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_after=30,
                                 clock=clock)
        client = ServiceClient("http://127.0.0.1:9", timeout=0.2,
                               retries=0, breaker=breaker)
        for _ in range(2):
            with pytest.raises(ServiceError):
                client.stats()
        with pytest.raises(CircuitOpenError):
            client.stats()  # no network attempt: fast-fail
        # healthz bypasses the breaker so probes can observe recovery.
        assert client.healthz() is False


class TestDegradedMode:
    def test_corrupt_disk_reads_trip_memory_only_mode(self, tmp_path):
        faults.install(FaultInjector.parse("corrupt:p=1,site=disk;seed=1"))
        disk = DiskCache(str(tmp_path), "t")
        cache = TwoTierCache(LRUCache(max_entries=4), disk=disk,
                             trip_threshold=3)
        for index in range(6):
            cache.put("k%d" % index, index)
            cache.memory.clear()   # force the disk tier on reads
            cache.get("k%d" % index)
        snapshot = cache.snapshot()
        assert snapshot["degraded"] is True
        assert snapshot["corrupt_evicted"] >= 3
        assert snapshot["disk_trips"] == 1
        # Memory-only service continues: no disk errors on further traffic.
        cache.put("fresh", 42)
        assert cache.get("fresh") == 42

    def test_reset_degraded_rearms_the_disk_tier(self, tmp_path):
        disk = DiskCache(str(tmp_path), "t")
        cache = TwoTierCache(LRUCache(max_entries=4), disk=disk,
                             trip_threshold=2)
        faults.install(FaultInjector.parse("corrupt:p=1,site=disk;seed=1"))
        for index in range(4):
            cache.put("k%d" % index, index)
            cache.memory.clear()
            cache.get("k%d" % index)
        assert cache.degraded
        faults.clear()
        cache.reset_degraded()
        cache.put("back", 1)
        cache.memory.clear()
        assert cache.get("back") == 1
        assert not cache.degraded


class TestDrain:
    def test_drain_completes_inflight_slow_response(self, server_factory):
        server = server_factory(
            chaos="latency:p=1,ms=400,site=handler", drain_timeout=10
        )
        client = ServiceClient(server.url, timeout=30, retries=0)
        assert client.wait_until_ready(10)
        graph = muller_ring_tsg(3)
        outcome = {}

        def slow_request():
            try:
                outcome["result"] = client.montecarlo(graph, samples=20,
                                                      seed=3)
            except ServiceError as error:
                outcome["error"] = error

        thread = threading.Thread(target=slow_request, daemon=True)
        thread.start()
        for _ in range(400):
            if server.service.admission.inflight() >= 1:
                break
            time.sleep(0.005)
        assert server.service.admission.inflight() >= 1
        server.shutdown()                      # stop accepting
        assert server.drain() is True          # in-flight write finished
        thread.join(10)
        assert "result" in outcome, outcome.get("error")
        assert outcome["result"]["count"] == 20

    def test_new_requests_rejected_while_draining(self, server_factory):
        server = server_factory()
        client = ServiceClient(server.url, timeout=30, retries=0)
        assert client.wait_until_ready(10)
        server.service.draining = True
        with pytest.raises(ServiceError) as caught:
            client.analyze(muller_ring_tsg(3))
        assert caught.value.status == 503
        assert caught.value.kind == "Draining"
