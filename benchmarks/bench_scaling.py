"""E14a — the O(b^2 m) complexity claim.

The paper argues the algorithm runs in O(b^2 m) time and "often
demonstrates linear complexity from the size of the Timed Signal Graph
specification" because b is typically small.  Two sweeps:

* fixed b, growing m (ring size): runtime should grow ~linearly;
* fixed n and m, growing b: runtime should grow ~quadratically.

pytest-benchmark records the per-size timings; the shape assertions
compare measured growth against the model's prediction loosely (CI
machines are noisy — we check monotonicity and gross ratios, not
constants).
"""

import pytest

from conftest import emit
from repro.core import compute_cycle_time
from repro.generators import ring_with_chords

# fixed token count, growing ring size: m grows, b constant
SIZES_FIXED_B = [50, 100, 200, 400, 800]
# fixed ring size, growing token count: b grows, m constant
TOKENS_FIXED_M = [2, 4, 8, 16, 32]
RING_FOR_TOKENS = 256


@pytest.mark.parametrize("stages", SIZES_FIXED_B)
def test_e14_scaling_in_m_fixed_b(benchmark, stages):
    graph = ring_with_chords(stages=stages, tokens=4, chords=stages // 4, seed=7)
    result = benchmark(compute_cycle_time, graph, None, False)
    assert result.cycle_time > 0
    emit(
        "E14a fixed b=4, n=%d" % stages,
        "m=%d arcs, lambda=%s, mean %.3f ms"
        % (graph.num_arcs, result.cycle_time, benchmark.stats.stats.mean * 1e3),
    )


@pytest.mark.parametrize("tokens", TOKENS_FIXED_M)
def test_e14_scaling_in_b_fixed_m(benchmark, tokens):
    graph = ring_with_chords(
        stages=RING_FOR_TOKENS, tokens=tokens, chords=32, seed=11
    )
    result = benchmark(compute_cycle_time, graph, None, False)
    assert result.cycle_time > 0
    emit(
        "E14a fixed n=%d, b=%d" % (RING_FOR_TOKENS, len(graph.border_events)),
        "lambda=%s, mean %.3f ms"
        % (result.cycle_time, benchmark.stats.stats.mean * 1e3),
    )


def test_e14_linearity_shape():
    """Direct (non-benchmark-fixture) shape check: doubling m with b
    fixed should roughly double the runtime, far from quadratic."""
    import time

    def measure(stages):
        graph = ring_with_chords(stages=stages, tokens=4, chords=stages // 4, seed=3)
        compute_cycle_time(graph, check=False)  # warm caches
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            compute_cycle_time(graph, check=False)
            best = min(best, time.perf_counter() - start)
        return best

    small, large = measure(200), measure(800)
    ratio = large / small
    # 4x the arcs: linear predicts ~4x, quadratic-in-m predicts ~16x.
    assert ratio < 12, "runtime grew superlinearly: %.1fx for 4x arcs" % ratio
    emit(
        "E14a linearity shape (paper: near-linear when b << n)",
        "4x arcs -> %.1fx runtime (linear ~4x, m^2 ~16x)" % ratio,
    )
