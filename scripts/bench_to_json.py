#!/usr/bin/env python
"""Measure the kernel speedups and record them as JSON.

Seven suites::

    PYTHONPATH=src python scripts/bench_to_json.py [--suite kernels]
    PYTHONPATH=src python scripts/bench_to_json.py --suite montecarlo
    PYTHONPATH=src python scripts/bench_to_json.py --suite service
    PYTHONPATH=src python scripts/bench_to_json.py --suite obs
    PYTHONPATH=src python scripts/bench_to_json.py --suite scaling_out
    PYTHONPATH=src python scripts/bench_to_json.py --suite ptime
    PYTHONPATH=src python scripts/bench_to_json.py --suite overload
    PYTHONPATH=src python scripts/bench_to_json.py --suite netlist

``kernels`` (the default) times the legacy, exact and float engines —
border simulations and end-to-end ``compute_cycle_time`` — on the
scaling-suite graphs and writes ``BENCH_cycle_time.json``.

``montecarlo`` times Monte-Carlo sweep throughput (samples/sec) for
the batched vectorized kernel vs the per-sample rebind loop across
graph sizes and batch widths, verifies the two paths produce
bit-identical λ samples, and writes ``BENCH_montecarlo.json``.

``service`` times the ``repro.service`` layer — cold compiles vs
warm content-addressed cache resolutions (adopt and delay-rebind
tiers), and serial vs coalesced Monte-Carlo dispatch — and writes
``BENCH_service.json``.

``obs`` times the observability layer (``repro.obs``) and writes
``BENCH_obs.json``: end-to-end analysis latency with the layer
disabled vs tracing vs phase profiling, the measured cost of the
disabled no-op hooks (must fit a 2%% budget), and warm-cache
``/analyze`` HTTP throughput with metrics off/on/traced.  All records
feed the README's performance notes and the CI smoke checks.

``scaling_out`` measures horizontal scale-out and writes
``BENCH_scaling_out.json``: warm-cache ``/analyze`` throughput against
a pre-fork SO_REUSEPORT worker pool at 1/2/4 workers, and the
process-pool vs threaded Monte-Carlo executor on a GIL-bound n=800
sweep (with a bit-identity check against the single-process kernel).
Scaling gates are enforced only when ``os.cpu_count()`` provides the
parallel hardware they presume; the recorded ``cpu_count`` and
``hardware_note`` keep single-core runs honest.

``ptime`` times the P-time layer — ``check_consistency`` (exact
Fraction and float modes), the full ``lambda_range`` interval, and the
certified-rejection path on planted-inconsistent instances — across
graph sizes, runs a 3-rate ``cross_validate`` correctness rider, and
writes ``BENCH_ptime.json``.

``netlist`` times the real-circuit pipeline — ``.bench`` parsing,
ring-wrap closure, structural DAG extraction and cycle-time analysis —
on the shipped corpus (c17 through the 1440-gate mult16), checks the
golden unit-delay cycle times, cross-checks structural extraction
against the exhaustive oracle on c17 and the sparse ratio-form Howard
against the token-graph reduction on rca8, and writes
``BENCH_netlist.json``.

``overload`` ramps concurrent Monte-Carlo load past a deliberately
small service capacity and records shed-rate, degraded-rate and
p50/p99 latency per level along with the AIMD limiter and brownout
snapshots, writing ``BENCH_overload.json``.  Gates: the limiter stays
within ``[min_limit, ceiling]`` and no unstructured 5xx ever escapes.

Timings are best-of-N wall clock after warmup (the float kernel's
code-generation tier activates during warmup, as it does in any
repeated analysis).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np  # noqa: E402

from repro.analysis import monte_carlo_cycle_time, uniform_spread  # noqa: E402
from repro.core import compute_cycle_time, run_border_simulations  # noqa: E402
from repro.generators import ring_with_chords  # noqa: E402

KERNELS = ("legacy", "exact", "float")
SIZES = (100, 400, 800)
WARMUP = 8
REPS = 15

MC_SIZES = (50, 100, 200)
MC_BATCHES = (100, 1000)
MC_WARMUP = 2
MC_REPS = 3
#: the PR acceptance gate: fused >= 3x batch at n=800, S=1000.
MC_GATE_STAGES = 800
MC_GATE_SAMPLES = 1000
MC_GATE_MIN_SPEEDUP = 3.0

SCALE_WORKERS = (1, 2, 4)
SCALE_STORM_S = 2.0
SCALE_CLIENTS = 8
SCALE_WARMUP_REQUESTS = 4
SCALE_MC_STAGES = 800
SCALE_MC_SAMPLES = 64
SCALE_MIN_SPEEDUP_AT_4 = 2.5


def best_of(fn, reps=REPS):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure(stages):
    graph = ring_with_chords(stages=stages, tokens=4, chords=stages // 4, seed=7)
    row = {
        "stages": stages,
        "events": graph.num_events,
        "arcs": graph.num_arcs,
        "border_events": len(graph.border_events),
        "simulate_ms": {},
        "end_to_end_ms": {},
    }
    for kernel in KERNELS:
        for _ in range(WARMUP):
            run_border_simulations(graph, kernel=kernel)
            compute_cycle_time(graph, check=False, kernel=kernel)
        row["simulate_ms"][kernel] = 1e3 * best_of(
            lambda: run_border_simulations(graph, kernel=kernel)
        )
        row["end_to_end_ms"][kernel] = 1e3 * best_of(
            lambda: compute_cycle_time(graph, check=False, kernel=kernel)
        )
    for section in ("simulate_ms", "end_to_end_ms"):
        legacy = row[section]["legacy"]
        row[section.replace("_ms", "_speedup")] = {
            kernel: legacy / row[section][kernel] for kernel in ("exact", "float")
        }
    return row


def measure_montecarlo(stages, batches, process_workers=2):
    graph = ring_with_chords(stages=stages, tokens=4, chords=stages // 4, seed=7)
    sampler = uniform_spread(0.1)

    def run(samples, method, kernel=None, executor="thread", workers=None):
        return monte_carlo_cycle_time(
            graph, sampler, samples=samples, seed=0,
            track_criticality=False, method=method, kernel=kernel,
            executor=executor, workers=workers,
        )

    row = {
        "stages": stages,
        "events": graph.num_events,
        "arcs": graph.num_arcs,
        "border_events": len(graph.border_events),
        "sweeps": [],
    }
    for samples in batches:
        for _ in range(MC_WARMUP):
            run(samples, "batch", kernel="batch")
            run(samples, "batch", kernel="fused")
        batch = best_of(
            lambda: run(samples, "batch", kernel="batch"), reps=MC_REPS
        )
        fused = best_of(
            lambda: run(samples, "batch", kernel="fused"), reps=MC_REPS
        )
        shm = best_of(
            lambda: run(samples, "batch", kernel="fused",
                        executor="process", workers=process_workers),
            reps=MC_REPS,
        )
        loop = best_of(lambda: run(samples, "persample"), reps=MC_REPS)
        reference = run(samples, "persample").samples
        identical = bool(
            np.array_equal(run(samples, "batch", kernel="batch").samples,
                           reference)
            and np.array_equal(run(samples, "batch", kernel="fused").samples,
                               reference)
            and np.array_equal(
                run(samples, "batch", kernel="fused",
                    executor="process", workers=process_workers).samples,
                reference,
            )
        )
        row["sweeps"].append(
            {
                "samples": samples,
                "batch_samples_per_sec": samples / batch,
                "fused_samples_per_sec": samples / fused,
                "process_shm_samples_per_sec": samples / shm,
                "process_workers": process_workers,
                "persample_samples_per_sec": samples / loop,
                "speedup": loop / batch,
                "fused_speedup_vs_batch": batch / fused,
                "identical": identical,
            }
        )
    return row


def measure_fused_gate(stages=MC_GATE_STAGES, samples=MC_GATE_SAMPLES,
                       process_workers=2):
    """The PR acceptance gate: fused vs batch at n=800, S=1000.

    Times the kernel sweeps directly (one pre-sampled delay matrix,
    same seed-0 stream ``monte_carlo_cycle_time`` draws) so the
    kernel-vs-kernel ratio is not diluted by sampler overhead; the
    bit-identity check still goes through the full Monte-Carlo path
    against the per-sample float64 loop, which runs once — at this
    size it is the slow path the batch tiers exist to replace.
    """
    from repro.analysis.montecarlo import sample_delay_matrix
    from repro.core import run_border_simulations_batch

    graph = ring_with_chords(stages=stages, tokens=4, chords=stages // 4,
                             seed=7)
    sampler = uniform_spread(0.1)
    matrix = sample_delay_matrix(graph, sampler, samples,
                                 np.random.default_rng(0))

    def sweep(kernel, executor="thread", workers=None):
        return run_border_simulations_batch(
            graph, matrix, kernel=kernel, executor=executor,
            workers=workers,
        )

    for _ in range(MC_WARMUP):
        sweep("batch")
        sweep("fused")
    batch = best_of(lambda: sweep("batch"), reps=MC_REPS)
    fused = best_of(lambda: sweep("fused"), reps=MC_REPS)
    shm = best_of(
        lambda: sweep("fused", executor="process",
                      workers=process_workers),
        reps=MC_REPS,
    )

    def mc(method, kernel=None, executor="thread", workers=None):
        return monte_carlo_cycle_time(
            graph, sampler, samples=samples, seed=0,
            track_criticality=False, method=method, kernel=kernel,
            executor=executor, workers=workers,
        )

    reference = mc("persample").samples
    identical = bool(
        np.array_equal(mc("batch", kernel="fused").samples, reference)
        and np.array_equal(mc("batch", kernel="batch").samples, reference)
        and np.array_equal(
            mc("batch", kernel="fused", executor="process",
               workers=process_workers).samples,
            reference,
        )
    )
    return {
        "graph": "stages=%d" % stages,
        "samples": samples,
        "timed": "run_border_simulations_batch only (pre-sampled "
                 "matrix; sampler excluded)",
        "batch_samples_per_sec": samples / batch,
        "fused_samples_per_sec": samples / fused,
        "process_shm_samples_per_sec": samples / shm,
        "process_workers": process_workers,
        "fused_speedup_vs_batch": batch / fused,
        "min_fused_speedup": MC_GATE_MIN_SPEEDUP,
        "identical": identical,
    }


def run_montecarlo_suite(sizes, batches, output, fused_gate=False):
    rows = []
    for stages in sizes:
        row = measure_montecarlo(stages, batches)
        rows.append(row)
        for sweep in row["sweeps"]:
            print(
                "n=%-4d S=%-5d  per-sample %8.0f samples/sec  "
                "batch %8.0f samples/sec (%.1fx)  "
                "fused %8.0f samples/sec (%.2fx vs batch)  identical=%s"
                % (
                    stages,
                    sweep["samples"],
                    sweep["persample_samples_per_sec"],
                    sweep["batch_samples_per_sec"],
                    sweep["speedup"],
                    sweep["fused_samples_per_sec"],
                    sweep["fused_speedup_vs_batch"],
                    sweep["identical"],
                )
            )
    headline = rows[-1]["sweeps"][-1]
    cpu_count = os.cpu_count() or 1
    document = {
        "benchmark": "batched Monte-Carlo delay sweep vs per-sample rebind loop",
        "workload": "ring_with_chords(stages=n, tokens=4, chords=n/4, seed=7), "
        "uniform_spread(0.1), track_criticality=False",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": cpu_count,
        "hardware_note": (
            "process_shm columns ran the shared kernel process pool with "
            "shared-memory delay matrices on a host exposing %d CPU "
            "core(s)%s" % (
                cpu_count,
                "; with a single core they measure dispatch overhead, "
                "not scale-out" if cpu_count < 2 else "",
            )
        ),
        "warmup_runs": MC_WARMUP,
        "timer": "best of %d, wall clock" % MC_REPS,
        "rows": rows,
        "headline": {
            "graph": "stages=%d" % rows[-1]["stages"],
            "samples": headline["samples"],
            "batch_samples_per_sec": headline["batch_samples_per_sec"],
            "fused_samples_per_sec": headline["fused_samples_per_sec"],
            "process_shm_samples_per_sec":
                headline["process_shm_samples_per_sec"],
            "persample_samples_per_sec": headline["persample_samples_per_sec"],
            "speedup": headline["speedup"],
            "fused_speedup_vs_batch": headline["fused_speedup_vs_batch"],
            "identical": headline["identical"],
        },
    }
    failed = False
    if fused_gate:
        gate = measure_fused_gate()
        document["fused_gate"] = gate
        print(
            "fused gate n=%d S=%d: batch %8.0f samples/sec  "
            "fused %8.0f samples/sec (%.2fx, need >= %.1fx)  identical=%s"
            % (
                MC_GATE_STAGES,
                gate["samples"],
                gate["batch_samples_per_sec"],
                gate["fused_samples_per_sec"],
                gate["fused_speedup_vs_batch"],
                MC_GATE_MIN_SPEEDUP,
                gate["identical"],
            )
        )
        if gate["fused_speedup_vs_batch"] < MC_GATE_MIN_SPEEDUP:
            print("FAIL: fused speedup below the %.1fx acceptance bar"
                  % MC_GATE_MIN_SPEEDUP)
            failed = True
        if not gate["identical"]:
            print("FAIL: fused sweep diverged from the per-sample loop")
            failed = True
    with open(output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % os.path.abspath(output))
    return 1 if failed else 0


SERVICE_SIZES = (100, 200, 400)
SERVICE_COPIES = 12
SERVICE_REQUESTS = 16
SERVICE_SAMPLES = 32
SERVICE_REPS = 5


def _timed_each(fn, items):
    start = time.perf_counter()
    for item in items:
        fn(item)
    return (time.perf_counter() - start) / len(items)


def measure_service_compile(stages):
    from repro.core.kernel import CompiledGraph
    from repro.service.cache import clear_caches, configure, shared_compiled_graph

    graph = ring_with_chords(stages=stages, tokens=4, chords=stages // 4, seed=7)
    CompiledGraph(graph.copy())  # warm interpreter paths
    cold = min(
        _timed_each(CompiledGraph, [graph.copy() for _ in range(SERVICE_COPIES)])
        for _ in range(SERVICE_REPS)
    )
    configure()
    shared_compiled_graph(graph)  # seed the cache
    warm = min(
        _timed_each(
            shared_compiled_graph, [graph.copy() for _ in range(SERVICE_COPIES)]
        )
        for _ in range(SERVICE_REPS)
    )

    def variants():
        built = []
        for index in range(SERVICE_COPIES):
            variant = graph.copy()
            arc = variant.arcs[index % variant.num_arcs]
            variant.set_delay(arc.source, arc.target, float(arc.delay) + 0.25)
            built.append(variant)
        return built

    rebound = min(
        _timed_each(shared_compiled_graph, variants())
        for _ in range(SERVICE_REPS)
    )
    clear_caches()
    return {
        "stages": stages,
        "events": graph.num_events,
        "arcs": graph.num_arcs,
        "cold_compile_ms": 1e3 * cold,
        "warm_adopt_ms": 1e3 * warm,
        "warm_rebind_ms": 1e3 * rebound,
        "warm_adopt_speedup": cold / warm,
        "warm_rebind_speedup": cold / rebound,
    }


def measure_service_coalescing(stages):
    from repro.core.kernel import BatchBindings, compiled_graph
    from repro.core.kernel import run_border_simulations_batch
    from repro.analysis.montecarlo import sample_delay_matrix
    from repro.service.queue import RequestCoalescer

    graph = ring_with_chords(stages=stages, tokens=4, chords=stages // 4, seed=7)
    sampler = uniform_spread(0.1)
    rng = np.random.default_rng(0)
    matrices = [
        sample_delay_matrix(graph, sampler, SERVICE_SAMPLES, rng)
        for _ in range(SERVICE_REQUESTS)
    ]
    cg = compiled_graph(graph)

    def serial():
        for matrix in matrices:
            run_border_simulations_batch(
                graph, BatchBindings(cg, matrix)
            ).cycle_times()

    serial()  # warm
    serial_s = best_of(serial, reps=SERVICE_REPS)

    def coalesced(coalescer):
        futures = [coalescer.submit(graph, m) for m in matrices]
        for future in futures:
            future.result(60)

    with RequestCoalescer(linger_s=0.005) as coalescer:
        coalesced(coalescer)  # warm
        coalesced_s = best_of(lambda: coalesced(coalescer), reps=SERVICE_REPS)
    total = SERVICE_REQUESTS * SERVICE_SAMPLES
    return {
        "stages": stages,
        "requests": SERVICE_REQUESTS,
        "samples_per_request": SERVICE_SAMPLES,
        "serial_samples_per_sec": total / serial_s,
        "coalesced_samples_per_sec": total / coalesced_s,
        "coalesced_speedup": serial_s / coalesced_s,
    }


def run_service_suite(sizes, output):
    compile_rows = []
    for stages in sizes:
        row = measure_service_compile(stages)
        compile_rows.append(row)
        print(
            "n=%-4d  cold %7.3f ms  adopt %7.3f ms (%.1fx)  "
            "rebind %7.3f ms (%.1fx)"
            % (
                stages,
                row["cold_compile_ms"],
                row["warm_adopt_ms"],
                row["warm_adopt_speedup"],
                row["warm_rebind_ms"],
                row["warm_rebind_speedup"],
            )
        )
    coalesce_row = measure_service_coalescing(100)
    print(
        "coalescing n=100, %dx%d: serial %8.0f samples/sec  "
        "coalesced %8.0f samples/sec (%.1fx)"
        % (
            coalesce_row["requests"],
            coalesce_row["samples_per_request"],
            coalesce_row["serial_samples_per_sec"],
            coalesce_row["coalesced_samples_per_sec"],
            coalesce_row["coalesced_speedup"],
        )
    )
    largest = compile_rows[-1]
    document = {
        "benchmark": "repro.service content-addressed cache and request coalescer",
        "workload": "ring_with_chords(stages=n, tokens=4, chords=n/4, seed=7); "
        "cold CompiledGraph() vs shared_compiled_graph() on fresh "
        "content-equal copies; %d Monte-Carlo requests x %d samples "
        "serial vs coalesced" % (SERVICE_REQUESTS, SERVICE_SAMPLES),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "timer": "best of %d, wall clock, %d graphs per measurement"
        % (SERVICE_REPS, SERVICE_COPIES),
        "compile_rows": compile_rows,
        "coalescing": coalesce_row,
        "headline": {
            "graph": "stages=%d" % largest["stages"],
            "warm_compile_speedup": largest["warm_adopt_speedup"],
            "warm_rebind_speedup": largest["warm_rebind_speedup"],
            "coalesced_speedup": coalesce_row["coalesced_speedup"],
        },
    }
    with open(output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % os.path.abspath(output))
    if largest["warm_adopt_speedup"] < 5.0:
        print(
            "WARNING: warm compile speedup %.1fx below the 5x target"
            % largest["warm_adopt_speedup"]
        )
        return 1
    return 0


OBS_SIZES = (200, 400)
OBS_REPS = 5
OBS_WARMUP = 4
OBS_SERVER_REQUESTS = 80
OBS_HOOK_LOOPS = 200000
OBS_DISABLED_BUDGET_PCT = 2.0


def _per_call_ns(fn, loops=OBS_HOOK_LOOPS):
    start = time.perf_counter()
    for _ in range(loops):
        fn()
    return 1e9 * (time.perf_counter() - start) / loops


def measure_obs_null_hooks():
    """Nanoseconds per *disabled* observability touchpoint.

    These are the only costs the instrumentation adds when the obs
    layer is off: a no-op span context manager, a no-op phase context
    manager, and a contextvar lookup.  Each includes Python call
    overhead, so the per-analysis estimate built from them is an
    upper bound.
    """
    import repro.obs as obs
    from repro.obs.profile import active_profiler, phase
    from repro.obs.tracing import tracer

    obs.disable()
    t = tracer()

    def null_span():
        with t.span("bench"):
            pass

    def null_phase():
        with phase("bench"):
            pass

    return {
        "null_span_ns": _per_call_ns(null_span),
        "null_phase_ns": _per_call_ns(null_phase),
        "profiler_lookup_ns": _per_call_ns(active_profiler),
    }


def measure_obs_kernel(stages, hooks):
    """Analysis latency with obs disabled / traced / phase-profiled."""
    import repro.obs as obs
    from repro.obs.profile import PhaseProfiler, profile_phases
    from repro.obs.tracing import RingExporter, tracer

    graph = ring_with_chords(stages=stages, tokens=4, chords=stages // 4, seed=7)
    border = len(graph.border_events)

    def run():
        compute_cycle_time(graph, check=False, cache="off")

    obs.disable()
    for _ in range(OBS_WARMUP):
        run()
    disabled = best_of(run, reps=OBS_REPS)

    obs.enable(metrics=True, tracing=True)
    ring = RingExporter(capacity=4096)
    tracer().add_exporter(ring)
    try:
        for _ in range(OBS_WARMUP):
            run()
        traced = best_of(run, reps=OBS_REPS)
    finally:
        tracer().remove_exporter(ring)
        obs.disable()

    def run_profiled():
        with profile_phases(PhaseProfiler()):
            run()

    for _ in range(OBS_WARMUP):
        run_profiled()
    profiled = best_of(run_profiled, reps=OBS_REPS)

    # Disabled-path budget: per-analysis hook counts x measured no-op
    # costs.  One kernel.analyze span; phases = validate + simulate +
    # collect + one run per border simulation (toposort/codegen hit
    # the compile path, counted once); one profiler lookup per
    # simulation plus the per-period `is not None` branches (counted
    # at lookup cost — another overestimate).
    spans = 1
    phases = 3 + border
    lookups = border + border * (border + 3)
    hook_s = 1e-9 * (
        spans * hooks["null_span_ns"]
        + phases * hooks["null_phase_ns"]
        + lookups * hooks["profiler_lookup_ns"]
    )
    return {
        "stages": stages,
        "events": graph.num_events,
        "arcs": graph.num_arcs,
        "border_events": border,
        "disabled_ms": 1e3 * disabled,
        "traced_ms": 1e3 * traced,
        "profiled_ms": 1e3 * profiled,
        "traced_overhead_pct": 100.0 * (traced - disabled) / disabled,
        "profiled_overhead_pct": 100.0 * (profiled - disabled) / disabled,
        "disabled_overhead_pct": 100.0 * hook_s / disabled,
    }


def measure_obs_server():
    """Warm-cache /analyze requests/sec with obs off, on, and traced."""
    import tempfile
    import threading

    import repro.obs as obs
    from repro.service.client import ServiceClient
    from repro.service.server import make_server

    graph = ring_with_chords(stages=60, tokens=4, chords=15, seed=7)
    trace_path = os.path.join(
        tempfile.mkdtemp(prefix="repro-bench-obs-"), "trace.json"
    )
    modes = (
        ("disabled", dict(metrics=False)),
        ("metrics", dict(metrics=True)),
        ("metrics+tracing", dict(metrics=True, trace_export=trace_path)),
    )
    rows = {}
    for mode, overrides in modes:
        obs.disable()
        server = make_server(quiet=True, **overrides)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(server.url, timeout=10, retries=0)
            for _ in range(OBS_WARMUP):
                client.analyze(graph)  # first call seeds the result cache
            start = time.perf_counter()
            for _ in range(OBS_SERVER_REQUESTS):
                client.analyze(graph)
            elapsed = time.perf_counter() - start
        finally:
            server.shutdown()
            server.close()
            thread.join(timeout=5)
            obs.disable()
        rows[mode] = OBS_SERVER_REQUESTS / elapsed
    return {
        "requests": OBS_SERVER_REQUESTS,
        "workload": "warm result-cache /analyze, sequential HTTP client",
        "requests_per_sec": rows,
        "metrics_overhead_pct":
            100.0 * (rows["disabled"] / rows["metrics"] - 1.0),
        "tracing_overhead_pct":
            100.0 * (rows["disabled"] / rows["metrics+tracing"] - 1.0),
    }


def run_obs_suite(sizes, output):
    hooks = measure_obs_null_hooks()
    print(
        "null hooks: span %.0f ns  phase %.0f ns  profiler lookup %.0f ns"
        % (hooks["null_span_ns"], hooks["null_phase_ns"],
           hooks["profiler_lookup_ns"])
    )
    kernel_rows = []
    for stages in sizes:
        row = measure_obs_kernel(stages, hooks)
        kernel_rows.append(row)
        print(
            "n=%-4d  disabled %7.3f ms  traced %7.3f ms (+%.2f%%)  "
            "profiled %7.3f ms (+%.2f%%)  disabled budget %.4f%%"
            % (
                stages,
                row["disabled_ms"],
                row["traced_ms"],
                row["traced_overhead_pct"],
                row["profiled_ms"],
                row["profiled_overhead_pct"],
                row["disabled_overhead_pct"],
            )
        )
    server_row = measure_obs_server()
    rps = server_row["requests_per_sec"]
    print(
        "server /analyze: disabled %7.0f req/s  metrics %7.0f req/s "
        "(+%.2f%%)  metrics+tracing %7.0f req/s (+%.2f%%)"
        % (
            rps["disabled"],
            rps["metrics"],
            server_row["metrics_overhead_pct"],
            rps["metrics+tracing"],
            server_row["tracing_overhead_pct"],
        )
    )
    worst_disabled = max(r["disabled_overhead_pct"] for r in kernel_rows)
    document = {
        "benchmark": "repro.obs overhead: disabled no-op hooks vs "
        "tracing and phase profiling",
        "workload": "ring_with_chords(stages=n, tokens=4, chords=n/4, "
        "seed=7) end-to-end compute_cycle_time; warm-cache /analyze "
        "over HTTP",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "timer": "best of %d after %d warmups, wall clock"
        % (OBS_REPS, OBS_WARMUP),
        "disabled_overhead_method": "per-analysis hook counts x measured "
        "no-op hook costs (upper bound; each no-op includes Python "
        "call overhead)",
        "null_hooks_ns": hooks,
        "kernel_rows": kernel_rows,
        "server": server_row,
        "headline": {
            "disabled_overhead_pct": worst_disabled,
            "disabled_budget_pct": OBS_DISABLED_BUDGET_PCT,
            "traced_overhead_pct": kernel_rows[-1]["traced_overhead_pct"],
            "profiled_overhead_pct": kernel_rows[-1]["profiled_overhead_pct"],
            "server_metrics_overhead_pct": server_row["metrics_overhead_pct"],
        },
    }
    with open(output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % os.path.abspath(output))
    if worst_disabled > OBS_DISABLED_BUDGET_PCT:
        print(
            "WARNING: disabled-path overhead %.3f%% exceeds the %.1f%% budget"
            % (worst_disabled, OBS_DISABLED_BUDGET_PCT)
        )
        return 1
    return 0


def measure_worker_scaling(worker_counts, storm_s, clients):
    """Warm-cache /analyze req/s against 1..N pre-fork workers."""
    import threading

    from repro.service.client import ServiceClient
    from repro.service.pool import WorkerPool
    from repro.service.server import ServiceConfig

    graph = ring_with_chords(stages=60, tokens=4, chords=15, seed=7)
    rows = []
    for workers in worker_counts:
        config = ServiceConfig(
            host="127.0.0.1", port=0, quiet=True, drain_timeout=3.0,
        )
        pool = WorkerPool(config, workers, cache_config={})
        pool.start(timeout=60.0)
        handles = []
        try:
            # Keep-alive pins each client to one kernel-picked worker,
            # so warming through every client warms every worker the
            # storm will actually touch.
            handles = [
                ServiceClient(pool.url, timeout=30, retries=2)
                for _ in range(clients)
            ]
            for client in handles:
                for _ in range(SCALE_WARMUP_REQUESTS):
                    client.analyze(graph)
            counts = [0] * clients
            deadline = time.monotonic() + storm_s

            def run(index):
                client = handles[index]
                while time.monotonic() < deadline:
                    client.analyze(graph)
                    counts[index] += 1

            threads = [
                threading.Thread(target=run, args=(index,), daemon=True)
                for index in range(clients)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
        finally:
            for client in handles:
                client.close()
            pool.terminate(timeout=15.0)
        total = sum(counts)
        rows.append(
            {
                "workers": workers,
                "requests": total,
                "requests_per_sec": total / elapsed,
            }
        )
        print(
            "workers=%d  %6d reqs in %.2fs  %7.0f req/s"
            % (workers, total, elapsed, rows[-1]["requests_per_sec"])
        )
    baseline = rows[0]["requests_per_sec"]
    for row in rows:
        row["speedup_vs_1_worker"] = row["requests_per_sec"] / baseline
    return rows


def measure_executor_scaling(stages, samples, workers):
    """Threaded vs process-pool MC executor on one GIL-bound sweep."""
    from repro.core.kernel import shutdown_process_pool

    graph = ring_with_chords(stages=stages, tokens=4, chords=stages // 4, seed=7)
    sampler = uniform_spread(0.1)

    def run(executor, pool_workers, batch_size=None):
        return monte_carlo_cycle_time(
            graph, sampler, samples=samples, seed=0,
            track_criticality=False, workers=pool_workers,
            executor=executor, batch_size=batch_size,
        )

    try:
        chunk = max(1, samples // workers)
        for _ in range(MC_WARMUP):
            run(None, None)
            run("thread", workers, chunk)
            run("process", workers)
        single = run(None, None)
        threaded = run("thread", workers, chunk)
        pooled = run("process", workers)
        single_s = best_of(lambda: run(None, None), reps=MC_REPS)
        thread_s = best_of(lambda: run("thread", workers, chunk), reps=MC_REPS)
        process_s = best_of(lambda: run("process", workers), reps=MC_REPS)
    finally:
        shutdown_process_pool()
    return {
        "stages": stages,
        "events": graph.num_events,
        "arcs": graph.num_arcs,
        "samples": samples,
        "workers": workers,
        "single_samples_per_sec": samples / single_s,
        "thread_samples_per_sec": samples / thread_s,
        "process_samples_per_sec": samples / process_s,
        "process_vs_thread_speedup": thread_s / process_s,
        "process_vs_single_speedup": single_s / process_s,
        "identical": bool(
            np.array_equal(single.samples, threaded.samples)
            and np.array_equal(single.samples, pooled.samples)
        ),
    }


PTIME_SIZES = (20, 60, 120)
PTIME_WARMUP = 1
PTIME_REPS = 5


def measure_ptime(stages):
    from repro.generators import (
        plant_inconsistency,
        ptime_wrap,
    )
    from repro.ptime import check_consistency, lambda_range

    graph = ring_with_chords(
        stages=stages, tokens=3, chords=stages // 4, seed=7
    )
    exact = ptime_wrap(
        graph, tightness=0.5, seed=stages, infinite_fraction=0.2
    )
    floaty = exact.copy()
    for arc, interval in exact.arc_bounds():
        floaty.set_bounds(
            arc.source, arc.target,
            float(interval.lower),
            None if interval.upper is None else float(interval.upper),
        )
    planted = plant_inconsistency(exact, seed=stages)

    for _ in range(PTIME_WARMUP):
        check_consistency(exact)
        check_consistency(floaty)
        lambda_range(exact)
        check_consistency(planted)

    check_result = check_consistency(exact)
    range_result = lambda_range(exact)
    reject_result = check_consistency(planted)
    assert check_result.consistent and range_result.consistent
    assert not reject_result.consistent

    return {
        "stages": stages,
        "events": exact.num_events,
        "arcs": exact.num_arcs,
        "check_exact_ms": 1e3 * best_of(
            lambda: check_consistency(exact), reps=PTIME_REPS
        ),
        "check_float_ms": 1e3 * best_of(
            lambda: check_consistency(floaty), reps=PTIME_REPS
        ),
        "lambda_range_exact_ms": 1e3 * best_of(
            lambda: lambda_range(exact), reps=PTIME_REPS
        ),
        "reject_planted_ms": 1e3 * best_of(
            lambda: check_consistency(planted), reps=PTIME_REPS
        ),
        "check_iterations": check_result.iterations,
        "range_iterations": range_result.iterations,
        "lam_min": str(range_result.lam_min),
        "lam_max": (
            None if range_result.lam_max is None
            else str(range_result.lam_max)
        ),
    }


def run_ptime_suite(sizes, output):
    from repro.ptime import cross_validate

    rows = []
    for stages in sizes:
        row = measure_ptime(stages)
        rows.append(row)
        print(
            "n=%-4d  check exact %7.2f ms  float %7.2f ms  "
            "lambda-range %7.2f ms (%d passes)  reject %7.2f ms"
            % (
                stages,
                row["check_exact_ms"],
                row["check_float_ms"],
                row["lambda_range_exact_ms"],
                row["range_iterations"],
                row["reject_planted_ms"],
            )
        )

    # correctness rider: the smallest instance must cross-validate
    # (trajectories verified, kernel bit-exact on induced delays)
    graph = ring_with_chords(
        stages=sizes[0], tokens=3, chords=sizes[0] // 4, seed=7
    )
    from repro.generators import ptime_wrap

    rider = cross_validate(
        ptime_wrap(graph, tightness=0.5, seed=sizes[0], infinite_fraction=0.2),
        samples=3,
        horizon=4,
    )
    failures = [] if rider.ok else [str(rider)]

    cpu_count = os.cpu_count() or 1
    document = {
        "benchmark": "P-time analysis: NPC consistency checks and "
        "lambda-range synthesis",
        "workload": "ptime_wrap(ring_with_chords(stages=n, tokens=3, "
        "chords=n/4, seed=7), tightness=0.5, infinite_fraction=0.2); "
        "rejection rows add two conflicting rigid gadgets",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": cpu_count,
        "hardware_note": (
            "single-process, single-thread Bellman-Ford passes on a host "
            "exposing %d CPU core(s); wall-clock medians are stable but "
            "absolute times are container-dependent" % cpu_count
        ),
        "warmup_runs": PTIME_WARMUP,
        "timer": "best of %d, wall clock" % PTIME_REPS,
        "rows": rows,
        "gates": {
            "cross_validate": "enforced" if rider.ok else "FAILED",
        },
        "headline": {
            "graph": "stages=%d" % rows[-1]["stages"],
            "check_exact_ms": rows[-1]["check_exact_ms"],
            "lambda_range_exact_ms": rows[-1]["lambda_range_exact_ms"],
        },
    }
    with open(output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % os.path.abspath(output))
    for failure in failures:
        print("WARNING: %s" % failure)
    return 1 if failures else 0


def run_scaling_out_suite(output):
    cpu_count = os.cpu_count() or 1
    print("cpu_count=%d" % cpu_count)
    rows = measure_worker_scaling(SCALE_WORKERS, SCALE_STORM_S, SCALE_CLIENTS)
    executor_row = measure_executor_scaling(
        SCALE_MC_STAGES, SCALE_MC_SAMPLES, workers=min(4, max(2, cpu_count))
    )
    print(
        "mc n=%d S=%d: single %6.1f  thread %6.1f  process %6.1f "
        "samples/s (process %0.2fx thread)  identical=%s"
        % (
            executor_row["stages"],
            executor_row["samples"],
            executor_row["single_samples_per_sec"],
            executor_row["thread_samples_per_sec"],
            executor_row["process_samples_per_sec"],
            executor_row["process_vs_thread_speedup"],
            executor_row["identical"],
        )
    )

    failures = []
    gates = {}
    if not executor_row["identical"]:
        failures.append(
            "process-pool MC samples are not bit-identical to the "
            "single-process kernel"
        )
    gates["bit_identical"] = "enforced"

    # The scale-out gates presume parallel hardware; on smaller hosts
    # they are recorded as skipped rather than faked.
    four = next((r for r in rows if r["workers"] == 4), None)
    if cpu_count >= 4 and four is not None:
        gates["worker_scaling_4x"] = "enforced"
        if four["speedup_vs_1_worker"] < SCALE_MIN_SPEEDUP_AT_4:
            failures.append(
                "4-worker speedup %.2fx is below the %.1fx floor"
                % (four["speedup_vs_1_worker"], SCALE_MIN_SPEEDUP_AT_4)
            )
    else:
        gates["worker_scaling_4x"] = "skipped (cpu_count=%d < 4)" % cpu_count
        print(
            "NOTE: %.1fx@4-workers gate skipped — host has %d CPU core(s)"
            % (SCALE_MIN_SPEEDUP_AT_4, cpu_count)
        )
    if cpu_count >= 2:
        gates["process_beats_thread"] = "enforced"
        if executor_row["process_vs_thread_speedup"] <= 1.0:
            failures.append(
                "process executor (%.1f samples/s) does not beat the "
                "threaded executor (%.1f samples/s)"
                % (
                    executor_row["process_samples_per_sec"],
                    executor_row["thread_samples_per_sec"],
                )
            )
    else:
        gates["process_beats_thread"] = (
            "skipped (cpu_count=%d < 2)" % cpu_count
        )
        print(
            "NOTE: process-beats-thread gate skipped — host has %d CPU "
            "core(s)" % cpu_count
        )

    document = {
        "benchmark": "horizontal scale-out: pre-fork SO_REUSEPORT worker "
        "pool and process-pool Monte-Carlo executor",
        "workload": "warm-cache /analyze storm (ring stages=60, %d "
        "keep-alive clients, %.1fs) at 1/2/4 workers; n=%d GIL-bound MC "
        "sweep, thread vs process executor"
        % (SCALE_CLIENTS, SCALE_STORM_S, SCALE_MC_STAGES),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": cpu_count,
        "hardware_note": None if cpu_count >= 4 else (
            "host exposes %d CPU core(s); worker and process-pool "
            "parallelism cannot speed up CPU-bound work here, so the "
            "numbers below measure correctness and overhead, not "
            "scale-out" % cpu_count
        ),
        "worker_scaling": {
            "storm_seconds": SCALE_STORM_S,
            "clients": SCALE_CLIENTS,
            "rows": rows,
        },
        "executor": executor_row,
        "gates": gates,
        "headline": {
            "speedup_at_4_workers": (
                four["speedup_vs_1_worker"] if four else None
            ),
            "process_vs_thread_speedup":
                executor_row["process_vs_thread_speedup"],
            "bit_identical": executor_row["identical"],
        },
    }
    with open(output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % os.path.abspath(output))
    for failure in failures:
        print("WARNING: %s" % failure)
    return 1 if failures else 0


OVERLOAD_LEVELS = (2, 6, 12)
OVERLOAD_LEVEL_S = 3.0
OVERLOAD_STAGES = 80
OVERLOAD_SAMPLES = 2048
OVERLOAD_FLOOR = 64
OVERLOAD_TIMEOUT_MS = 2000


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return None
    index = int(fraction * (len(sorted_values) - 1))
    return sorted_values[index]


def measure_overload_level(url, clients, seed_base):
    """Offered load of ``clients`` concurrent Monte-Carlo callers for
    one ramp level; returns outcome mix and latency percentiles."""
    import threading

    from repro.service.client import (
        DeadlineExceededError,
        ServerSaturatedError,
        ServiceClient,
        ServiceError,
    )

    graph = ring_with_chords(stages=OVERLOAD_STAGES, tokens=4, chords=20,
                             seed=7)
    lock = threading.Lock()
    outcomes = {"ok": 0, "shed_429": 0, "deadline_504": 0, "error_5xx": 0}
    degraded = [0]
    durations = []
    counter = [0]
    deadline = time.monotonic() + OVERLOAD_LEVEL_S

    def on_degraded(_stamp):
        with lock:
            degraded[0] += 1

    def run(index):
        client = ServiceClient(url, timeout=10, retries=0,
                               on_degraded=on_degraded)
        try:
            while time.monotonic() < deadline:
                with lock:
                    counter[0] += 1
                    seed = seed_base + counter[0]
                started = time.perf_counter()
                try:
                    client.montecarlo(
                        graph, samples=OVERLOAD_SAMPLES, seed=seed,
                        timeout_ms=OVERLOAD_TIMEOUT_MS,
                        priority=("interactive", "bulk")[index % 2],
                    )
                    outcome = "ok"
                except ServerSaturatedError:
                    outcome = "shed_429"
                except DeadlineExceededError:
                    outcome = "deadline_504"
                except ServiceError:
                    outcome = "error_5xx"
                elapsed = time.perf_counter() - started
                with lock:
                    outcomes[outcome] += 1
                    if outcome == "ok":
                        durations.append(elapsed)
        finally:
            client.close()

    threads = [
        threading.Thread(target=run, args=(index,), daemon=True)
        for index in range(clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    durations.sort()
    total = sum(outcomes.values())
    return {
        "offered_clients": clients,
        "requests": total,
        "throughput_ok_per_sec": outcomes["ok"] / elapsed,
        "outcomes": dict(outcomes),
        "shed_rate": outcomes["shed_429"] / total if total else 0.0,
        "degraded_responses": degraded[0],
        "degraded_rate": degraded[0] / total if total else 0.0,
        "p50_ms": (_percentile(durations, 0.50) or 0.0) * 1000.0,
        "p99_ms": (_percentile(durations, 0.99) or 0.0) * 1000.0,
    }


def run_overload_suite(output):
    """Ramped-load overload behaviour: shed/degraded rates and latency
    percentiles as offered concurrency climbs past capacity."""
    import threading

    from repro.service.client import ServiceClient
    from repro.service.server import make_server

    server = make_server(
        quiet=True, max_inflight=2, max_queue_depth=8,
        adaptive=True, brownout=True, brownout_floor=OVERLOAD_FLOOR,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    rows = []
    failures = []
    try:
        probe = ServiceClient(server.url, timeout=10, retries=0)
        for level, clients in enumerate(OVERLOAD_LEVELS):
            row = measure_overload_level(
                server.url, clients, seed_base=100000 * (level + 1)
            )
            stats = probe.stats()
            overload = stats.get("overload") or {}
            row["limiter"] = overload.get("limiter")
            row["brownout"] = overload.get("brownout")
            rows.append(row)
            print(
                "clients=%-3d %5d reqs  ok %6.1f/s  shed %5.1f%%  "
                "degraded %5.1f%%  p50 %7.1f ms  p99 %7.1f ms"
                % (
                    clients, row["requests"],
                    row["throughput_ok_per_sec"],
                    100.0 * row["shed_rate"],
                    100.0 * row["degraded_rate"],
                    row["p50_ms"], row["p99_ms"],
                )
            )
        probe.close()
    finally:
        server.shutdown()
        server.close()
        thread.join(timeout=10)

    for row in rows:
        limiter = row["limiter"]
        if limiter is None:
            failures.append("no adaptive limiter snapshot on /stats")
        elif not (
            limiter["min_limit"] <= limiter["limit"] <= limiter["ceiling"]
        ):
            failures.append("limiter diverged: %r" % limiter)
        if row["outcomes"]["error_5xx"]:
            failures.append(
                "unstructured 5xx under ramped load: %r" % row["outcomes"]
            )
    top = rows[-1]
    document = {
        "benchmark": "closed-loop overload control: AIMD limiter, "
        "deadline/CoDel shedding and brownout degradation under a "
        "ramped Monte-Carlo load",
        "workload": "ring_with_chords(stages=%d) /montecarlo "
        "samples=%d, %.1fs per level at %r concurrent clients, "
        "max_inflight=2, queue depth 8, brownout floor %d"
        % (OVERLOAD_STAGES, OVERLOAD_SAMPLES, OVERLOAD_LEVEL_S,
           list(OVERLOAD_LEVELS), OVERLOAD_FLOOR),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "levels": rows,
        "headline": {
            "peak_shed_rate": max(r["shed_rate"] for r in rows),
            "peak_degraded_rate": max(r["degraded_rate"] for r in rows),
            "p99_ms_at_peak": top["p99_ms"],
            "limit_at_peak": (top["limiter"] or {}).get("limit"),
            "brownout_level_at_peak": (top["brownout"] or {}).get("level"),
        },
    }
    with open(output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % os.path.abspath(output))
    for failure in failures:
        print("WARNING: %s" % failure)
    return 1 if failures else 0


NETLIST_CORPUS = ("c17", "rca8", "sreg16", "mult16")
NETLIST_GOLDEN = {"c17": 8, "rca8": 22, "sreg16": 132, "mult16": 91}
NETLIST_REPS_SMALL = 5
NETLIST_REPS_LARGE = 2


def measure_netlist(name):
    from fractions import Fraction

    from repro.baselines import compute_cycle_time as baseline_cycle_time
    from repro.netlist import (
        corpus_path,
        load_corpus,
        parse_bench,
        ring_wrap,
        structural_extract,
    )

    with open(corpus_path(name), encoding="utf-8") as handle:
        source = handle.read()
    network = parse_bench(source)
    reps = NETLIST_REPS_SMALL if network.num_gates < 500 else NETLIST_REPS_LARGE

    parse_s = best_of(lambda: parse_bench(source), reps=reps)
    wrapped = ring_wrap(network)
    transform_s = best_of(lambda: ring_wrap(network), reps=reps)
    graph = structural_extract(wrapped)
    extract_s = best_of(lambda: structural_extract(wrapped), reps=reps)

    border = len(graph.border_events)
    method = "timing" if border <= 48 else "howard-ratio"
    if method == "timing":
        result = compute_cycle_time(graph)
        analyze_s = best_of(lambda: compute_cycle_time(graph), reps=reps)
    else:
        result = baseline_cycle_time(graph, "howard-ratio")
        analyze_s = best_of(
            lambda: baseline_cycle_time(graph, "howard-ratio"), reps=reps
        )
    value = result.cycle_time
    return {
        "circuit": name,
        "gates": network.num_gates,
        "wrapped_gates": len(wrapped.gates),
        "events": graph.num_events,
        "arcs": graph.num_arcs,
        "border_events": border,
        "method": method,
        "cycle_time": str(Fraction(value)) if not isinstance(value, float)
        else repr(value),
        "parse_ms": parse_s * 1e3,
        "transform_ms": transform_s * 1e3,
        "extract_ms": extract_s * 1e3,
        "analyze_ms": analyze_s * 1e3,
        "end_to_end_ms": (parse_s + transform_s + extract_s + analyze_s) * 1e3,
    }


def run_netlist_suite(output):
    from repro.baselines import compute_cycle_time as baseline_cycle_time
    from repro.circuits.extraction import extract_signal_graph
    from repro.netlist import load_corpus, ring_wrap, structural_extract

    failures = []
    rows = []
    for name in NETLIST_CORPUS:
        row = measure_netlist(name)
        rows.append(row)
        expected = NETLIST_GOLDEN[name]
        if row["cycle_time"] != str(expected):
            failures.append(
                "%s: cycle time %s, expected %d"
                % (name, row["cycle_time"], expected)
            )
        print(
            "%-7s %4d gates  parse %6.1f ms  wrap %6.1f ms  "
            "extract %7.1f ms  analyze %8.1f ms  lambda=%s (%s)"
            % (
                name,
                row["gates"],
                row["parse_ms"],
                row["transform_ms"],
                row["extract_ms"],
                row["analyze_ms"],
                row["cycle_time"],
                row["method"],
            )
        )

    # correctness riders: the scalable path must match the exhaustive
    # oracle on c17, and the sparse ratio-form Howard must match the
    # token-graph reduction on a mid-size circuit.
    wrapped_c17 = ring_wrap(load_corpus("c17"))
    if not structural_extract(wrapped_c17).structurally_equal(
        extract_signal_graph(wrapped_c17)
    ):
        failures.append("structural extraction != oracle on wrapped c17")
    rca8_graph = structural_extract(ring_wrap(load_corpus("rca8")))
    via_ratio = baseline_cycle_time(rca8_graph, "howard-ratio").cycle_time
    via_reduction = baseline_cycle_time(rca8_graph, "howard").cycle_time
    if via_ratio != via_reduction:
        failures.append(
            "howard-ratio %r != reduction howard %r on rca8"
            % (via_ratio, via_reduction)
        )
    ratio_s = best_of(
        lambda: baseline_cycle_time(rca8_graph, "howard-ratio"),
        reps=NETLIST_REPS_SMALL,
    )
    reduction_s = best_of(
        lambda: baseline_cycle_time(rca8_graph, "howard"),
        reps=NETLIST_REPS_SMALL,
    )
    print(
        "rca8 analyze: howard-ratio %.1f ms vs reduction howard %.1f ms "
        "(%.1fx)"
        % (ratio_s * 1e3, reduction_s * 1e3, reduction_s / ratio_s)
    )

    largest = rows[-1]
    cpu_count = os.cpu_count() or 1
    document = {
        "benchmark": "real-circuit netlist pipeline: parse -> ring-wrap -> "
        "structural extraction -> cycle time",
        "workload": "shipped .bench corpus with unit gate/ack delays; "
        "structural extraction with hash-window fold; method auto-selected "
        "by border size (timing <= 48 border events, else ratio-form "
        "Howard on the sparse repetitive core)",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": cpu_count,
        "timer": "best of %d (small) / %d (>=500 gates), wall clock"
        % (NETLIST_REPS_SMALL, NETLIST_REPS_LARGE),
        "rows": rows,
        "howard_ratio_vs_reduction": {
            "circuit": "rca8",
            "ratio_ms": ratio_s * 1e3,
            "reduction_ms": reduction_s * 1e3,
            "speedup": reduction_s / ratio_s,
        },
        "gates": {
            "golden_cycle_times": "FAILED" if any(
                f.startswith(tuple(NETLIST_CORPUS)) for f in failures
            ) else "enforced",
            "structural_equals_oracle_c17": "FAILED" if any(
                "oracle" in f for f in failures
            ) else "enforced",
            "ratio_equals_reduction_rca8": "FAILED" if any(
                "reduction" in f for f in failures
            ) else "enforced",
        },
        "headline": {
            "circuit": largest["circuit"],
            "gates": largest["gates"],
            "events": largest["events"],
            "end_to_end_ms": largest["end_to_end_ms"],
            "cycle_time": largest["cycle_time"],
        },
    }
    with open(output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % os.path.abspath(output))
    for failure in failures:
        print("WARNING: %s" % failure)
    return 1 if failures else 0


def main(argv=None) -> int:
    root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite",
        choices=("kernels", "montecarlo", "service", "obs", "scaling_out",
                 "ptime", "overload", "netlist"),
        default="kernels",
        help="what to measure (default: the single-analysis kernels)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="output JSON path (default: repo-root BENCH_cycle_time.json "
        "or BENCH_montecarlo.json by suite)",
    )
    parser.add_argument(
        "--sizes", default=None,
        help="comma-separated ring sizes to measure",
    )
    parser.add_argument(
        "--samples", default=",".join(str(s) for s in MC_BATCHES),
        help="comma-separated batch widths S (montecarlo suite only)",
    )
    parser.add_argument(
        "--fused-gate", action="store_true",
        help="force the n=%d fused-vs-batch acceptance gate even with "
        "--sizes overridden (montecarlo suite only)" % MC_GATE_STAGES,
    )
    args = parser.parse_args(argv)
    if args.suite == "netlist":
        output = args.output or os.path.join(root, "BENCH_netlist.json")
        return run_netlist_suite(output)
    if args.suite == "overload":
        output = args.output or os.path.join(root, "BENCH_overload.json")
        return run_overload_suite(output)
    if args.suite == "scaling_out":
        output = args.output or os.path.join(root, "BENCH_scaling_out.json")
        return run_scaling_out_suite(output)
    if args.suite == "ptime":
        sizes = [
            int(part)
            for part in (args.sizes or ",".join(map(str, PTIME_SIZES))).split(",")
        ]
        output = args.output or os.path.join(root, "BENCH_ptime.json")
        return run_ptime_suite(sizes, output)
    if args.suite == "obs":
        sizes = [
            int(part)
            for part in (args.sizes or ",".join(map(str, OBS_SIZES))).split(",")
        ]
        output = args.output or os.path.join(root, "BENCH_obs.json")
        return run_obs_suite(sizes, output)
    if args.suite == "service":
        sizes = [
            int(part)
            for part in (args.sizes or ",".join(map(str, SERVICE_SIZES))).split(",")
        ]
        output = args.output or os.path.join(root, "BENCH_service.json")
        return run_service_suite(sizes, output)
    if args.suite == "montecarlo":
        sizes = [
            int(part)
            for part in (args.sizes or ",".join(map(str, MC_SIZES))).split(",")
        ]
        batches = [int(part) for part in args.samples.split(",")]
        output = args.output or os.path.join(root, "BENCH_montecarlo.json")
        # The n=800 fused acceptance gate runs with the full default
        # sweep; size-overridden smoke runs stay quick (opt back in
        # with --fused-gate).
        fused_gate = args.fused_gate or args.sizes is None
        return run_montecarlo_suite(sizes, batches, output,
                                    fused_gate=fused_gate)
    sizes = [
        int(part) for part in (args.sizes or ",".join(map(str, SIZES))).split(",")
    ]
    rows = []
    for stages in sizes:
        row = measure(stages)
        rows.append(row)
        print(
            "n=%-4d  sim legacy %7.3f ms  exact %7.3f ms (%.1fx)  "
            "float %7.3f ms (%.1fx)"
            % (
                stages,
                row["simulate_ms"]["legacy"],
                row["simulate_ms"]["exact"],
                row["simulate_speedup"]["exact"],
                row["simulate_ms"]["float"],
                row["simulate_speedup"]["float"],
            )
        )
    largest = rows[-1]
    document = {
        "benchmark": "compiled simulation kernels vs legacy dict-based loops",
        "workload": "ring_with_chords(stages=n, tokens=4, chords=n/4, seed=7)",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "warmup_runs": WARMUP,
        "timer": "best of %d, wall clock" % REPS,
        "rows": rows,
        "headline": {
            "graph": "stages=%d" % largest["stages"],
            "float_simulation_speedup": largest["simulate_speedup"]["float"],
            "exact_simulation_speedup": largest["simulate_speedup"]["exact"],
            "float_end_to_end_speedup": largest["end_to_end_speedup"]["float"],
        },
    }
    output = args.output or os.path.join(root, "BENCH_cycle_time.json")
    with open(output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % os.path.abspath(output))
    return 0


if __name__ == "__main__":
    sys.exit(main())
