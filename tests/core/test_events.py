"""Unit tests for event naming (repro.core.events)."""

import pytest

from repro.core.errors import FormatError
from repro.core.events import FALL, RISE, Transition, as_event, event_label


class TestTransitionParsing:
    def test_parse_rising(self):
        t = Transition.parse("a+")
        assert t.signal == "a"
        assert t.direction == RISE
        assert t.tag == 0

    def test_parse_falling(self):
        t = Transition.parse("req-")
        assert t.signal == "req"
        assert t.is_falling

    def test_parse_tagged(self):
        t = Transition.parse("a+/2")
        assert t.tag == 2
        assert str(t) == "a+/2"

    def test_parse_complex_names(self):
        t = Transition.parse("bus[3].ack-")
        assert t.signal == "bus[3].ack"

    def test_parse_strips_whitespace(self):
        assert Transition.parse(" a+ ") == Transition("a", "+")

    @pytest.mark.parametrize("bad", ["", "a", "+a", "a*", "a++", "1a+", "a +"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(FormatError):
            Transition.parse(bad)

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            Transition("a", "^")


class TestTransitionBehaviour:
    def test_roundtrip_str(self):
        for text in ["a+", "b-", "x+/3"]:
            assert str(Transition.parse(text)) == text

    def test_equality_and_hash(self):
        assert Transition("a", "+") == Transition.parse("a+")
        assert hash(Transition("a", "+")) == hash(Transition.parse("a+"))
        assert Transition("a", "+") != Transition("a", "-")
        assert Transition("a", "+", 1) != Transition("a", "+", 2)

    def test_ordering_is_total(self):
        transitions = [Transition.parse(t) for t in ["b-", "a+", "a-", "b+"]]
        ordered = sorted(transitions)
        assert ordered == sorted(ordered)

    def test_opposite(self):
        assert Transition.parse("a+").opposite() == Transition.parse("a-")
        assert Transition.parse("a-/2").opposite() == Transition.parse("a+/2")

    def test_target_value(self):
        assert Transition.parse("a+").target_value == 1
        assert Transition.parse("a-").target_value == 0

    def test_pretty_uses_arrows(self):
        assert Transition.parse("a+").pretty() == "a↑"
        assert Transition.parse("a-").pretty() == "a↓"

    def test_repr_is_evalish(self):
        assert repr(Transition.parse("a+")) == "Transition('a+')"


class TestAsEvent:
    def test_string_becomes_transition(self):
        assert as_event("a+") == Transition("a", "+")

    def test_non_transition_string_passthrough(self):
        assert as_event("node17") == "node17"

    def test_transition_passthrough(self):
        t = Transition("a", "+")
        assert as_event(t) is t

    def test_other_hashables_passthrough(self):
        assert as_event(42) == 42
        assert as_event(("x", 1)) == ("x", 1)

    def test_event_label(self):
        assert event_label(Transition("a", "+")) == "a+"
        assert event_label("n0") == "n0"
        assert event_label(7) == "7"
