"""E13 — Section VIII-B: the 66-event / 112-arc asynchronous stack.

The paper: "The analysis of ... a Signal Graph with 66 events and 112
arcs, which describes the gate level behavior of an asynchronous stack
with constant response time, takes 74 CPU milliseconds on a DEC 5000."

We build a stack-shaped control graph of exactly that size (see
DESIGN.md for the documented substitution) and time the full analysis.
The claim under reproduction is the *order of magnitude* — a graph of
this size is analysed in milliseconds — plus the b << n structure that
makes the algorithm near-linear.
"""

import pytest

from conftest import emit
from repro.core import compute_cycle_time, validate


def test_e13_stack_size_matches_paper(stack):
    assert stack.num_events == 66
    assert stack.num_arcs == 112
    validate(stack)


def test_e13_stack_analysis_runtime(benchmark, stack):
    result = benchmark(compute_cycle_time, stack)
    assert result.cycle_time > 0
    stats = benchmark.stats.stats
    mean_ms = stats.mean * 1000
    emit(
        "E13 Section VIII-B stack runtime "
        "(paper: 74 ms on a DEC 5000 for 66 events / 112 arcs)",
        "measured: %.2f ms mean on this machine (%d border events, "
        "lambda = %s)"
        % (mean_ms, len(result.border_events), result.cycle_time),
    )


def test_e13_stack_full_report(benchmark, stack):
    from repro.analysis import analyze

    report = benchmark(analyze, stack)
    assert report.cycle_time == 44
    assert report.all_critical_cycles()
    emit(
        "E13 stack performance report",
        "lambda = %s; %d critical arcs of %d"
        % (report.cycle_time, len(report.critical_arcs), stack.num_arcs),
    )
