"""Howard's policy-iteration algorithm for the maximum mean cycle.

The max-plus / Markov-decision formulation of Baccelli et al. [1] in
its multi-chain form (as described by Dasdan's survey of cycle-ratio
algorithms):

* a *policy* selects one out-edge per node; following the policy from
  any node drains into exactly one *policy cycle*;
* evaluation gives each node the mean ``eta`` of the cycle it drains
  into and a potential ``h`` solving
  ``h(u) = w(u, pi(u)) - eta(u) + h(pi(u))``;
* improvement first raises ``eta`` (switch to a successor draining
  into a better cycle), then — among equal-``eta`` successors —
  raises ``h``;
* at a fixed point the largest policy-cycle mean is the maximum mean
  cycle of the graph.

Typically converges in a handful of iterations and is the fastest
baseline on large reduced graphs.  Exact with int/Fraction weights.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..core.arithmetic import Number, exact_div
from ..core.errors import AcyclicGraphError


def max_mean_cycle_howard(
    graph: "nx.DiGraph",
    weight: str = "weight",
    max_iterations: int = 100_000,
) -> Tuple[Number, List]:
    """Maximum mean cycle by policy iteration: ``(mean, node cycle)``."""
    work = _cyclic_closure(graph)
    if work.number_of_nodes() == 0:
        raise AcyclicGraphError("graph has no cycles")

    policy: Dict[object, object] = {
        node: max(work.successors(node), key=lambda s: (work[node][s][weight], str(s)))
        for node in work.nodes
    }
    for _ in range(max_iterations):
        eta, potential, cycles = _evaluate(work, policy, weight)
        improved = False
        for node in work.nodes:
            for successor in work.successors(node):
                if eta[successor] > eta[node]:
                    policy[node] = successor
                    improved = True
                    break
            else:
                current = potential[node]
                chosen = policy[node]
                for successor in work.successors(node):
                    if eta[successor] != eta[node]:
                        continue
                    candidate = (
                        work[node][successor][weight] - eta[node] + potential[successor]
                    )
                    if candidate > current:
                        current = candidate
                        chosen = successor
                if chosen != policy[node]:
                    policy[node] = chosen
                    improved = True
        if not improved:
            best_cycle = max(cycles, key=lambda cycle: eta[cycle[0]])
            return eta[best_cycle[0]], best_cycle
    raise RuntimeError("Howard iteration did not converge")


def _cyclic_closure(graph: "nx.DiGraph") -> "nx.DiGraph":
    """Copy of ``graph`` restricted to nodes that can lie on a cycle."""
    work = graph.copy()
    changed = True
    while changed:
        changed = False
        doomed = [
            node
            for node in work.nodes
            if work.out_degree(node) == 0 or work.in_degree(node) == 0
        ]
        if doomed:
            work.remove_nodes_from(doomed)
            changed = True
    return work


def _evaluate(
    graph: "nx.DiGraph", policy: Dict, weight: str
) -> Tuple[Dict, Dict, List[List]]:
    """Per-node cycle means and potentials under ``policy``.

    Returns ``(eta, potential, policy_cycles)``.
    """
    eta: Dict[object, Number] = {}
    potential: Dict[object, Number] = {}
    cycles: List[List] = []
    state: Dict[object, int] = {}  # 0 in progress, 1 done

    for start in graph.nodes:
        if start in state:
            continue
        path: List = []
        node = start
        while node not in state and node not in eta:
            state[node] = 0
            path.append(node)
            node = policy[node]
        if node in path:  # discovered a fresh policy cycle
            cycle = path[path.index(node) :]
            total: Number = 0
            for position, member in enumerate(cycle):
                successor = cycle[(position + 1) % len(cycle)]
                total = total + graph[member][successor][weight]
            mean = exact_div(total, len(cycle))
            cycles.append(cycle)
            # Anchor the cycle: potential 0 at its first node, then walk
            # the cycle backwards so the recurrence holds on every edge
            # (it closes exactly because total - len*mean == 0).
            anchor = cycle[0]
            eta[anchor] = mean
            potential[anchor] = 0
            for member in reversed(cycle[1:]):
                successor = policy[member]
                eta[member] = mean
                potential[member] = (
                    graph[member][successor][weight] - mean + potential[successor]
                )
        # Propagate values back along the path that led into the cycle
        # (or into previously valued territory).
        for member in reversed(path):
            if member in eta:
                continue
            successor = policy[member]
            eta[member] = eta[successor]
            potential[member] = (
                graph[member][successor][weight] - eta[successor] + potential[successor]
            )
        for member in path:
            state[member] = 1
    return eta, potential, cycles


# ----------------------------------------------------------------------
# Ratio form: policy iteration directly on the Timed Signal Graph
# ----------------------------------------------------------------------
def max_cycle_ratio_howard(
    graph, max_iterations: int = 100_000
) -> Tuple[Number, List]:
    """Maximum cycle ratio ``sum(delay)/sum(tokens)`` of a live graph.

    Runs the policy iteration on the *sparse* repetitive core itself —
    no token-graph reduction.  The classical reduction builds up to
    ``b^2`` edges for ``b`` tokens, which is quadratic death for
    ring-wrapped netlists where almost half the fold's arcs are marked
    (every DFF seam and every window-crossing cause carries a token);
    working on the original arcs keeps one iteration at ``O(m)``.

    With exact (int/Fraction) delays the policy is first converged in
    float arithmetic — a warm start only — and then re-evaluated and
    re-improved exactly until an exact fixed point, so the result stays
    exact while the bulk of the iterations run on machine floats.

    Returns ``(ratio, witness event cycle)``.  Raises
    :class:`AcyclicGraphError` when no cycle exists.
    """
    repetitive = graph.repetitive_events
    successors: Dict[object, List[Tuple[object, Number, int]]] = {}
    exact = True
    for arc in graph.arcs:
        if arc.disengageable:
            continue
        if arc.source not in repetitive or arc.target not in repetitive:
            continue
        if isinstance(arc.delay, float):
            exact = False
        successors.setdefault(arc.source, []).append(
            (arc.target, arc.delay, arc.tokens)
        )

    # Peel nodes that cannot lie on a cycle (mirrors _cyclic_closure).
    while True:
        targets = {
            entry[0]
            for arcs in successors.values()
            for entry in arcs
            if entry[0] in successors
        }
        alive = {node for node in successors if node in targets}
        pruned = {
            node: [entry for entry in arcs if entry[0] in alive]
            for node, arcs in successors.items()
            if node in alive
        }
        pruned = {node: arcs for node, arcs in pruned.items() if arcs}
        if len(pruned) == len(successors) and all(
            len(pruned[node]) == len(successors[node]) for node in pruned
        ):
            break
        successors = pruned
    if not successors:
        raise AcyclicGraphError("graph has no cycles on its repetitive core")

    policy: Dict[object, int] = {
        node: max(
            range(len(arcs)),
            key=lambda index: (arcs[index][1], str(arcs[index][0])),
        )
        for node, arcs in successors.items()
    }
    if exact:
        floated = {
            node: [(target, float(delay), tokens)
                   for target, delay, tokens in arcs]
            for node, arcs in successors.items()
        }
        _howard_iterate(floated, policy, max_iterations, tolerance=1e-9)
    eta, cycles = _howard_iterate(successors, policy, max_iterations)
    best = max(cycles, key=lambda cycle: eta[cycle[0]])
    return eta[best[0]], best


def _howard_iterate(
    successors: Dict[object, List[Tuple[object, Number, int]]],
    policy: Dict[object, int],
    max_iterations: int,
    tolerance: Number = 0,
) -> Tuple[Dict, List[List]]:
    """Run ratio-form policy iteration to a fixed point, in place.

    ``policy`` maps each node to an index into its successor list and
    is mutated toward the optimum.  A non-zero ``tolerance`` makes the
    improvement tests strict-by-margin, which keeps float warm-start
    rounds from oscillating on rounding noise.  It must stay the int
    ``0`` in the exact phase: adding a float ``0.0`` would silently
    round the Fraction comparisons.
    """
    for _ in range(max_iterations):
        eta, potential, cycles = _evaluate_ratio(successors, policy)
        improved = False
        for node, arcs in successors.items():
            node_eta = eta[node]
            switched = False
            for index, entry in enumerate(arcs):
                if eta[entry[0]] > node_eta + tolerance:
                    policy[node] = index
                    improved = True
                    switched = True
                    break
            if switched:
                continue
            current = potential[node]
            chosen = policy[node]
            for index, (target, delay, tokens) in enumerate(arcs):
                if not (node_eta - tolerance <= eta[target]
                        <= node_eta + tolerance):
                    continue
                candidate = delay - node_eta * tokens + potential[target]
                if candidate > current + tolerance:
                    current = candidate
                    chosen = index
            if chosen != policy[node]:
                policy[node] = chosen
                improved = True
        if not improved:
            return eta, cycles
    raise RuntimeError("Howard ratio iteration did not converge")


def _evaluate_ratio(
    successors: Dict[object, List[Tuple[object, Number, int]]],
    policy: Dict[object, int],
) -> Tuple[Dict, Dict, List[List]]:
    """Per-node cycle ratios and potentials under ``policy``.

    Like :func:`_evaluate` with weight ``delay - eta * tokens``: on a
    policy cycle ``eta = sum(delay)/sum(tokens)`` makes the potential
    recurrence close exactly.
    """
    from ..core.errors import NotLiveError

    eta: Dict[object, Number] = {}
    potential: Dict[object, Number] = {}
    cycles: List[List] = []
    visited: set = set()

    for start in policy:
        if start in visited:
            continue
        path: List = []
        on_path: set = set()
        node = start
        while node not in on_path and node not in eta:
            path.append(node)
            on_path.add(node)
            node = successors[node][policy[node]][0]
        if node in on_path:  # fresh policy cycle
            cycle = path[path.index(node):]
            total_delay: Number = 0
            total_tokens = 0
            for member in cycle:
                _, delay, tokens = successors[member][policy[member]]
                total_delay = total_delay + delay
                total_tokens += tokens
            if total_tokens == 0:
                raise NotLiveError(
                    "policy cycle %s carries no token: the graph is not "
                    "live" % ([str(event) for event in cycle],),
                    cycle=cycle,
                )
            ratio = exact_div(total_delay, total_tokens)
            cycles.append(cycle)
            anchor = cycle[0]
            eta[anchor] = ratio
            potential[anchor] = 0
            for member in reversed(cycle[1:]):
                successor, delay, tokens = successors[member][policy[member]]
                eta[member] = ratio
                potential[member] = (
                    delay - ratio * tokens + potential[successor]
                )
        for member in reversed(path):
            if member in eta:
                continue
            successor, delay, tokens = successors[member][policy[member]]
            eta[member] = eta[successor]
            potential[member] = (
                delay - eta[successor] * tokens + potential[successor]
            )
        visited.update(path)
    return eta, potential, cycles
