"""Netlist transforms: buffering, fanout splitting and ring-wrap.

The first two are classic DAG hygiene passes over the open
:class:`~repro.netlist.model.LogicNetwork`.  The third is the bridge
into the paper's pipeline: :func:`ring_wrap` closes a benchmark DAG
into an **autonomous self-timed circuit** — a generalised Muller ring
— that the extractor can fold into a Timed Signal Graph.

Ring-wrap construction
----------------------
The transform keeps only the network's *event structure*: every DAG
node (primary input, gate or flop) becomes one pipeline stage

* ``v = C(preds(v)..., v_k)`` — a Muller C-element joining the
  stage's producers with its acknowledge, and
* ``v_k = NC(succs(v)...)`` — an inverted-C completion detector over
  the stage's consumers (a plain inverter for a single consumer),

exactly the cell pattern of the paper's Figure-5 Muller ring; a chain
DAG reduces to ``muller_ring_netlist``.  A completion stage ``w``
(the "omega" node) joins the primary outputs and any dangling gates,
and feeds every primary input — closing the request/acknowledge loop
so the wrapped circuit oscillates forever.  Data tokens sit at ``w``
and at every DFF stage (value 1); all other stages start at 0.  Hole
stages (extra buffers) are inserted wherever two token stages would
be adjacent, and on every DFF fan-in edge, so each ring cycle keeps
at least one token *and* one bubble — the liveness condition of a
Muller ring.

Gate-level logic (AND vs XOR vs NAND) does not influence the wrapped
behaviour: the wrap is a timing skeleton in which each gate fires
when all its producers have, which is the standard speed-independent
reading of a bounded-delay datapath.  What survives of the original
circuit is its *shape* — depth, fanout, reconvergence — which is what
drives cycle time.

Delay annotation is per stage: fixed (a number), sampled (an
``(lo, hi)`` interval drawn per stage from a seeded RNG) or explicit
(a mapping / callable from original signal names).  Margin intervals
for P-time analysis stay downstream: wrap with the nominal delay and
widen with ``repro ptime --margin`` on the extracted graph.
"""

from __future__ import annotations

import random
import re
from fractions import Fraction
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import NetlistError
from ..circuits.netlist import Netlist
from .model import LogicGate, LogicNetwork

_PLAIN_NAME = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


# ----------------------------------------------------------------------
# DAG hygiene passes
# ----------------------------------------------------------------------
def _rebuild(
    network: LogicNetwork,
    gates: Sequence[LogicGate],
    name: Optional[str] = None,
) -> LogicNetwork:
    result = LogicNetwork(name=name if name is not None else network.name)
    for signal in network.inputs:
        result.add_input(signal)
    for gate in gates:
        result.add_gate(gate.output, gate.gate_type, gate.inputs)
    for signal in network.outputs:
        result.add_output(signal)
    result.validate()
    return result


def _fresh(base: str, used: set) -> str:
    name = base
    counter = 2
    while name in used:
        name = "%s_%d" % (base, counter)
        counter += 1
    used.add(name)
    return name


def insert_buffers(
    network: LogicNetwork, signals: Sequence[str], suffix: str = "_buf"
) -> LogicNetwork:
    """Insert a ``BUF`` stage after each of ``signals``.

    Every gate reading a listed signal is rewired to read the new
    buffer instead (primary-output taps keep the original net), adding
    one level of depth — the classic pipelining/padding pass.
    """
    used = set(network.signals)
    renamed: Dict[str, str] = {}
    buffers: List[LogicGate] = []
    for signal in signals:
        if signal not in used:
            raise NetlistError("cannot buffer unknown signal %r" % signal)
        if signal in renamed:
            raise NetlistError("signal %r listed twice" % signal)
        buffered = _fresh(signal + suffix, used)
        renamed[signal] = buffered
        buffers.append(LogicGate(buffered, "BUF", (signal,)))
    gates = [
        LogicGate(
            gate.output,
            gate.gate_type,
            tuple(renamed.get(name, name) for name in gate.inputs),
        )
        for gate in network.gates
    ]
    return _rebuild(network, gates + buffers)


def split_fanout(network: LogicNetwork, max_fanout: int) -> LogicNetwork:
    """Bound every signal's fanout with a balanced ``BUF`` tree.

    Signals read by more than ``max_fanout`` gates get repeater
    buffers, recursively, until no net (original or inserted) drives
    more than ``max_fanout`` readers.  Primary-output taps do not
    count toward fanout.
    """
    if max_fanout < 2:
        raise NetlistError("max_fanout must be at least 2")
    used = set(network.signals)
    gates: List[LogicGate] = list(network.gates)
    # readers[signal] -> list of (gate index, pin index)
    while True:
        readers: Dict[str, List[Tuple[int, int]]] = {}
        for position, gate in enumerate(gates):
            for pin, name in enumerate(gate.inputs):
                readers.setdefault(name, []).append((position, pin))
        overloaded = [
            signal
            for signal in network.inputs + [g.output for g in gates]
            if len(readers.get(signal, ())) > max_fanout
        ]
        if not overloaded:
            break
        for signal in overloaded:
            sites = readers[signal]
            groups = [
                sites[start : start + max_fanout]
                for start in range(0, len(sites), max_fanout)
            ]
            for group in groups:
                repeater = _fresh(signal + "_f", used)
                gates.append(LogicGate(repeater, "BUF", (signal,)))
                for position, pin in group:
                    gate = gates[position]
                    pins = list(gate.inputs)
                    pins[pin] = repeater
                    gates[position] = LogicGate(
                        gate.output, gate.gate_type, tuple(pins)
                    )
    return _rebuild(network, gates)


# ----------------------------------------------------------------------
# Delay annotation
# ----------------------------------------------------------------------
def make_delay_fn(delay, seed: int = 0) -> Callable[[str], object]:
    """Normalise a delay spec into ``name -> delay``.

    * a number — the same fixed delay for every stage;
    * an ``(lo, hi)`` pair — per-stage delay sampled uniformly from
      the interval by a ``random.Random(seed)`` (reproducible);
    * a mapping — explicit per-signal delays, missing names get 1;
    * a callable — used as-is.
    """
    if callable(delay):
        return delay
    if isinstance(delay, Mapping):
        table = dict(delay)
        return lambda name: table.get(name, 1)
    if isinstance(delay, tuple):
        if len(delay) != 2:
            raise NetlistError("interval delay spec needs (lo, hi)")
        lo, hi = delay
        if not (0 <= lo <= hi):
            raise NetlistError("bad delay interval (%r, %r)" % (lo, hi))
        rng = random.Random(seed)
        cache: Dict[str, object] = {}

        def sampled(name: str):
            if name not in cache:
                cache[name] = lo + (hi - lo) * Fraction(
                    rng.randrange(0, 1001), 1000
                )
            return cache[name]

        return sampled
    if delay < 0:
        raise NetlistError("negative stage delay %r" % (delay,))
    return lambda name: delay


# ----------------------------------------------------------------------
# Ring wrap
# ----------------------------------------------------------------------
class _Stage:
    """One pipeline stage of the wrapped circuit."""

    __slots__ = ("key", "signal", "token", "delay", "preds", "succs")

    def __init__(self, key: str, signal: str, token: bool, delay):
        self.key = key
        self.signal = signal       # sanitised C-element output name
        self.token = token         # holds a data token initially
        self.delay = delay         # C-element pin delay
        self.preds: List[str] = []
        self.succs: List[str] = []


_OMEGA = "\x00omega"  # stage-key sentinel; never a user signal name


def _sanitize(name: str, used: set) -> str:
    if not _PLAIN_NAME.fullmatch(name):
        cleaned = re.sub(r"[^A-Za-z0-9_]", "_", name)
        name = "n" + cleaned if not _PLAIN_NAME.fullmatch(cleaned) else cleaned
        if not _PLAIN_NAME.fullmatch(name):
            name = "n_" + re.sub(r"[^A-Za-z0-9_]", "", name)
    return _fresh(name, used)


def ring_wrap(
    network: LogicNetwork,
    delay=1,
    ack_delay=1,
    infra_delay=1,
    seed: int = 0,
    name: Optional[str] = None,
) -> Netlist:
    """Close an open DAG into an autonomous self-timed ring circuit.

    Returns a closed :class:`~repro.circuits.netlist.Netlist` of
    ``2 * (stages)`` gates — one C-element plus one completion gate
    (NC, or NOT for single-consumer stages) per stage — ready for
    extraction.  ``delay`` follows :func:`make_delay_fn` and lands on
    the C-element pins of original stages; ``ack_delay`` on the
    completion gates; ``infra_delay`` on the completion stage ``w``
    and inserted hole stages.

    Signal names are sanitised (ISCAS numeric names become ``n22``
    style) and uniquified; acknowledges carry a ``_k`` suffix, holes
    ``_h``, and the completion stage is ``w``.
    """
    network.validate()
    if not network.inputs:
        raise NetlistError(
            "ring_wrap needs at least one primary input to anchor the "
            "completion loop"
        )
    delay_fn = make_delay_fn(delay, seed=seed)

    used: set = set()
    stages: Dict[str, _Stage] = {}
    order: List[str] = []

    def add_stage(key: str, base_name: str, token: bool, stage_delay) -> _Stage:
        stage = _Stage(key, _sanitize(base_name, used), token, stage_delay)
        stages[key] = stage
        order.append(key)
        return stage

    for signal in network.inputs:
        add_stage(signal, signal, False, delay_fn(signal))
    for gate in network.gates:
        add_stage(gate.output, gate.output, gate.is_dff, delay_fn(gate.output))
    omega = add_stage(_OMEGA, "w", True, infra_delay)

    def connect(source: str, target: str) -> None:
        stages[source].succs.append(target)
        stages[target].preds.append(source)

    for gate in network.gates:
        # A repeated pin (g = AND(a, a)) adds no event constraint:
        # connect each producer once.
        for source in dict.fromkeys(gate.inputs):
            connect(source, gate.output)
    # Primary outputs and dangling gates feed the completion stage;
    # the completion stage feeds every primary input.
    joined = set()
    for signal in network.outputs:
        if signal not in joined:
            joined.add(signal)
            connect(signal, _OMEGA)
    for key in order:
        if key != _OMEGA and not stages[key].succs:
            connect(key, _OMEGA)
    for signal in network.inputs:
        connect(_OMEGA, signal)

    # Hole insertion: a ring cycle needs a bubble next to each token.
    # (a) every DFF fan-in edge, (b) token -> token edges, (c) the
    # degenerate two-stage loop w -> v -> w (an input that is also an
    # output).
    def needs_hole(source: _Stage, target: _Stage) -> bool:
        if target.token and target.key != _OMEGA:
            return True                      # (a) DFF fan-in
        if source.token and target.token:
            return True                      # (b) adjacent tokens
        return (
            target.key == _OMEGA and source.key in omega.succs
        )                                    # (c) w -> v -> w

    for key in list(order):
        stage = stages[key]
        for position, succ_key in enumerate(list(stage.succs)):
            succ = stages[succ_key]
            if not needs_hole(stage, succ):
                continue
            hole = add_stage(
                "\x00hole:%s:%s" % (key, succ_key),
                succ.signal + "_h" if succ.key != _OMEGA
                else stage.signal + "_h",
                False,
                infra_delay,
            )
            stage.succs[position] = hole.key
            hole.preds.append(key)
            hole.succs.append(succ_key)
            succ.preds[succ.preds.index(key)] = hole.key

    # Emit the closed netlist: per stage one C-element and one
    # completion gate.  Initial values: tokens 1, others 0; an
    # acknowledge starts at 1 exactly when all consumers are at 0.
    wrapped = Netlist(
        name=name if name is not None else network.name + "-ring"
    )
    ack_name: Dict[str, str] = {
        key: _fresh(stages[key].signal + "_k", used) for key in order
    }
    for key in order:
        stage = stages[key]
        consumers = [stages[succ].signal for succ in stage.succs]
        if not consumers:
            raise NetlistError(
                "stage %r has no consumers after wrapping" % stage.signal
            )
        ack_initial = int(all(not stages[succ].token for succ in stage.succs))
        wrapped.add_gate(
            ack_name[key],
            "NOT" if len(consumers) == 1 else "NC",
            consumers,
            delays={signal: ack_delay for signal in consumers},
            initial=ack_initial,
        )
    for key in order:
        stage = stages[key]
        producers = [stages[pred].signal for pred in stage.preds]
        pins = producers + [ack_name[key]]
        if len(set(pins)) != len(pins):
            raise NetlistError(
                "stage %r reads a producer twice (unsupported multi-edge)"
                % stage.signal
            )
        wrapped.add_gate(
            stage.signal,
            "C" if len(pins) > 1 else "BUF",
            pins,
            delays={pin: stage.delay for pin in pins},
            initial=int(stage.token),
        )
    wrapped.validate()
    return wrapped
