#!/usr/bin/env python
"""Pool chaos smoke: the sharded service's overload behaviour stays
bounded while workers are being killed out from under it.

Spawns ``repro serve --workers 2 --router --brownout`` with shared
memory disabled (``REPRO_DISABLE_SHM=1``) and a deliberately small
admission envelope, then:

1. fills the (shared) disk cache with warm results;
2. fires a seeded 160-request storm from 10 threads — mixed
   ``interactive``/``bulk`` priorities, a slice of tight deadlines —
   while a killer thread SIGKILLs a live worker twice mid-storm;
3. keeps a saturating brownout phase running until at least one
   Monte-Carlo response comes back degraded (honestly stamped).

Invariants checked (exit 0 means all held):

* every request is answered or cleanly shed — success or structured
  429/503/504, never a hang, transport error, 500, or traceback;
* degraded responses carry ``{"degraded": {"requested", "served"}}``
  with ``floor <= served < requested`` — degradation is never silent;
* the AIMD limiter converges: every worker reports
  ``min_limit <= limit <= ceiling`` with a nonzero sample count;
* storm p99 wall time stays bounded;
* the supervisor restarted every SIGKILLed worker;
* after SIGTERM the pool exits 0 with zero tracebacks, no orphaned
  descendant processes, and no new shared-memory segments.

Usage::

    PYTHONPATH=src python scripts/pool_chaos_smoke.py
"""

from __future__ import annotations

import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
import uuid

ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.circuits.library import muller_ring_tsg  # noqa: E402
from repro.service.client import (  # noqa: E402
    DeadlineExceededError,
    ServerSaturatedError,
    ServiceClient,
    ServiceError,
    free_port,
)
from repro.service.resilience import RetryPolicy  # noqa: E402

STORM_REQUESTS = 240
STORM_THREADS = 10
RING_SIZES = (3, 4, 5, 6, 7)
P99_BOUND_S = 12.0
BROWNOUT_FLOOR = 64
BROWNOUT_SAMPLES = 4096
BROWNOUT_TIMEOUT_S = 45.0
MARKER_ENV = "REPRO_POOL_CHAOS_MARKER"


class Failure(Exception):
    pass


def check(condition, message):
    if not condition:
        raise Failure(message)


def make_client(url, seed, retries=4, on_degraded=None):
    return ServiceClient(
        url,
        timeout=25,
        retries=retries,
        retry_policy=RetryPolicy(retries=retries, base=0.05, cap=0.5,
                                 rng=random.Random(seed)),
        on_degraded=on_degraded,
    )


def worker_blocks(stats):
    return [
        block for block in stats.get("workers", {}).values()
        if isinstance(block, dict) and "admission" in block
    ]


def shm_segment_count():
    try:
        return len(os.listdir("/dev/shm"))
    except OSError:
        return 0


def reap(daemon):
    """Hard-stop the whole pool process group; best-effort output."""
    try:
        os.killpg(daemon.pid, signal.SIGKILL)
    except OSError:
        try:
            daemon.kill()
        except OSError:
            pass
    try:
        return daemon.communicate(timeout=10)[0] or ""
    except (subprocess.TimeoutExpired, ValueError, OSError):
        return ""


def descendants_with_marker(marker):
    """PIDs of live processes that inherited our marker env var."""
    found = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open("/proc/%s/environ" % entry, "rb") as handle:
                environ = handle.read()
        except OSError:
            continue
        if marker.encode("utf-8") in environ:
            found.append(int(entry))
    return found


def warm_disk_cache(url):
    client = make_client(url, seed=77)
    for index, size in enumerate(RING_SIZES):
        result = client.montecarlo(muller_ring_tsg(size), samples=100,
                                   seed=500 + index)
        check(result.get("count") == 100, "warm request truncated: %r"
              % result)
    return len(RING_SIZES)


def storm_with_kills(url):
    """Seeded storm; a killer thread SIGKILLs a live worker twice."""
    graphs = {size: muller_ring_tsg(size) for size in RING_SIZES}
    tasks = list(range(STORM_REQUESTS))
    lock = threading.Lock()
    outcomes = {}
    durations = []
    killed = []
    storm_done = threading.Event()

    def killer():
        probe = make_client(url, seed=1234, retries=2)
        strikes = 0
        while strikes < 2 and not storm_done.wait(0.75):
            with lock:
                remaining = len(tasks)
            # Only strike while the storm is still thick, so killed
            # in-flight work is actually observed by the invariants.
            if remaining < STORM_REQUESTS // 4:
                return
            try:
                pids = probe.stats()["pool"]["pids"]
            except (ServiceError, KeyError, OSError):
                continue
            victims = [
                pid for pid in pids.values() if pid not in killed
            ] or list(pids.values())
            if not victims:
                continue
            victim = victims[strikes % len(victims)]
            try:
                os.kill(victim, signal.SIGKILL)
            except OSError:
                continue
            killed.append(victim)
            strikes += 1
            # Let the supervisor restart before the second strike.
            if storm_done.wait(2.0):
                return

    def run_worker(worker_index):
        client = make_client(url, seed=worker_index)
        while True:
            with lock:
                if not tasks:
                    return
                index = tasks.pop()
            graph = graphs[RING_SIZES[index % len(RING_SIZES)]]
            tight = index % 6 == 0
            priority = ("interactive", "normal", "bulk")[index % 3]
            # 8s normal deadlines bound queue sojourn: an admitted
            # request can never wait longer than its own budget.
            timeout_ms = 50 if tight else 8000
            started = time.monotonic()
            try:
                if index % 11 == 0:
                    client.analyze(graph, timeout_ms=timeout_ms,
                                   priority=priority)
                else:
                    # Mostly-distinct seeds keep the storm computing
                    # (cache hits would finish before the first kill).
                    client.montecarlo(
                        graph, samples=400, seed=index,
                        timeout_ms=timeout_ms, priority=priority,
                    )
                outcome = "ok"
            except DeadlineExceededError:
                outcome = "deadline_504"
            except ServerSaturatedError:
                outcome = "saturated_429"
            except ServiceError as error:
                if error.status == 503:
                    outcome = "unavailable_503"
                else:
                    outcome = "UNBOUNDED:%s status=%d" % (error.kind,
                                                          error.status)
            except Exception as error:  # noqa: BLE001 — invariant boundary
                outcome = "UNBOUNDED:%s" % type(error).__name__
            finally:
                elapsed = time.monotonic() - started
            with lock:
                outcomes[outcome] = outcomes.get(outcome, 0) + 1
                durations.append(elapsed)

    threads = [
        threading.Thread(target=run_worker, args=(i,))
        for i in range(STORM_THREADS)
    ]
    chaos_thread = threading.Thread(target=killer, daemon=True)
    for thread in threads:
        thread.start()
    chaos_thread.start()
    for thread in threads:
        thread.join()
    storm_done.set()
    chaos_thread.join(5)

    check(len(durations) == STORM_REQUESTS,
          "lost requests: %d answered" % len(durations))
    unbounded = {k: v for k, v in outcomes.items()
                 if k.startswith("UNBOUNDED")}
    check(not unbounded, "unbounded failures: %r" % unbounded)
    check(outcomes.get("ok", 0) >= STORM_REQUESTS // 3,
          "too few successes: %r" % outcomes)
    durations.sort()
    p99 = durations[int(0.99 * (len(durations) - 1))]
    check(p99 < P99_BOUND_S,
          "p99 latency %.2fs exceeds %.1fs bound (outcomes %r)"
          % (p99, P99_BOUND_S, outcomes))
    check(killed, "killer thread never SIGKILLed a worker")
    return outcomes, p99, killed


def brownout_until_degraded(url):
    """Saturate /montecarlo until a degraded-stamped response appears."""
    lock = threading.Lock()
    stamps = []

    def on_degraded(stamp):
        with lock:
            stamps.append(stamp)

    stop = threading.Event()
    graph = muller_ring_tsg(6)
    counter = [0]

    def pound(worker_index):
        client = make_client(url, seed=9000 + worker_index, retries=2,
                             on_degraded=on_degraded)
        while not stop.is_set():
            with lock:
                counter[0] += 1
                seed = counter[0]
            try:
                client.montecarlo(graph, samples=BROWNOUT_SAMPLES,
                                  seed=seed, timeout_ms=20000,
                                  priority="bulk")
            except ServiceError:
                continue

    threads = [
        threading.Thread(target=pound, args=(i,), daemon=True)
        for i in range(12)
    ]
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + BROWNOUT_TIMEOUT_S
    while time.monotonic() < deadline:
        with lock:
            if stamps:
                break
        time.sleep(0.25)
    stop.set()
    for thread in threads:
        thread.join(10)
    check(stamps, "no degraded response within %.0fs of saturation"
          % BROWNOUT_TIMEOUT_S)
    for stamp in stamps:
        check(
            isinstance(stamp, dict)
            and stamp.get("requested") == BROWNOUT_SAMPLES
            and BROWNOUT_FLOOR <= stamp.get("served", 0)
            < BROWNOUT_SAMPLES,
            "malformed degraded stamp: %r" % stamp,
        )
    return len(stamps)


def check_limiter_and_health(stats, killed):
    blocks = worker_blocks(stats)
    check(blocks, "no worker blocks in router /stats: %r" % sorted(stats))
    for block in blocks:
        limiter = (block.get("overload") or {}).get("limiter")
        check(limiter is not None,
              "worker %r reports no adaptive limiter" % block.get("worker_id"))
        check(
            limiter["min_limit"] <= limiter["limit"] <= limiter["ceiling"],
            "limiter diverged: %r" % limiter,
        )
        check(limiter["samples"] > 0, "limiter saw no samples: %r" % limiter)
    restarts = stats["pool"]["restarts"]
    check(sum(restarts.values()) >= len(set(killed)),
          "supervisor restarts %r do not cover %d kills"
          % (restarts, len(set(killed))))
    check("health" in stats, "router /stats lacks the health block")
    shm_fallbacks = sum(
        ((block.get("kernel") or {}).get("shm") or {}).get("fallback", 0)
        for block in blocks
    )
    return {str(k): v for k, v in restarts.items()}, shm_fallbacks


def main() -> int:
    cache_dir = tempfile.mkdtemp(prefix="repro-pool-chaos-")
    marker = "pool-chaos-%s" % uuid.uuid4().hex
    port = free_port()
    url = "http://127.0.0.1:%d" % port
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    env["REPRO_DISABLE_SHM"] = "1"
    env[MARKER_ENV] = marker
    shm_before = shm_segment_count()
    daemon = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port), "--quiet",
            "--workers", "2", "--router",
            "--brownout", "--brownout-floor", str(BROWNOUT_FLOOR),
            "--disk-cache", "--cache-dir", cache_dir,
            "--max-inflight", "2", "--max-queue-depth", "8",
            "--kernel-executor", "process", "--kernel-workers", "2",
            "--request-timeout", "20",
            "--drain-timeout", "10",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        start_new_session=True,
    )
    out = ""
    try:
        client = make_client(url, seed=0)
        check(client.wait_until_ready(timeout=60),
              "pool did not come up within 60s")

        warmed = warm_disk_cache(url)
        print("pool-chaos: %d results warmed onto the disk tier" % warmed)

        outcomes, p99, killed = storm_with_kills(url)
        print("pool-chaos: storm outcomes %r, p99 %.2fs, SIGKILLed pids %r"
              % (outcomes, p99, killed))

        degraded = brownout_until_degraded(url)
        print("pool-chaos: %d honestly-stamped degraded responses under "
              "saturation" % degraded)

        # Give the supervisor a beat to finish any in-progress restart
        # before reading the final counters.
        stats = None
        for _ in range(40):
            try:
                stats = client.stats()
                if len(worker_blocks(stats)) >= 2:
                    break
            except ServiceError:
                pass
            time.sleep(0.25)
        check(stats is not None, "router /stats unreachable at the end")
        restarts, shm_fallbacks = check_limiter_and_health(stats, killed)
        print("pool-chaos: limiter converged on every worker, restarts %r, "
              "shm fallbacks %d (shm disabled)" % (restarts, shm_fallbacks))

        daemon.send_signal(signal.SIGTERM)
        out, _ = daemon.communicate(timeout=60)
        check(daemon.returncode == 0,
              "pool exit code %d" % daemon.returncode)
        check("shut down cleanly" in out, "missing clean-shutdown message")

        for _ in range(50):  # descendants may take a beat to reap
            orphans = descendants_with_marker(marker)
            if not orphans:
                break
            time.sleep(0.2)
        check(not orphans, "orphaned processes outlived the pool: %r"
              % orphans)
        shm_after = shm_segment_count()
        check(shm_after <= shm_before,
              "shared-memory segments leaked: %d -> %d"
              % (shm_before, shm_after))
    except Failure as failure:
        print("FAIL: %s" % failure, file=sys.stderr)
        if daemon.poll() is None:
            out = reap(daemon)
        print("--- pool output ---\n%s" % out, file=sys.stderr)
        return 1
    except Exception as error:  # noqa: BLE001 — smoke harness boundary
        print("FAIL: %s: %s" % (type(error).__name__, error), file=sys.stderr)
        if daemon.poll() is None:
            out = reap(daemon)
        print("--- pool output ---\n%s" % out, file=sys.stderr)
        return 1
    finally:
        if daemon.poll() is None:
            reap(daemon)
        shutil.rmtree(cache_dir, ignore_errors=True)

    if "Traceback" in out:
        print("FAIL: traceback in pool log\n%s" % out, file=sys.stderr)
        return 1
    print("pool chaos smoke: every invariant held (answered-or-shed, "
          "honest degradation, limiter converged, no orphans, no shm leaks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
