"""E4/E10/E11 — asymptotic delta sequences (Section II, VIII-C, Figure 4).

* E4: the Section II sequence delta(a+_i) = 2, 6 1/2, 7 2/3, ... -> 10;
* E10: the Section VIII-C infinite b+0-initiated sequence
  8, 9, 9 1/3, 9 1/2, 9 3/5, ... -> 10, never reaching it;
* E11: Figure 4's qualitative contrast — an event on a critical cycle
  reaches the cycle time within the cut-set bound and keeps touching
  it, an event off the critical cycle converges strictly from below.
"""

from fractions import Fraction

import pytest

from conftest import emit
from repro.analysis import delta_series, render_series
from repro.core import average_occurrence_distances


def test_e4_section_ii_sequence(benchmark, oscillator):
    sequence = benchmark(average_occurrence_distances, oscillator, "a+", 5)
    assert sequence == [
        2, Fraction(13, 2), Fraction(23, 3), Fraction(33, 4),
        Fraction(43, 5), Fraction(53, 6),
    ]
    emit(
        "E4  Section II: delta(a+_i) sequence "
        "(paper: 2, 6 1/2, 7 2/3, 8 1/4, 8 3/5, 8 5/6 -> 10)",
        ", ".join(str(value) for value in sequence) + ", ... -> 10",
    )


def test_e10_infinite_b_sequence(benchmark, oscillator):
    series = benchmark(delta_series, oscillator, "b+", 120)
    values = [delta for _, delta in series.points]
    assert values[:5] == [8, 9, Fraction(28, 3), Fraction(19, 2), Fraction(48, 5)]
    assert not series.reaches_cycle_time
    assert max(values) < 10
    emit(
        "E10 Section VIII-C: delta_b+0(b+_i) "
        "(paper: 8, 9, 9 1/3, 9 1/2, 9 3/5, ... -> 10, never reached)",
        ", ".join(str(v) for v in values[:6])
        + ", ...  sup = %s < 10" % max(values),
    )


def test_e11_figure4_on_critical(benchmark, oscillator):
    series = benchmark(delta_series, oscillator, "a+", 14)
    assert series.on_critical_cycle
    assert series.reaches_cycle_time
    emit(
        "E11 Figure 4 (left): event ON a critical cycle reaches lambda",
        series.verdict() + "\n" + render_series(series),
    )


def test_e11_figure4_off_critical(benchmark, oscillator):
    series = benchmark(delta_series, oscillator, "b+", 14)
    assert not series.on_critical_cycle
    assert not series.reaches_cycle_time
    emit(
        "E11 Figure 4 (right): event OFF critical cycles converges from below",
        series.verdict() + "\n" + render_series(series),
    )


def test_e11_figure4_oscillating_series(benchmark, muller_ring_graph):
    """The ring shows the non-monotone 'oscillating' convergence the
    paper warns about in Section II."""
    series = benchmark(delta_series, muller_ring_graph, "s0+", 12)
    values = [delta for _, delta in series.points]
    rises = any(b > a for a, b in zip(values, values[1:]))
    falls = any(b < a for a, b in zip(values, values[1:]))
    assert rises and falls  # genuinely oscillates
    assert series.reaches_cycle_time
    emit(
        "E11 Figure 4 (ring): oscillating asymptotic behaviour",
        ", ".join(str(v) for v in values),
    )
