"""The analysis daemon: JSON over HTTP, stdlib only.

``repro serve`` (or :func:`serve` programmatically) runs a
:class:`http.server.ThreadingHTTPServer` exposing

* ``POST /analyze`` — cycle time / critical cycles of a posted graph;
* ``POST /montecarlo`` — λ distribution under random delay variation;
* ``POST /ptime`` — P-time consistency / λ-range / trajectory synthesis
  for interval-bound graphs (``kind: ptime-signal-graph`` documents);
* ``POST /netlist`` — the real-circuit front end: parse a ``.bench``/
  structural-Verilog/``logic-network`` source, ring-wrap it into an
  autonomous self-timed circuit, extract the Timed Signal Graph
  (structural path for large instances) and return its cycle time;
* ``GET /stats`` — request counters, cache hit/miss/eviction counters,
  coalescer, admission-queue and fault-injection statistics;
* ``GET /healthz`` — liveness probe;
* ``GET /readyz`` — readiness probe: 503 while draining or saturated,
  200 otherwise (distinct from liveness so a load balancer can stop
  routing before shutdown).

Request graphs use the standard JSON document format of
:mod:`repro.io.json_io` under a ``"graph"`` key.  Every response is
JSON; errors are *structured* —
``{"error": {"type": ..., "message": ...}}`` with a meaningful HTTP
status — and a traceback is never written to the wire.  Exact cycle
times travel as tagged numbers (``{"fraction": [n, d]}``) so the
typed client round-trips them losslessly.

Bounded failure behaviour (:mod:`repro.service.resilience`):

* every request carries a server-side deadline (``timeout_ms`` field
  or ``X-Request-Timeout-Ms`` header; default ``--request-timeout``),
  checked before compile, before kernel dispatch and between batch
  chunks — an exhausted budget is a structured **504**, never a hung
  thread;
* a bounded admission queue (``--max-inflight`` computing,
  ``--max-queue-depth`` waiting) sheds excess load with **429** +
  ``Retry-After`` instead of letting ``ThreadingHTTPServer`` pile up
  unbounded threads;
* POSTs carrying an ``X-Idempotency-Key`` header replay the stored
  byte-identical response on retry instead of recomputing;
* an AIMD :class:`~repro.service.overload.AdaptiveLimiter` (on by
  default, ``--no-adaptive`` to pin the static limit) lowers the
  effective in-flight limit when observed latency inflates past the
  no-queueing floor; a ``priority`` request field
  (``interactive``/``normal``/``bulk``) orders the wait queue, and
  CoDel-style shedding keeps queue sojourn bounded;
* ``--brownout`` lets ``/montecarlo`` degrade ``samples`` toward
  ``--brownout-floor`` under sustained pressure, stamping
  ``{"degraded": {"requested": S, "served": S'}}`` — never silently;
* ``--chaos SPEC`` arms the deterministic fault-injection harness
  (:mod:`repro.service.faults`) for resilience testing.

Work sharing: ``/analyze`` and ``/montecarlo`` responses are memoised
in the process-wide result cache keyed by content hash + parameters;
compiled topologies are shared through
:func:`~repro.service.cache.shared_compiled_graph`; and concurrent
λ-only Monte-Carlo requests over one topology are merged into single
batched kernel calls by the :class:`~repro.service.queue.RequestCoalescer`.

The daemon shuts down cleanly on SIGINT/SIGTERM: the listener closes,
in-flight requests *drain* (finish writing their responses) for up to
``--drain-timeout`` seconds, the coalescer drains its queue, and
``serve`` returns 0.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import sys
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..analysis.montecarlo import (
    monte_carlo_cycle_time,
    normal_spread,
    sample_delay_matrix,
    uniform_spread,
)
from ..core.cycle_time import compute_cycle_time
from ..core.errors import SignalGraphError
from ..core.events import event_label
from ..core.kernel import KERNELS, shm_stats
from ..core.signal_graph import TimedSignalGraph
from ..io.json_io import (
    decode_number,
    encode_number,
    graph_from_dict,
    ptime_graph_from_dict,
)
from ..obs import STATE as _obs
from ..obs.logging import get_logger
from ..obs.metrics import DEFAULT_BUCKETS, Family, registry as _registry
from ..obs.tracing import (
    ChromeTraceExporter,
    current_traceparent,
    parse_traceparent,
    tracer as _tracer,
)
from ..ptime import (
    check_consistency,
    lambda_range,
    synthesize_trajectory,
    verify_trajectory,
)
from ..ptime.model import PTimeSignalGraph
from . import faults
from .cache import (
    CacheStats,
    LRUCache,
    compile_cache,
    result_cache,
    service_cache_stats,
)
from .hashing import (
    analysis_key,
    bound_token,
    delay_token,
    netlist_analysis_key,
    netlist_source_hash,
    ptime_analysis_key,
)
from .overload import AdaptiveLimiter, BrownoutController
from .queue import RequestCoalescer
from .resilience import (
    PRIORITIES,
    AdmissionQueue,
    Deadline,
    DeadlineExceeded,
    Saturated,
)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8177


class RequestError(Exception):
    """A client-side error with an HTTP status and a stable type name."""

    def __init__(self, message: str, status: int = 400, kind: str = "BadRequest"):
        super().__init__(message)
        self.status = status
        self.kind = kind


@dataclass
class ServiceConfig:
    """Daemon knobs (all reachable from ``repro serve`` flags)."""

    host: str = DEFAULT_HOST
    port: int = DEFAULT_PORT
    request_timeout: float = 30.0    # socket timeout *and* default deadline
    max_body_bytes: int = 16 * 1024 * 1024
    max_samples: int = 100_000       # per Monte-Carlo request
    max_periods: int = 10_000
    linger_ms: float = 2.0           # coalescer window
    max_batch_samples: int = 65536
    max_inflight: int = 8            # admission: concurrent compute cap
    max_queue_depth: int = 32        # admission: bounded wait queue
    retry_after_s: float = 0.25      # Retry-After hint on 429/503
    drain_timeout: float = 10.0      # SIGTERM: wait for in-flight writes
    idempotency_entries: int = 256   # replay cache for keyed retries
    chaos: Optional[str] = None      # fault-injection spec (faults.py)
    quiet: bool = False
    metrics: bool = True             # serve /metrics + record histograms
    trace_export: Optional[str] = None  # Chrome trace_event JSON path
    reuse_port: bool = False         # SO_REUSEPORT (multi-worker sharing)
    worker_id: Optional[int] = None  # set by the pool supervisor
    kernel_executor: str = "thread"  # batch-sweep chunk executor
    kernel_workers: int = 0          # 0 = no chunk fan-out
    kernel_batch_size: Optional[int] = None  # chunk size override
    batch_kernel: Optional[str] = None  # auto/batch/fused/numba tier
    adaptive: bool = True            # AIMD limiter under --max-inflight
    brownout: bool = False           # degrade /montecarlo under pressure
    brownout_floor: int = 64         # smallest degraded sample count
    codel_target_ms: float = 50.0    # queue sojourn target (CoDel)
    codel_interval_ms: float = 100.0  # CoDel observation interval
    hedge_ms: float = 0.0            # router: hedge idempotent requests


class AnalysisService:
    """Protocol-independent request handlers backing the HTTP layer."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.results = result_cache()
        # One reentrant lock shared by every component's counter block:
        # a /stats or /metrics scrape takes it once and reads all
        # counters from the same instant (no shed count from mid-storm
        # paired with a hit count from before it).
        self.stats_lock = threading.RLock()
        self.coalescer = RequestCoalescer(
            linger_s=self.config.linger_ms / 1000.0,
            max_batch_samples=self.config.max_batch_samples,
            kernel_executor=self.config.kernel_executor,
            kernel_workers=self.config.kernel_workers,
            kernel_batch_size=self.config.kernel_batch_size,
            kernel=self.config.batch_kernel,
        )
        self.coalescer.stats.share_lock(self.stats_lock)
        # The old static knobs survive as hard bounds: the limiter may
        # pull the effective in-flight limit *below* --max-inflight,
        # never above it.
        self.limiter: Optional[AdaptiveLimiter] = (
            AdaptiveLimiter(ceiling=self.config.max_inflight)
            if self.config.adaptive else None
        )
        self.brownout: Optional[BrownoutController] = (
            BrownoutController(floor=self.config.brownout_floor)
            if self.config.brownout else None
        )
        self.admission = AdmissionQueue(
            max_inflight=self.config.max_inflight,
            max_queue_depth=self.config.max_queue_depth,
            retry_after=self.config.retry_after_s,
            lock=self.stats_lock,
            limiter=self.limiter,
            codel_target_ms=self.config.codel_target_ms,
            codel_interval_ms=self.config.codel_interval_ms,
        )
        self.idempotency = LRUCache(max_entries=self.config.idempotency_entries)
        self.counters = CacheStats(lock=self.stats_lock)
        compile_cache().stats.share_lock(self.stats_lock)
        result_cache().stats.share_lock(self.stats_lock)
        self.draining = False
        self.faults: Optional[faults.FaultInjector] = None
        if self.config.chaos:
            self.faults = faults.install(faults.FaultInjector.parse(self.config.chaos))
            self.faults.share_lock(self.stats_lock)
        self.started = time.time()
        self.trace_exporter: Optional[ChromeTraceExporter] = None
        if self.config.trace_export:
            self.trace_exporter = ChromeTraceExporter(self.config.trace_export)
            _tracer().add_exporter(self.trace_exporter)
            _obs.tracing = True
        if self.config.metrics:
            _obs.metrics = True
            _registry().register_callback(self._collect_families)
            if self.config.worker_id is not None:
                # Every series this worker renders carries its id, so a
                # router-merged multi-worker scrape never collides.
                _registry().set_constant_labels(worker=self.config.worker_id)

    def close(self) -> None:
        self.coalescer.close()
        if self.faults is not None and faults.active() is self.faults:
            faults.clear()
        if self.config.metrics:
            _registry().unregister_callback(self._collect_families)
        if self.trace_exporter is not None:
            _tracer().remove_exporter(self.trace_exporter)
            try:
                events = self.trace_exporter.flush()
            except OSError as error:
                get_logger("repro.service").error(
                    "failed to write trace export",
                    path=self.trace_exporter.path,
                    error=str(error),
                )
            else:
                get_logger("repro.service").info(
                    "trace export written",
                    path=self.trace_exporter.path,
                    events=events,
                )
            self.trace_exporter = None

    # ------------------------------------------------------------------
    # metrics bridge: existing counter blocks -> Prometheus families
    # ------------------------------------------------------------------
    def _collect_families(self):
        """Snapshot every component counter block at scrape time.

        Holding :attr:`stats_lock` across the whole collection makes
        the scrape atomic, exactly like :meth:`handle_stats`.
        """
        with self.stats_lock:
            service = self.counters.snapshot()
            cache = service_cache_stats()
            coalescer = self.coalescer.stats.snapshot()
            admission = self.admission.snapshot()
            injected = (
                {} if self.faults is None
                else self.faults.snapshot()["injected"]
            )
            limiter = None if self.limiter is None else self.limiter.snapshot()
            brownout = (
                None if self.brownout is None else self.brownout.snapshot()
            )
        families = [
            Family(
                "repro_service_events_total",
                "Service-level request/outcome counters.",
                "counter",
                [({"event": name}, value) for name, value in sorted(service.items())],
            ),
            Family(
                "repro_cache_events_total",
                "Hit/miss/eviction/degraded counters per cache tier.",
                "counter",
                [
                    ({"cache": cache_name, "event": name}, value)
                    for cache_name, block in sorted(cache.items())
                    for name, value in sorted(block.items())
                    if isinstance(value, int) and not isinstance(value, bool)
                    and name not in ("entries", "max_entries")
                ],
            ),
            Family(
                "repro_cache_entries",
                "Live in-memory entries per cache.",
                "gauge",
                [
                    ({"cache": cache_name}, block.get("entries", 0))
                    for cache_name, block in sorted(cache.items())
                ],
            ),
            Family(
                "repro_cache_degraded",
                "1 while a cache's disk tier is tripped to memory-only.",
                "gauge",
                [
                    ({"cache": cache_name}, 1.0 if block.get("degraded") else 0.0)
                    for cache_name, block in sorted(cache.items())
                ],
            ),
            Family(
                "repro_coalescer_events_total",
                "Coalescer request/batch/expiry counters.",
                "counter",
                [
                    ({"event": name}, value)
                    for name, value in sorted(coalescer.items())
                    if name != "max_batch_requests"
                ],
            ),
            Family(
                "repro_coalescer_max_batch_requests",
                "Largest request count merged into one batch.",
                "gauge",
                [({}, coalescer.get("max_batch_requests", 0))],
            ),
            Family(
                "repro_admission_inflight",
                "Requests currently computing.",
                "gauge",
                [({}, admission.get("inflight", 0))],
            ),
            Family(
                "repro_admission_queue_depth",
                "Requests waiting for an admission slot.",
                "gauge",
                [({}, admission.get("waiting", 0))],
            ),
            Family(
                "repro_admission_events_total",
                "Admission outcomes (admitted/shed/expired_in_queue/"
                "codel_shed/displaced).",
                "counter",
                [
                    ({"event": name}, value)
                    for name, value in sorted(admission.items())
                    if name in ("admitted", "shed", "expired_in_queue",
                                "codel_shed", "displaced")
                ],
            ),
            Family(
                "repro_admission_limit",
                "Effective in-flight limit (adaptive, <= --max-inflight).",
                "gauge",
                [({}, admission.get("limit", 0))],
            ),
            Family(
                "repro_fault_injections_total",
                "Deterministic chaos injections per hook.",
                "counter",
                [({"hook": name}, value) for name, value in sorted(injected.items())],
            ),
            Family(
                "repro_service_uptime_seconds",
                "Seconds since the daemon started.",
                "gauge",
                [({}, time.time() - self.started)],
            ),
        ]
        if limiter is not None:
            families.append(Family(
                "repro_overload_limit",
                "AIMD concurrency limit (within [min_limit, ceiling]).",
                "gauge",
                [({}, limiter["limit"])],
            ))
            families.append(Family(
                "repro_overload_events_total",
                "Adaptive-limiter control actions.",
                "counter",
                [
                    ({"event": name}, limiter[name])
                    for name in ("samples", "increases", "decreases",
                                 "timeouts")
                ],
            ))
        if brownout is not None:
            families.append(Family(
                "repro_brownout_level",
                "Current Monte-Carlo degradation level (0 = full fidelity).",
                "gauge",
                [({}, brownout["level"])],
            ))
            families.append(Family(
                "repro_brownout_events_total",
                "Brownout degradation counters.",
                "counter",
                [
                    ({"event": name}, brownout[name])
                    for name in ("degraded_requests", "samples_saved",
                                 "level_ups", "level_downs")
                ],
            ))
        return families

    # ------------------------------------------------------------------
    def note_pressure(self, forced: Optional[bool] = None) -> None:
        """Feed the brownout controller one pressure reading.

        ``forced=True`` records unambiguous pressure (a shed request);
        otherwise pressure is inferred from a non-empty wait queue.
        """
        if self.brownout is None:
            return
        pressure = (
            forced if forced is not None else self.admission.waiting() > 0
        )
        self.brownout.update(pressure)

    # ------------------------------------------------------------------
    # decoding helpers
    # ------------------------------------------------------------------
    def _decode_graph(self, payload: Dict[str, Any]) -> TimedSignalGraph:
        document = payload.get("graph")
        if not isinstance(document, dict):
            raise RequestError("request must carry a 'graph' document")
        try:
            return graph_from_dict(document)
        except SignalGraphError as error:
            raise RequestError(str(error), kind=type(error).__name__)

    @staticmethod
    def _int_field(payload, name, default, low, high) -> int:
        value = payload.get(name, default)
        if value is None:
            return default
        if not isinstance(value, int) or isinstance(value, bool):
            raise RequestError("'%s' must be an integer" % name)
        if not low <= value <= high:
            raise RequestError(
                "'%s' must be in [%d, %d], got %d" % (name, low, high, value)
            )
        return value

    def deadline_for(
        self, payload: Optional[Dict[str, Any]], header_ms: Optional[str]
    ) -> Deadline:
        """The request's time budget: field, header, or server default."""
        timeout_ms: Optional[float] = None
        if payload is not None and payload.get("timeout_ms") is not None:
            raw = payload["timeout_ms"]
            if isinstance(raw, bool) or not isinstance(raw, (int, float)):
                raise RequestError("'timeout_ms' must be a number")
            timeout_ms = float(raw)
        elif header_ms is not None:
            try:
                timeout_ms = float(header_ms)
            except ValueError:
                raise RequestError("X-Request-Timeout-Ms must be a number")
        if timeout_ms is None:
            timeout_ms = self.config.request_timeout * 1000.0
        if timeout_ms <= 0:
            raise RequestError("'timeout_ms' must be positive")
        return Deadline.after_ms(timeout_ms)

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def handle_analyze(
        self, payload: Dict[str, Any], deadline: Optional[Deadline] = None
    ) -> Dict[str, Any]:
        deadline = deadline or self.deadline_for(payload, None)
        graph = self._decode_graph(payload)
        periods = payload.get("periods")
        if periods is not None:
            periods = self._int_field(
                payload, "periods", None, 1, self.config.max_periods
            )
        kernel = payload.get("kernel", "auto")
        if kernel not in KERNELS:
            raise RequestError(
                "unknown kernel %r (choose from %s)" % (kernel, ", ".join(KERNELS))
            )
        backtrack = bool(payload.get("backtrack", True))
        key = analysis_key(
            graph, "analyze", periods=periods, kernel=kernel, backtrack=backtrack
        )
        cached = self.results.get(key)
        if cached is not None:
            return dict(cached, cached=True)
        deadline.check("pre-compile")
        result = compute_cycle_time(
            graph,
            periods=periods,
            kernel=kernel,
            backtrack=backtrack,
            keep_simulations=False,
        )
        response = {
            "graph": graph.name,
            "events": graph.num_events,
            "arcs": graph.num_arcs,
            "cycle_time": encode_number(result.cycle_time),
            "cycle_time_float": float(result.cycle_time),
            "critical_cycles": [
                {
                    "events": [event_label(e) for e in cycle.events],
                    "length": encode_number(cycle.length),
                    "tokens": cycle.tokens,
                }
                for cycle in result.critical_cycles
            ],
            "border_events": [event_label(e) for e in result.border_events],
            "periods": result.periods,
            "distances": len(result.distances),
        }
        self.results.put(key, response)
        return dict(response, cached=False)

    def handle_montecarlo(
        self, payload: Dict[str, Any], deadline: Optional[Deadline] = None
    ) -> Dict[str, Any]:
        deadline = deadline or self.deadline_for(payload, None)
        graph = self._decode_graph(payload)
        samples = self._int_field(
            payload, "samples", 1000, 1, self.config.max_samples
        )
        seed = self._int_field(payload, "seed", 0, -(2 ** 62), 2 ** 62)
        bins = self._int_field(payload, "bins", 0, 0, 1000)
        track = bool(payload.get("track_criticality", False))
        distribution = payload.get("distribution", "uniform")
        if distribution not in ("uniform", "normal"):
            raise RequestError(
                "unknown distribution %r (uniform or normal)" % (distribution,)
            )
        spread = payload.get("spread", 0.1)
        if isinstance(spread, bool) or not isinstance(spread, (int, float)):
            raise RequestError("'spread' must be a number")
        spread = float(spread)
        if not 0.0 <= spread < 1.0:
            raise RequestError("'spread' must be in [0, 1), got %r" % spread)
        key = analysis_key(
            graph,
            "montecarlo",
            samples=samples,
            seed=seed,
            spread=spread,
            distribution=distribution,
            track_criticality=track,
            bins=bins,
        )
        cached = self.results.get(key)
        if cached is not None:
            # A cached full-fidelity answer always beats degrading.
            return dict(cached, cached=True)
        requested = samples
        if self.brownout is not None:
            # Brownout: under sustained pressure serve a smaller,
            # honestly-labelled sweep instead of shedding or timing
            # out.  Never silent (`degraded` stamp) and never cached
            # under the full-fidelity key.
            samples = self.brownout.degrade(requested)
        degraded = samples < requested
        sampler = (
            uniform_spread(spread) if distribution == "uniform"
            else normal_spread(spread)
        )
        deadline.check("pre-compile")
        if track:
            # Criticality attribution backtracks per sample; no
            # cross-request batching to exploit.
            deadline.check("pre-dispatch")
            outcome = monte_carlo_cycle_time(
                graph, sampler, samples=samples, seed=seed,
                track_criticality=True,
            )
            values = outcome.samples
            criticality = [
                {
                    "source": event_label(pair[0]),
                    "target": event_label(pair[1]),
                    "probability": probability,
                }
                for pair, probability in outcome.top_critical_arcs(10)
            ]
        else:
            # λ-only distribution: sample here, let the coalescer merge
            # this sweep with concurrent same-topology requests.  The
            # deadline rides along so a lingering request is evicted
            # (504) instead of swept for a caller that gave up.
            rng = np.random.default_rng(seed)
            matrix = sample_delay_matrix(graph, sampler, samples, rng)
            deadline.check("pre-dispatch")
            try:
                values = self.coalescer.run(
                    graph, matrix,
                    deadline=deadline,
                    timeout=max(0.05, deadline.remaining()) + 1.0,
                )
            except FutureTimeoutError:
                raise DeadlineExceeded("kernel-sweep", deadline.timeout_s)
            criticality = None
        response = {
            "graph": graph.name,
            "count": int(len(values)),
            "seed": seed,
            "spread": spread,
            "distribution": distribution,
            "mean": float(np.mean(values)),
            "std": float(np.std(values)),
            "min": float(np.min(values)),
            "max": float(np.max(values)),
            "quantiles": {
                "p05": float(np.quantile(values, 0.05)),
                "p50": float(np.quantile(values, 0.50)),
                "p95": float(np.quantile(values, 0.95)),
            },
        }
        if criticality is not None:
            response["criticality"] = criticality
        if bins:
            counts, edges = np.histogram(values, bins=bins)
            response["histogram"] = [
                [float(edges[i]), float(edges[i + 1]), int(counts[i])]
                for i in range(len(counts))
            ]
        if degraded:
            response["degraded"] = {
                "requested": requested, "served": samples,
            }
            return dict(response, cached=False)
        self.results.put(key, response)
        return dict(response, cached=False)

    def _decode_ptime_graph(self, payload: Dict[str, Any]) -> PTimeSignalGraph:
        document = payload.get("graph")
        if not isinstance(document, dict):
            raise RequestError("request must carry a 'graph' document")
        try:
            return ptime_graph_from_dict(document)
        except SignalGraphError as error:
            raise RequestError(str(error), kind=type(error).__name__)

    @staticmethod
    def _violation_payload(violation) -> Dict[str, Any]:
        return {
            "alpha": violation.alpha,
            "beta": encode_number(violation.beta),
            "condition": violation.condition(),
            "edges": [
                {
                    "kind": edge.kind,
                    "source": event_label(edge.arc[0]),
                    "target": event_label(edge.arc[1]),
                    "alpha": edge.alpha,
                    "beta": encode_number(edge.beta),
                }
                for edge in violation.edges
            ],
        }

    def handle_ptime(
        self, payload: Dict[str, Any], deadline: Optional[Deadline] = None
    ) -> Dict[str, Any]:
        """P-time analysis: consistency / lambda-range / trajectory.

        ``mode`` selects the question; ``rate`` (trajectory mode,
        tagged number) picks a specific rate instead of the smallest
        feasible one, and ``horizon`` bounds the verification replay.
        Responses are memoised per content hash + parameters like
        ``/analyze``, and the P-time address splits topology from
        bounds so compiled topologies survive bound rebinds.
        """
        deadline = deadline or self.deadline_for(payload, None)
        mode = payload.get("mode", "check")
        if mode not in ("check", "lambda-range", "trajectory"):
            raise RequestError(
                "unknown mode %r (check, lambda-range or trajectory)" % (mode,)
            )
        ptg = self._decode_ptime_graph(payload)
        horizon = self._int_field(payload, "horizon", 8, 1, 10_000)
        rate = payload.get("rate")
        if rate is not None:
            try:
                rate = decode_number(rate)
            except SignalGraphError:
                raise RequestError("'rate' must be a tagged number")
        key = ptime_analysis_key(
            ptg,
            "ptime",
            mode=mode,
            horizon=horizon,
            rate=None if rate is None else bound_token(rate),
        )
        cached = self.results.get(key)
        if cached is not None:
            return dict(cached, cached=True)
        deadline.check("pre-analysis")
        response: Dict[str, Any] = {
            "graph": ptg.name,
            "mode": mode,
            "events": ptg.num_events,
            "arcs": ptg.num_arcs,
            "exact": ptg.is_exact,
        }
        if mode == "check":
            result = check_consistency(ptg)
            response["consistent"] = result.consistent
            response["iterations"] = result.iterations
            if result.consistent:
                response["rate"] = encode_number(result.rate)
                response["offsets"] = {
                    event_label(event): encode_number(value)
                    for event, value in result.offsets.items()
                }
            else:
                response["violation"] = self._violation_payload(result.violation)
        elif mode == "lambda-range":
            result = lambda_range(ptg)
            response["consistent"] = result.consistent
            response["iterations"] = result.iterations
            if result.consistent:
                response["lam_min"] = encode_number(result.lam_min)
                response["lam_max"] = (
                    None if result.lam_max is None
                    else encode_number(result.lam_max)
                )
                response["unbounded"] = result.unbounded
            else:
                response["violation"] = self._violation_payload(result.violation)
        else:
            window = lambda_range(ptg)
            if not window.consistent:
                response["consistent"] = False
                response["violation"] = self._violation_payload(window.violation)
            else:
                if rate is not None and not window.contains(rate):
                    raise RequestError(
                        "rate %s outside the feasible interval %s"
                        % (rate, window)
                    )
                deadline.check("pre-synthesis")
                trajectory = synthesize_trajectory(
                    ptg, rate=rate, validate=False
                )
                verdict = verify_trajectory(ptg, trajectory, horizon=horizon)
                response["consistent"] = True
                response["rate"] = encode_number(trajectory.rate)
                response["offsets"] = {
                    event_label(event): encode_number(value)
                    for event, value in trajectory.offsets.items()
                }
                response["verified"] = verdict.ok
                response["horizon"] = verdict.horizon
                response["induced_delays"] = [
                    {
                        "source": event_label(pair[0]),
                        "target": event_label(pair[1]),
                        "delay": encode_number(value),
                    }
                    for pair, value in trajectory.induced_delays(ptg).items()
                ]
        self.results.put(key, response)
        return dict(response, cached=False)

    @staticmethod
    def _netlist_delay_field(payload: Dict[str, Any], name: str, default):
        """A delay knob: tagged number, or ``[lo, hi]`` for sampling."""
        value = payload.get(name, default)
        if isinstance(value, list):
            if len(value) != 2:
                raise RequestError(
                    "'%s' interval must be a [lo, hi] pair" % name
                )
            try:
                return (decode_number(value[0]), decode_number(value[1]))
            except SignalGraphError:
                raise RequestError(
                    "'%s' interval endpoints must be numbers" % name
                )
        if isinstance(value, bool):
            raise RequestError("'%s' must be a number" % name)
        try:
            return decode_number(value)
        except SignalGraphError:
            raise RequestError(
                "'%s' must be a number, a {'fraction': [n, d]} tag or a "
                "[lo, hi] pair" % name
            )

    def handle_netlist(
        self, payload: Dict[str, Any], deadline: Optional[Deadline] = None
    ) -> Dict[str, Any]:
        """The real-circuit pipeline: parse -> wrap -> extract -> analyze."""
        from ..netlist.pipeline import (
            EXTRACTION_MODES,
            FORMATS,
            analyze_source,
        )

        deadline = deadline or self.deadline_for(payload, None)
        source = payload.get("source")
        if not isinstance(source, str) or not source.strip():
            raise RequestError("'source' must be non-empty circuit text")
        fmt = payload.get("format", "auto")
        if fmt not in FORMATS:
            raise RequestError(
                "unknown format %r (choose from %s)"
                % (fmt, ", ".join(FORMATS))
            )
        name = payload.get("name", "netlist")
        if not isinstance(name, str):
            raise RequestError("'name' must be a string")
        delay = self._netlist_delay_field(payload, "delay", 1)
        ack_delay = self._netlist_delay_field(payload, "ack_delay", 1)
        seed = self._int_field(payload, "seed", 0, -(2 ** 62), 2 ** 62)
        max_fanout = payload.get("max_fanout")
        if max_fanout is not None:
            max_fanout = self._int_field(payload, "max_fanout", None, 2, 10 ** 6)
        extraction = payload.get("extraction", "auto")
        if extraction not in EXTRACTION_MODES:
            raise RequestError(
                "unknown extraction mode %r (choose from %s)"
                % (extraction, ", ".join(EXTRACTION_MODES))
            )
        method = payload.get("method", "auto")

        def token(value):
            if isinstance(value, tuple):
                return "%s..%s" % (delay_token(value[0]), delay_token(value[1]))
            return delay_token(value)

        key = netlist_analysis_key(
            source,
            fmt=fmt,
            delay=token(delay),
            ack_delay=token(ack_delay),
            seed=seed,
            max_fanout=max_fanout,
            extraction=extraction,
            method=method,
        )
        cached = self.results.get(key)
        if cached is not None:
            return dict(cached, cached=True)
        deadline.check("pre-parse")
        _, report = analyze_source(
            source,
            fmt=fmt,
            name=name,
            delay=delay,
            ack_delay=ack_delay,
            seed=seed,
            max_fanout=max_fanout,
            extraction=extraction,
            method=method,
        )
        deadline.check("post-analyze")
        response = dict(
            report,
            cycle_time=encode_number(report["cycle_time"]),
            cycle_time_float=float(report["cycle_time"]),
            source_hash=netlist_source_hash(source),
        )
        self.results.put(key, response)
        return dict(response, cached=False)

    def handle_stats(self) -> Dict[str, Any]:
        # Every component snapshot re-acquires the shared RLock, so the
        # whole multi-component read happens at one instant: a scrape
        # during a storm can't pair a shed count from mid-storm with a
        # hit count from before it.
        with self.stats_lock:
            return self._stats_locked()

    def _stats_locked(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "uptime_s": time.time() - self.started,
            "worker_id": self.config.worker_id,
            "pid": os.getpid(),
            "draining": self.draining,
            "requests": self.counters.snapshot(),
            "cache": service_cache_stats(),
            "coalescer": self.coalescer.stats.snapshot(),
            "admission": self.admission.snapshot(),
            "overload": {
                "limiter": (
                    None if self.limiter is None else self.limiter.snapshot()
                ),
                "brownout": (
                    None if self.brownout is None
                    else self.brownout.snapshot()
                ),
            },
            "kernel": {"shm": shm_stats()},
            "faults": None if self.faults is None else self.faults.snapshot(),
            "config": {
                "request_timeout": self.config.request_timeout,
                "max_samples": self.config.max_samples,
                "linger_ms": self.config.linger_ms,
                "max_batch_samples": self.config.max_batch_samples,
                "max_inflight": self.config.max_inflight,
                "max_queue_depth": self.config.max_queue_depth,
                "drain_timeout": self.config.drain_timeout,
                "chaos": self.config.chaos,
                "adaptive": self.config.adaptive,
                "brownout": self.config.brownout,
                "brownout_floor": self.config.brownout_floor,
                "codel_target_ms": self.config.codel_target_ms,
                "codel_interval_ms": self.config.codel_interval_ms,
            },
        }

    def handle_readyz(self) -> Tuple[int, Dict[str, Any]]:
        if self.draining:
            return 503, {"status": "draining"}
        if self.admission.saturated():
            return 503, {"status": "saturated"}
        return 200, {"status": "ready"}

    def handle_metrics(self) -> str:
        """The Prometheus text exposition (native + bridged series)."""
        return _registry().render()


#: Endpoint label values with bounded cardinality: anything outside
#: this set is labelled "other" so scanned garbage paths cannot mint
#: unbounded metric series.
_KNOWN_ENDPOINTS = frozenset(
    ("/analyze", "/montecarlo", "/ptime", "/netlist", "/stats", "/healthz",
     "/readyz", "/metrics")
)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service"
    protocol_version = "HTTP/1.1"

    _request_started: Optional[float] = None
    _endpoint: str = "other"

    @property
    def service(self) -> AnalysisService:
        return self.server.service  # type: ignore[attr-defined]

    def setup(self) -> None:
        self.timeout = self.service.config.request_timeout
        super().setup()

    def _begin_request(self, path: str) -> None:
        self._request_started = time.perf_counter()
        self._endpoint = path if path in _KNOWN_ENDPOINTS else "other"

    def _observe_request(self, status: int) -> None:
        if self._request_started is None:
            return
        elapsed = time.perf_counter() - self._request_started
        self._request_started = None
        registry = _registry()
        labels = {"endpoint": self._endpoint, "status": str(status)}
        registry.counter(
            "repro_requests_total",
            "HTTP requests handled, by endpoint and status.",
            ("endpoint", "status"),
        ).inc(**labels)
        registry.histogram(
            "repro_request_seconds",
            "Request wall time from route to response written.",
            ("endpoint", "status"),
            buckets=DEFAULT_BUCKETS,
        ).observe(elapsed, **labels)

    # -- plumbing ------------------------------------------------------
    def _send_raw(
        self,
        status: int,
        body: bytes,
        extra_headers: Optional[Dict[str, str]] = None,
        content_type: str = "application/json",
    ) -> None:
        # Record before writing: once the client has the response it
        # must find this request in the very next /metrics scrape.
        if _obs.metrics:
            self._observe_request(status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        worker_id = self.service.config.worker_id
        if worker_id is not None:
            # Which pool member answered — the router forwards this so
            # affinity and failover are observable end to end.
            self.send_header("X-Worker-Id", str(worker_id))
        if _obs.tracing:
            traceparent = current_traceparent()
            if traceparent is not None:
                self.send_header("traceparent", traceparent)
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        if self.service.draining:
            # Stop keep-alive reuse so the drain can finish.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._send_raw(
            status, json.dumps(payload).encode("utf-8"), extra_headers
        )

    def _send_error_json(
        self,
        status: int,
        kind: str,
        message: str,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.service.counters.increment("errors")
        self._send_json(
            status, {"error": {"type": kind, "message": message}}, extra_headers
        )

    def _read_body(self) -> Dict[str, Any]:
        length = self.headers.get("Content-Length")
        try:
            length = int(length)
        except (TypeError, ValueError):
            raise RequestError("Content-Length required", status=411,
                               kind="LengthRequired")
        if length > self.service.config.max_body_bytes:
            raise RequestError(
                "request body exceeds %d bytes"
                % self.service.config.max_body_bytes,
                status=413, kind="PayloadTooLarge",
            )
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except (ValueError, UnicodeDecodeError):
            raise RequestError("request body is not valid JSON")
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        return payload

    def _retry_after_header(self) -> Dict[str, str]:
        return {"Retry-After": "%g" % self.service.config.retry_after_s}

    def _dispatch(self, handler) -> None:
        service = self.service
        try:
            response = handler()
        except RequestError as error:
            self._send_error_json(error.status, error.kind, str(error))
        except Saturated as error:
            service.counters.increment("shed")
            self._send_error_json(
                429, "Saturated", str(error),
                extra_headers={"Retry-After": "%g" % error.retry_after},
            )
        except DeadlineExceeded as error:
            service.counters.increment("expired")
            self._send_error_json(504, "DeadlineExceeded", str(error))
        except faults.InjectedFault as error:
            service.counters.increment("faults_injected")
            headers = (
                self._retry_after_header() if error.status in (429, 503) else None
            )
            self._send_error_json(
                error.status, "InjectedFault", str(error), extra_headers=headers
            )
        except SignalGraphError as error:
            # Domain errors (non-live graph, no border events, ...) are
            # the client's problem: structured 422, never a traceback.
            self._send_error_json(422, type(error).__name__, str(error))
        except Exception as error:  # noqa: BLE001 — last-resort guard
            self._send_error_json(
                500, "InternalError", "%s: %s" % (type(error).__name__, error)
            )
        else:
            if isinstance(response, tuple):
                status, payload = response
                self._send_json(status, payload)
            else:
                self._send_json(200, response)

    def _dispatch_post(self, method) -> None:
        """The full resilient POST path: deadline, admission, chaos,
        idempotent replay."""
        service = self.service

        def run():
            if service.draining:
                raise RequestError(
                    "server is draining", status=503, kind="Draining"
                )
            payload = self._read_body()
            deadline = service.deadline_for(
                payload, self.headers.get("X-Request-Timeout-Ms")
            )
            priority = payload.get("priority", "normal")
            if priority not in PRIORITIES:
                raise RequestError(
                    "'priority' must be one of %s, got %r"
                    % ("/".join(sorted(PRIORITIES)), priority)
                )
            idempotency_key = self.headers.get("X-Idempotency-Key")
            if idempotency_key:
                stored = service.idempotency.get(idempotency_key)
                if stored is not None:
                    service.counters.increment("idempotent_replays")
                    status, body = stored
                    self._send_raw(status, body)
                    return _SENT
            # The admission slot covers compute AND the response write,
            # so drain() waiting on inflight==0 guarantees no response
            # is cut mid-write by shutdown.
            with service.admission.admit(deadline, priority=priority):
                service.note_pressure()
                injector = service.faults
                if injector is not None:
                    injector.sleep_latency(site="handler")
                    injector.maybe_error(site="handler")
                deadline.check("admitted")
                # Post-admission service time feeds the AIMD limiter:
                # queueing delay is what the limiter *controls*, so it
                # must not pollute the congestion signal.
                started = time.monotonic()
                try:
                    response = method(payload, deadline)
                except DeadlineExceeded:
                    if service.limiter is not None:
                        service.limiter.observe(
                            time.monotonic() - started, "timeout"
                        )
                    raise
                if service.limiter is not None:
                    service.limiter.observe(time.monotonic() - started, "ok")
                body = json.dumps(response).encode("utf-8")
                if idempotency_key:
                    # Replayed retries must be byte-identical: store
                    # the serialised body, not the dict.
                    service.idempotency.put(idempotency_key, (200, body))
                self._send_raw(200, body)
            return _SENT

        try:
            outcome = run()
        except RequestError as error:
            headers = (
                self._retry_after_header() if error.status == 503 else None
            )
            self._send_error_json(
                error.status, error.kind, str(error), extra_headers=headers
            )
        except Saturated as error:
            service.counters.increment("shed")
            service.note_pressure(True)
            self._send_error_json(
                429, "Saturated", str(error),
                extra_headers={"Retry-After": "%g" % error.retry_after},
            )
        except DeadlineExceeded as error:
            service.counters.increment("expired")
            service.note_pressure(True)
            self._send_error_json(504, "DeadlineExceeded", str(error))
        except faults.InjectedFault as error:
            service.counters.increment("faults_injected")
            headers = (
                self._retry_after_header() if error.status in (429, 503) else None
            )
            self._send_error_json(
                error.status, "InjectedFault", str(error), extra_headers=headers
            )
        except SignalGraphError as error:
            self._send_error_json(422, type(error).__name__, str(error))
        except Exception as error:  # noqa: BLE001 — last-resort guard
            self._send_error_json(
                500, "InternalError", "%s: %s" % (type(error).__name__, error)
            )
        else:
            assert outcome is _SENT

    # -- routes --------------------------------------------------------
    def _server_span(self, endpoint: str):
        """A server-side span, parented to the client's traceparent."""
        parent = None
        if _obs.tracing:
            parent = parse_traceparent(self.headers.get("traceparent"))
        return _tracer().span(
            "server.handle", parent=parent, attributes={"endpoint": endpoint}
        )

    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        path = self.path.split("?", 1)[0]
        self._begin_request(path)
        if path == "/healthz":
            self.service.counters.increment("healthz")
            self._dispatch(lambda: {"status": "ok"})
        elif path == "/readyz":
            self.service.counters.increment("readyz")
            self._dispatch(self.service.handle_readyz)
        elif path == "/stats":
            self.service.counters.increment("stats")
            self._dispatch(self.service.handle_stats)
        elif path == "/metrics":
            if not self.service.config.metrics:
                self._send_error_json(
                    404, "NotFound", "metrics are disabled (--no-metrics)"
                )
                return
            self.service.counters.increment("metrics")
            try:
                scrape = self.service.handle_metrics()
            except Exception as error:  # noqa: BLE001 — last-resort guard
                self._send_error_json(
                    500, "InternalError",
                    "%s: %s" % (type(error).__name__, error),
                )
                return
            self._send_raw(
                200,
                scrape.encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        else:
            self._send_error_json(404, "NotFound", "no such endpoint: %s" % path)

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        path = self.path.split("?", 1)[0]
        self._begin_request(path)
        if path == "/analyze":
            self.service.counters.increment("analyze")
            with self._server_span(path):
                self._dispatch_post(self.service.handle_analyze)
        elif path == "/montecarlo":
            self.service.counters.increment("montecarlo")
            with self._server_span(path):
                self._dispatch_post(self.service.handle_montecarlo)
        elif path == "/ptime":
            self.service.counters.increment("ptime")
            with self._server_span(path):
                self._dispatch_post(self.service.handle_ptime)
        elif path == "/netlist":
            self.service.counters.increment("netlist")
            with self._server_span(path):
                self._dispatch_post(self.service.handle_netlist)
        else:
            self._send_error_json(404, "NotFound", "no such endpoint: %s" % path)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.service.config.quiet:
            worker = self.service.config.worker_id
            prefix = (
                "repro.service" if worker is None
                else "repro.service w%d" % worker
            )
            sys.stderr.write(
                "[%s] %s - %s\n" % (prefix, self.address_string(),
                                    format % args)
            )


_SENT = object()  # sentinel: response already written by the handler


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the :class:`AnalysisService`.

    Two multi-worker entry paths besides the plain bind:

    * ``config.reuse_port`` sets ``SO_REUSEPORT`` before binding, so N
      sibling workers can each bind the same address and let the
      kernel load-balance accepted connections between them;
    * ``sock`` adopts an already-bound, already-listening socket (fd
      inheritance across ``fork`` — the fallback where SO_REUSEPORT
      does not exist), skipping bind/listen entirely.
    """

    daemon_threads = True

    def __init__(self, config: ServiceConfig, sock: Optional[socket.socket] = None):
        self.service = AnalysisService(config)
        super().__init__(
            (config.host, config.port), _Handler, bind_and_activate=False
        )
        if sock is not None:
            self.socket.close()
            self.socket = sock
            self.server_address = self.socket.getsockname()
            host, port = self.server_address[:2]
            self.server_name = host
            self.server_port = port
            return
        try:
            self.server_bind()
            self.server_activate()
        except BaseException:
            self.server_close()
            raise

    def server_bind(self) -> None:
        if self.service.config.reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):
                raise SignalGraphError(
                    "SO_REUSEPORT is not available on this platform"
                )
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return "http://%s:%d" % (host, port)

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop taking new work and wait for in-flight requests.

        Marks the service as draining (new requests get 503, responses
        carry ``Connection: close``) and blocks until the admission
        queue reports zero in-flight requests or ``timeout`` (default
        ``--drain-timeout``) elapses.  Returns True when fully drained
        — meaning no response was cut mid-write.
        """
        if timeout is None:
            timeout = self.service.config.drain_timeout
        self.service.draining = True
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if (
                self.service.admission.inflight() == 0
                and self.service.admission.waiting() == 0
            ):
                return True
            time.sleep(0.02)
        return (
            self.service.admission.inflight() == 0
            and self.service.admission.waiting() == 0
        )

    def close(self) -> None:
        self.server_close()
        self.service.close()


def make_server(
    host: str = DEFAULT_HOST, port: int = 0, **overrides
) -> ServiceServer:
    """Build a service server (``port=0`` picks an ephemeral port)."""
    return ServiceServer(ServiceConfig(host=host, port=port, **overrides))


def serve(config: Optional[ServiceConfig] = None) -> int:
    """Run the daemon until SIGINT/SIGTERM; returns 0 on clean exit."""
    server = ServiceServer(config or ServiceConfig())

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _terminate)
    print("repro service listening on %s" % server.url, flush=True)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        drained = server.drain()
        if not drained:
            print(
                "repro service: drain timeout — %d request(s) abandoned"
                % server.service.admission.inflight(),
                flush=True,
            )
        server.close()
    print("repro service: shut down cleanly", flush=True)
    return 0
