"""``POST /netlist``: the real-circuit pipeline over the wire."""

from __future__ import annotations

import threading
from fractions import Fraction

import pytest

from repro.netlist import corpus_path
from repro.service.cache import clear_caches, configure
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import make_server


@pytest.fixture(autouse=True)
def fresh_caches():
    configure()
    yield
    clear_caches()
    configure()


@pytest.fixture
def service():
    server = make_server(quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(server.url, timeout=30)
    yield client
    server.shutdown()
    server.close()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def c17_text():
    with open(corpus_path("c17"), encoding="utf-8") as handle:
        return handle.read()


class TestNetlistEndpoint:
    def test_c17_end_to_end(self, service, c17_text):
        result = service.netlist(c17_text, name="c17")
        assert result["cycle_time"] == 8
        assert result["cached"] is False
        assert result["extraction"] == "oracle"
        assert result["method"] == "timing"
        assert result["network"]["gates"] == 6
        assert result["source_hash"]

    def test_repeat_request_hits_the_cache(self, service, c17_text):
        assert service.netlist(c17_text)["cached"] is False
        assert service.netlist(c17_text)["cached"] is True

    def test_parameters_partition_the_cache(self, service, c17_text):
        service.netlist(c17_text)
        changed = service.netlist(c17_text, delay=2)
        assert changed["cached"] is False
        assert changed["cycle_time"] > 8

    def test_interval_delays_round_trip_exact(self, service, c17_text):
        result = service.netlist(c17_text, delay=(2, 5), seed=3)
        assert isinstance(result["cycle_time"], (int, Fraction))

    def test_verilog_source(self, service):
        from repro.netlist import load_corpus, write_verilog

        result = service.netlist(write_verilog(load_corpus("c17")))
        assert result["cycle_time"] == 8

    def test_bad_source_is_structured_422(self, service):
        with pytest.raises(ServiceError) as info:
            service.netlist("INPUT(a)\nb = WAT(a)\n")
        assert info.value.status == 422

    def test_empty_source_rejected(self, service):
        with pytest.raises(ServiceError) as info:
            service.netlist("   ")
        assert info.value.status == 400

    def test_bad_method_rejected(self, service, c17_text):
        with pytest.raises(ServiceError):
            service.netlist(c17_text, method="magic")

    def test_bad_delay_rejected(self, service, c17_text):
        with pytest.raises(ServiceError) as info:
            service.netlist(c17_text, delay="soon")
        assert info.value.status == 400

    def test_counter_increments(self, service, c17_text):
        service.netlist(c17_text)
        stats = service.stats()
        assert stats["requests"]["netlist"] >= 1
