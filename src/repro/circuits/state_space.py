"""Explicit state-space analysis of closed gate-level circuits.

The extractor (and the paper's distributivity requirement) rests on the
circuit being *semi-modular*: once a gate is excited it stays excited
until it fires — no transition of another signal may disable it.
Semi-modularity implies speed-independence for the circuit class at
hand (Section VIII-A); we verify it by exhaustive exploration of every
interleaving from the initial state, which is exact and comfortably
fast for circuits up to ~20 signals.

States are bit-tuples indexed by the netlist's signal order.  One-shot
input stimuli are modelled as pseudo-gates that fire exactly once,
mirroring the paper's treatment of the circuit input ``e``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.errors import NotSemiModularError, StateSpaceLimitError
from .netlist import Netlist

State = Tuple[int, ...]


@dataclass
class StateSpace:
    """Reachability analysis result.

    ``states`` maps each reachable configuration (signal values plus
    the set of stimuli already consumed) to the set of signals excited
    there; ``transitions`` lists the explored moves.
    """

    netlist: Netlist
    signal_order: Tuple[str, ...]
    states: Dict[Tuple[State, FrozenSet[str]], FrozenSet[str]]
    transitions: List[Tuple[Tuple[State, FrozenSet[str]], str, Tuple[State, FrozenSet[str]]]]

    @property
    def num_states(self) -> int:
        return len(self.states)

    def state_dict(self, state: State) -> Dict[str, int]:
        """A ``{signal: value}`` view of a state tuple."""
        return dict(zip(self.signal_order, state))


def _excited_signals(
    netlist: Netlist,
    values: Dict[str, int],
    pending_stimuli: Iterable[str],
) -> Set[str]:
    """Signals whose next value differs from their current one."""
    excited = {
        gate.output
        for gate in netlist.gates
        if gate.evaluate(values) != values[gate.output]
    }
    excited.update(pending_stimuli)
    return excited


def explore(
    netlist: Netlist,
    max_states: int = 2_000_000,
    check_semi_modular: bool = True,
    max_steps: Optional[int] = None,
) -> StateSpace:
    """Exhaustively explore all interleavings from the initial state.

    Raises :class:`~repro.core.errors.NotSemiModularError` when a
    transition disables another excited gate (with the witness state
    and signal), if ``check_semi_modular`` is set.

    Exploration is budgeted: at most ``max_states`` reachable
    configurations and (when given) ``max_steps`` explored moves.  An
    exhausted budget raises a structured
    :class:`~repro.core.errors.StateSpaceLimitError` — the state space
    of a wide circuit grows exponentially in its concurrency, so a
    netlist beyond a few tens of signals should go through the
    structural extraction path instead of a bigger budget.
    """
    netlist.validate()
    order = tuple(netlist.signals)
    index = {signal: position for position, signal in enumerate(order)}
    initial_values = netlist.initial_state()
    initial_state = tuple(initial_values[s] for s in order)
    all_stimuli = frozenset(stim.signal for stim in netlist.stimuli)

    start = (initial_state, frozenset())
    states: Dict[Tuple[State, FrozenSet[str]], FrozenSet[str]] = {}
    moves: List[Tuple[Tuple[State, FrozenSet[str]], str, Tuple[State, FrozenSet[str]]]] = []
    frontier = [start]
    while frontier:
        config = frontier.pop()
        if config in states:
            continue
        state, fired_stimuli = config
        values = dict(zip(order, state))
        pending = all_stimuli - fired_stimuli
        excited = frozenset(_excited_signals(netlist, values, pending))
        states[config] = excited
        if len(states) > max_states:
            raise StateSpaceLimitError(
                "state space exceeded %d states after %d moves; "
                "exploration abandoned (use the structural extraction "
                "path for large netlists)" % (max_states, len(moves)),
                states=len(states), steps=len(moves),
                max_states=max_states, max_steps=max_steps,
            )
        if max_steps is not None and len(moves) > max_steps:
            raise StateSpaceLimitError(
                "exploration exceeded %d moves across %d states; "
                "abandoned" % (max_steps, len(states)),
                states=len(states), steps=len(moves),
                max_states=max_states, max_steps=max_steps,
            )
        for signal in excited:
            next_state = list(state)
            next_state[index[signal]] = 1 - state[index[signal]]
            next_fired = (
                fired_stimuli | {signal} if signal in pending else fired_stimuli
            )
            successor = (tuple(next_state), next_fired)
            moves.append((config, signal, successor))
            if successor not in states:
                frontier.append(successor)

    space = StateSpace(netlist, order, states, moves)
    if check_semi_modular:
        _check_semi_modularity(space)
    return space


def _check_semi_modularity(space: StateSpace) -> None:
    """Every excited signal must stay excited across other firings."""
    for config, signal, successor in space.transitions:
        before = space.states[config]
        after = space.states[successor]
        lost = (before - {signal}) - after
        if lost:
            witness = sorted(lost)[0]
            raise NotSemiModularError(
                "transition of %r disables excited signal %r in state %s"
                % (signal, witness, space.state_dict(config[0])),
                state=space.state_dict(config[0]),
                signal=witness,
            )


def is_semi_modular(netlist: Netlist, max_states: int = 2_000_000) -> bool:
    """Boolean wrapper around :func:`explore`'s semi-modularity check.

    A :class:`~repro.core.errors.StateSpaceLimitError` propagates: an
    abandoned exploration is neither a yes nor a no.
    """
    try:
        explore(netlist, max_states=max_states, check_semi_modular=True)
    except NotSemiModularError:
        return False
    return True
