"""Multi-process scale-out: pre-fork worker pool + sharding router.

One Python process can't push the batch kernel and the HTTP layer past
one core — ``ThreadingHTTPServer`` threads all contend for the GIL.
``repro serve --workers N`` escapes that by running N *single-process*
workers (each a full :class:`~repro.service.server.ServiceServer` with
its own caches, coalescer and admission queue) under one supervising
parent:

* **reuseport** (default where ``SO_REUSEPORT`` exists): every worker
  binds the same ``host:port`` with ``SO_REUSEPORT`` and the kernel
  load-balances accepted connections across them.  The parent holds a
  bound, *never listening* reservation socket so ``--port 0`` resolves
  to one concrete port before the first worker starts, and the port
  cannot be lost while a crashed worker is restarting.
* **inherit** (fallback): the parent binds + listens once and the
  listening fd is inherited across ``fork``; all workers ``accept()``
  from the shared socket.
* **router** (``--router``): each worker binds a private loopback
  port and the parent runs a :class:`RouterServer` on the public
  address that proxies each request to a worker chosen by *rendezvous
  hashing* of the request's topology hash — same topology, same
  worker, so the compile/result caches stay warm per shard.  When a
  worker dies, only its shard moves (to each key's next-best worker);
  every other shard keeps its warm worker.

The supervisor restarts crashed workers with exponential backoff
(reset after a stable stretch of uptime) and, on SIGTERM/SIGINT,
forwards SIGTERM to every worker so each drains in-flight requests
(PR 4's drain machinery) before the parent exits.

Worker processes rebuild process-global state after the fork: a fresh
metrics registry stamped with ``worker=<id>`` constant labels (so a
router-merged ``/metrics`` scrape never collides) and freshly
``configure()``-d caches, making the pool safe under both ``fork`` and
``spawn`` start methods (``inherit`` mode is fork-only — a listening
socket does not pickle).
"""

from __future__ import annotations

import hashlib
import http.client
import json
import queue as queue_module
import signal
import socket
import sys
import threading
import time
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.errors import SignalGraphError
from .server import ServiceConfig, ServiceServer

#: restart backoff schedule: base * 2^n seconds, capped; the streak
#: resets after a worker stays up for STABLE_UPTIME seconds.
BACKOFF_BASE = 0.1
BACKOFF_CAP = 5.0
STABLE_UPTIME = 30.0


# ----------------------------------------------------------------------
# shard routing: rendezvous (highest-random-weight) hashing
# ----------------------------------------------------------------------
def _shard_score(key: str, worker_id: int) -> bytes:
    return hashlib.sha256(("%s|%d" % (key, worker_id)).encode("utf-8")).digest()


def shard_worker(key: str, worker_ids: Sequence[int]) -> int:
    """The worker owning ``key`` among ``worker_ids`` (rendezvous hash).

    Deterministic in the *set* of ids (ordering never matters), and
    minimally disruptive: removing one worker moves only the keys it
    owned — every other key keeps its worker — which is exactly the
    cache-affinity property the router needs across worker restarts.
    """
    if not worker_ids:
        raise SignalGraphError("no workers available to shard %r" % key)
    return max(worker_ids, key=lambda wid: _shard_score(key, wid))


def shard_preference(key: str, worker_ids: Sequence[int]) -> List[int]:
    """All of ``worker_ids`` ordered best-first for ``key`` — the
    failover order: index 0 is :func:`shard_worker`'s answer, index 1
    is where the shard moves if that worker is down, and so on."""
    return sorted(
        worker_ids, key=lambda wid: _shard_score(key, wid), reverse=True
    )


# ----------------------------------------------------------------------
# worker process entry
# ----------------------------------------------------------------------
def _worker_main(
    worker_id: int,
    config: ServiceConfig,
    cache_config: Optional[Dict[str, Any]],
    conn,
    sock: Optional[socket.socket] = None,
) -> None:
    """Run one worker's server until SIGTERM; executed in the child."""
    # The parent's Ctrl-C is delivered to the whole foreground process
    # group; workers must only react to the supervisor's SIGTERM so
    # the drain sequencing stays in one place.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)

    # Rebuild process-global state the fork (or spawn) carried over:
    # a private metrics registry and private caches per worker.
    from ..obs.metrics import reset_registry

    reset_registry()
    if cache_config is not None:
        from .cache import configure

        configure(**cache_config)
    config = replace(config, worker_id=worker_id)
    try:
        server = ServiceServer(config, sock=sock)
    except BaseException as error:  # noqa: BLE001 — reported to parent
        try:
            conn.send(("failed", "%s: %s" % (type(error).__name__, error)))
        finally:
            conn.close()
        raise SystemExit(1)
    conn.send(("ready", int(server.server_address[1])))
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.drain()
        server.close()
    raise SystemExit(0)


class WorkerHandle:
    """Parent-side record of one worker slot (stable ``worker_id``)."""

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.process = None
        self.conn = None
        self.port: Optional[int] = None
        self.ready = False
        self.started_at = 0.0
        self.restarts = 0
        self.failures = 0  # consecutive, drives backoff
        self.next_start = 0.0

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class WorkerPool:
    """Spawn, supervise and address N analysis workers.

    ``mode`` is one of ``"reuseport"``, ``"inherit"`` or ``"private"``
    (each worker on its own ephemeral loopback port — the router's
    mode); :meth:`default_mode` picks for the platform.  The pool is
    usable programmatically (tests, benchmarks) without the router or
    any signal handling: ``start()`` blocks until every worker
    answered ready, ``terminate()`` SIGTERMs and joins them.
    """

    def __init__(
        self,
        config: ServiceConfig,
        workers: int,
        mode: Optional[str] = None,
        cache_config: Optional[Dict[str, Any]] = None,
        backoff_base: float = BACKOFF_BASE,
        backoff_cap: float = BACKOFF_CAP,
        stable_uptime: float = STABLE_UPTIME,
    ):
        if workers < 1:
            raise SignalGraphError("need at least one worker")
        self.config = config
        self.workers = workers
        self.mode = mode or self.default_mode()
        if self.mode not in ("reuseport", "inherit", "private"):
            raise SignalGraphError("unknown pool mode %r" % self.mode)
        self.cache_config = cache_config
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.stable_uptime = stable_uptime
        self.handles = [WorkerHandle(i) for i in range(workers)]
        self._ctx = self._pick_context()
        self._reservation: Optional[socket.socket] = None
        self._shared_sock: Optional[socket.socket] = None
        self._port: Optional[int] = None
        self._lock = threading.Lock()
        self._stopping = False
        self._supervisor: Optional[threading.Thread] = None

    # -- platform plumbing ---------------------------------------------
    @staticmethod
    def default_mode() -> str:
        return "reuseport" if hasattr(socket, "SO_REUSEPORT") else "inherit"

    def _pick_context(self):
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def _reserve_port(self) -> int:
        """Resolve ``--port 0`` and pin the port for the pool's lifetime."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((self.config.host, self.config.port))
        self._reservation = sock  # bound, never listening
        return sock.getsockname()[1]

    def _bind_shared(self) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.config.host, self.config.port))
        sock.listen(128)
        return sock

    # -- lifecycle ------------------------------------------------------
    def start(self, timeout: float = 30.0) -> None:
        """Spawn every worker and wait until all report ready."""
        if self.mode == "reuseport":
            self._port = self._reserve_port()
        elif self.mode == "inherit":
            if self._ctx.get_start_method() != "fork":
                raise SignalGraphError(
                    "inherit mode needs the fork start method "
                    "(a listening socket does not pickle)"
                )
            self._shared_sock = self._bind_shared()
            self._port = self._shared_sock.getsockname()[1]
        deadline = time.monotonic() + timeout
        for handle in self.handles:
            self._spawn(handle)
        for handle in self.handles:
            self._await_ready(handle, deadline)
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-pool-supervisor", daemon=True
        )
        self._supervisor.start()

    def _worker_config(self) -> ServiceConfig:
        if self.mode == "reuseport":
            return replace(self.config, port=self._port, reuse_port=True)
        if self.mode == "inherit":
            return self.config  # socket is adopted, address ignored
        return replace(self.config, host="127.0.0.1", port=0)

    def _spawn(self, handle: WorkerHandle) -> None:
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                pass
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                handle.worker_id,
                self._worker_config(),
                self.cache_config,
                child_conn,
                self._shared_sock if self.mode == "inherit" else None,
            ),
            name="repro-worker-%d" % handle.worker_id,
            daemon=False,
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.ready = False
        handle.started_at = time.monotonic()

    def _await_ready(self, handle: WorkerHandle, deadline: float) -> None:
        remaining = deadline - time.monotonic()
        if remaining > 0 and handle.conn.poll(remaining):
            try:
                message = handle.conn.recv()
            except (EOFError, OSError):
                message = None
            if message and message[0] == "ready":
                handle.port = message[1]
                handle.ready = True
                handle.failures = 0
                return
            if message and message[0] == "failed":
                raise SignalGraphError(
                    "worker %d failed to start: %s"
                    % (handle.worker_id, message[1])
                )
        raise SignalGraphError(
            "worker %d did not report ready in time" % handle.worker_id
        )

    def _supervise(self) -> None:
        """Restart crashed workers with backoff until :meth:`terminate`."""
        while not self._stopping:
            time.sleep(0.05)
            now = time.monotonic()
            for handle in self.handles:
                if self._stopping or handle.alive():
                    continue
                with self._lock:
                    if handle.ready:
                        # It had been up: decide the next backoff from
                        # how long it survived.
                        uptime = now - handle.started_at
                        if uptime >= self.stable_uptime:
                            handle.failures = 0
                        handle.failures += 1
                        handle.ready = False
                        pause = min(
                            self.backoff_cap,
                            self.backoff_base * (2 ** (handle.failures - 1)),
                        )
                        handle.next_start = now + pause
                    if now < handle.next_start:
                        continue
                    handle.restarts += 1
                    self._spawn(handle)
                try:
                    self._await_ready(handle, time.monotonic() + 10.0)
                except SignalGraphError:
                    handle.failures += 1
                    handle.next_start = time.monotonic() + min(
                        self.backoff_cap,
                        self.backoff_base * (2 ** (handle.failures - 1)),
                    )

    def terminate(self, timeout: Optional[float] = None) -> bool:
        """SIGTERM every worker (each drains) and join; True if all
        exited within ``timeout`` (default drain_timeout + 5s)."""
        if timeout is None:
            timeout = self.config.drain_timeout + 5.0
        self._stopping = True
        for handle in self.handles:
            if handle.alive():
                handle.process.terminate()  # SIGTERM
        deadline = time.monotonic() + timeout
        clean = True
        for handle in self.handles:
            if handle.process is None:
                continue
            handle.process.join(max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(1.0)
                clean = False
        if self._supervisor is not None:
            self._supervisor.join(1.0)
        for sock in (self._reservation, self._shared_sock):
            if sock is not None:
                sock.close()
        self._reservation = self._shared_sock = None
        return clean

    # -- addressing -----------------------------------------------------
    @property
    def port(self) -> int:
        """The shared public port (reuseport/inherit modes)."""
        if self._port is None:
            raise SignalGraphError("pool is not started or runs in router mode")
        return self._port

    @property
    def url(self) -> str:
        return "http://%s:%d" % (self.config.host, self.port)

    def worker_ports(self) -> Dict[int, int]:
        """Private per-worker ports (populated in every mode)."""
        return {
            handle.worker_id: handle.port
            for handle in self.handles
            if handle.port is not None
        }

    def live_ids(self) -> List[int]:
        return [
            handle.worker_id
            for handle in self.handles
            if handle.alive() and handle.ready
        ]

    def handle_of(self, worker_id: int) -> WorkerHandle:
        return self.handles[worker_id]

    def snapshot(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "workers": self.workers,
            "live": self.live_ids(),
            "restarts": {h.worker_id: h.restarts for h in self.handles},
            "pids": {
                h.worker_id: h.process.pid
                for h in self.handles
                if h.process is not None and h.process.pid is not None
            },
        }


# ----------------------------------------------------------------------
# per-worker health scoring
# ----------------------------------------------------------------------
class WorkerHealth:
    """EWMA error/latency score with outlier ejection and probation.

    Replaces blind in-order failover: the router records every
    forwarding outcome (``record``), and a worker whose error EWMA
    climbs past ``eject_threshold`` (after ``min_samples``
    observations) is *ejected* — :meth:`allow` answers False, so the
    shard moves to the key's next-best worker without burning a
    request on the sick one.  After ``cooldown_s`` one *probation
    probe* is admitted (single-claim, like the circuit breaker's
    half-open slot): success re-enters the worker with a clean error
    score, failure re-ejects it with the cooldown doubled up to
    ``cooldown_cap_s``.
    """

    def __init__(
        self,
        alpha: float = 0.3,
        eject_threshold: float = 0.5,
        min_samples: int = 3,
        cooldown_s: float = 2.0,
        cooldown_cap_s: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 < eject_threshold <= 1.0:
            raise ValueError("eject_threshold must be in (0, 1]")
        self.alpha = alpha
        self.eject_threshold = eject_threshold
        self.min_samples = min_samples
        self.cooldown_s = cooldown_s
        self.cooldown_cap_s = cooldown_cap_s
        self._clock = clock
        self._lock = threading.Lock()
        self.error_ewma = 0.0
        self.latency_ewma_ms = 0.0
        self.samples = 0
        self.ejections = 0
        self._cooldown = cooldown_s
        self._ejected_until: Optional[float] = None
        self._probing = False

    def record(self, ok: bool, rtt_s: Optional[float] = None) -> None:
        """One forwarding outcome for this worker."""
        now = self._clock()
        with self._lock:
            self.samples += 1
            self.error_ewma += self.alpha * (
                (0.0 if ok else 1.0) - self.error_ewma
            )
            if rtt_s is not None:
                self.latency_ewma_ms += self.alpha * (
                    rtt_s * 1000.0 - self.latency_ewma_ms
                )
            if ok:
                if self._probing:
                    # Probation probe succeeded: full re-entry.
                    self._probing = False
                    self._ejected_until = None
                    self._cooldown = self.cooldown_s
                    self.error_ewma = 0.0
                return
            if self._probing:
                # Probation probe failed: re-eject, cooldown doubled.
                self._probing = False
                self._cooldown = min(self._cooldown * 2.0,
                                     self.cooldown_cap_s)
                self._ejected_until = now + self._cooldown
                self.ejections += 1
            elif (
                self._ejected_until is None
                and self.samples >= self.min_samples
                and self.error_ewma > self.eject_threshold
            ):
                self._ejected_until = now + self._cooldown
                self.ejections += 1

    def allow(self) -> bool:
        """May the router send this worker a request right now?

        While ejected: False until the cooldown lapses, then True for
        exactly one caller (the probation probe claim).
        """
        with self._lock:
            if self._ejected_until is None:
                return True
            if self._probing:
                return False
            if self._clock() >= self._ejected_until:
                self._probing = True
                return True
            return False

    @property
    def ejected(self) -> bool:
        with self._lock:
            return self._ejected_until is not None

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "error_ewma": self.error_ewma,
                "latency_ewma_ms": self.latency_ewma_ms,
                "samples": self.samples,
                "ejections": self.ejections,
                "ejected": self._ejected_until is not None,
                "probing": self._probing,
                "cooldown_s": self._cooldown,
            }


# ----------------------------------------------------------------------
# the front-door router
# ----------------------------------------------------------------------
#: request headers forwarded verbatim to the chosen worker
_FORWARD_HEADERS = (
    "Content-Type",
    "Accept",
    "X-Idempotency-Key",
    "X-Request-Timeout-Ms",
    "X-Topology-Hash",
    "traceparent",
)
#: response headers forwarded verbatim back to the caller —
#: X-Worker-Id and traceparent included so pool-level traces and
#: affinity stay observable across the router hop
_RETURN_HEADERS = ("Retry-After", "Content-Type", "X-Worker-Id",
                   "traceparent")


class _RouterHandler(BaseHTTPRequestHandler):
    server_version = "repro-router"
    protocol_version = "HTTP/1.1"

    @property
    def router(self) -> "RouterServer":
        return self.server  # type: ignore[return-value]

    # -- plumbing ------------------------------------------------------
    def _reply(
        self,
        status: int,
        body: bytes,
        headers: Optional[Dict[str, str]] = None,
        content_type: str = "application/json",
    ) -> None:
        self.send_response(status)
        headers = dict(headers or {})
        headers.setdefault("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _reply_json(self, status: int, payload: Dict[str, Any],
                    headers: Optional[Dict[str, str]] = None) -> None:
        self._reply(status, json.dumps(payload).encode("utf-8"), headers)

    def _reply_error(self, status: int, kind: str, message: str) -> None:
        self._reply_json(
            status, {"error": {"type": kind, "message": message}}
        )

    def _shard_key(self, body: bytes) -> str:
        """The affinity key: the client's X-Topology-Hash when present
        (the real canonical topology hash), else a digest of the raw
        graph document — stable for byte-identically serialised
        graphs, which covers any single client's retries."""
        header = self.headers.get("X-Topology-Hash")
        if header:
            return header
        try:
            document = json.loads(body)
            graph = document.get("graph")
        except ValueError:
            graph = None
        if isinstance(graph, dict):
            canonical = json.dumps(
                graph, sort_keys=True, separators=(",", ":")
            )
            return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        return hashlib.sha256(body).hexdigest()

    # -- routes --------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        path = self.path.split("?", 1)[0]
        if path not in ("/analyze", "/montecarlo"):
            self._reply_error(404, "NotFound", "no such endpoint: %s" % path)
            return
        try:
            length = int(self.headers.get("Content-Length"))
        except (TypeError, ValueError):
            self._reply_error(411, "LengthRequired", "Content-Length required")
            return
        body = self.rfile.read(length)
        headers = {
            name: self.headers[name]
            for name in _FORWARD_HEADERS
            if self.headers.get(name)
        }
        headers["Content-Length"] = str(len(body))
        key = self._shard_key(body)
        self.router.forward(self, "POST", path, body, headers, key)

    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            self._reply_json(200, {"status": "ok"})
        elif path == "/readyz":
            self.router.handle_readyz(self)
        elif path == "/stats":
            self.router.handle_stats(self)
        elif path == "/metrics":
            self.router.handle_metrics(self)
        else:
            self._reply_error(404, "NotFound", "no such endpoint: %s" % path)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.router.quiet:
            sys.stderr.write(
                "[repro.router] %s - %s\n"
                % (self.address_string(), format % args)
            )


class RouterServer(ThreadingHTTPServer):
    """Topology-affinity front door over a :class:`WorkerPool`.

    POSTs are forwarded to the rendezvous-chosen worker over pooled
    keep-alive backend connections.  Per-worker :class:`WorkerHealth`
    scores steer routing: an ejected worker is skipped outright until
    its probation probe succeeds.  A worker that cannot be reached is
    skipped for that request — but the *failover replay* only happens
    for idempotent requests (GETs, or POSTs carrying an
    ``X-Idempotency-Key``); a non-idempotent request whose bytes may
    already have reached a worker is answered 503
    ``NonIdempotentFailover`` and counted ``unroutable`` instead of
    risking double execution.  With ``hedge_ms`` set, an idempotent
    request that hasn't answered within that delay is *hedged* to the
    key's second-best worker and the first answer wins.
    ``/readyz`` aggregates worker readiness — ready while at least one
    worker answers ready.  ``/metrics`` merges every worker's scrape
    into one exposition (series stay distinct via their ``worker``
    constant label); ``/stats`` nests each worker's stats document and
    the health scores.
    """

    daemon_threads = True

    def __init__(self, config: ServiceConfig, pool: WorkerPool):
        self.pool = pool
        self.quiet = config.quiet
        self.probe_timeout = min(5.0, config.request_timeout)
        self.hedge_ms = config.hedge_ms
        self._transports: Dict[int, Any] = {}
        self._transports_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.counters = {
            "routed": 0, "failovers": 0, "unroutable": 0,
            "hedged": 0, "hedged_wins": 0,
        }
        self._per_worker: Dict[int, int] = {}
        self._health: Dict[int, WorkerHealth] = {}
        self._health_lock = threading.Lock()
        self._request_timeout = config.request_timeout
        super().__init__((config.host, config.port), _RouterHandler)

    def health_of(self, worker_id: int) -> WorkerHealth:
        with self._health_lock:
            health = self._health.get(worker_id)
            if health is None:
                health = self._health[worker_id] = WorkerHealth()
            return health

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return "http://%s:%d" % (host, port)

    def _count(self, name: str, worker_id: Optional[int] = None) -> None:
        with self._stats_lock:
            self.counters[name] += 1
            if worker_id is not None:
                self._per_worker[worker_id] = (
                    self._per_worker.get(worker_id, 0) + 1
                )

    def _transport(self, worker_id: int):
        from .client import PooledTransport

        port = self.pool.worker_ports().get(worker_id)
        if port is None:
            return None
        with self._transports_lock:
            transport = self._transports.get(worker_id)
            if transport is not None and transport.port == port:
                return transport
            if transport is not None:
                transport.close()  # the worker restarted on a new port
            transport = PooledTransport(
                "http://127.0.0.1:%d" % port,
                timeout=self._request_timeout,
                pool_connections=4,
            )
            self._transports[worker_id] = transport
            return transport

    # -- proxying ------------------------------------------------------
    @staticmethod
    def _pick_return_headers(
        worker_id: int, response_headers: Dict[str, str]
    ) -> Dict[str, str]:
        """The worker reply headers the router forwards to the caller."""
        reply: Dict[str, str] = {}
        wanted = {name.lower(): name for name in _RETURN_HEADERS}
        for name, value in response_headers.items():
            canonical = wanted.get(name.lower())
            if canonical is not None:
                reply[canonical] = value
        # A worker that didn't stamp itself still gets identified.
        reply.setdefault("X-Worker-Id", str(worker_id))
        return reply

    def _attempt_worker(
        self,
        worker_id: int,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Dict[str, str],
    ) -> Optional[Tuple[int, int, bytes, Dict[str, str]]]:
        """One forwarding attempt; records the health outcome.

        Returns ``(worker_id, status, body, headers)`` or ``None`` on
        a transport error.
        """
        transport = self._transport(worker_id)
        if transport is None:
            return None
        started = time.monotonic()
        try:
            status, raw, response_headers = transport.request_ex(
                method, path, body, headers
            )
        except (OSError, http.client.HTTPException):
            self.health_of(worker_id).record(False)
            return None
        # Structured client errors (4xx) prove the worker is healthy;
        # only 5xx counts against its score.
        self.health_of(worker_id).record(
            status < 500, time.monotonic() - started
        )
        return worker_id, status, raw, response_headers

    def _hedged_attempt(
        self,
        primary: int,
        backup: int,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Dict[str, str],
    ) -> Optional[Tuple[int, int, bytes, Dict[str, str]]]:
        """Race ``primary`` against a delayed ``backup``; first answer
        wins.  Only called for idempotent requests — the loser's work
        is wasted, never harmful."""
        results: "queue_module.Queue" = queue_module.Queue()

        def run(worker_id: int) -> None:
            results.put(
                self._attempt_worker(worker_id, method, path, body, headers)
            )

        threading.Thread(
            target=run, args=(primary,), daemon=True,
            name="repro-router-hedge-primary",
        ).start()
        deadline = time.monotonic() + self._request_timeout
        pending = 1
        hedged = False
        wait = self.hedge_ms / 1000.0
        while pending:
            try:
                outcome = results.get(
                    timeout=max(0.01, min(
                        wait, deadline - time.monotonic()
                    ))
                )
            except queue_module.Empty:
                if hedged or time.monotonic() >= deadline:
                    return None
                outcome = False  # sentinel: hedge fire, nothing read
            if outcome is False or (outcome is None and not hedged):
                if outcome is None:
                    pending -= 1
                self._count("hedged")
                hedged = True
                pending += 1
                wait = max(0.01, deadline - time.monotonic())
                threading.Thread(
                    target=run, args=(backup,), daemon=True,
                    name="repro-router-hedge-backup",
                ).start()
                continue
            pending -= 1
            if outcome is not None:
                if outcome[0] == backup:
                    self._count("hedged_wins")
                return outcome
        return None

    def forward(
        self,
        handler: _RouterHandler,
        method: str,
        path: str,
        body: bytes,
        headers: Dict[str, str],
        key: str,
    ) -> None:
        live = self.pool.live_ids()
        if not live:
            handler._reply_error(
                503, "NoWorkers", "no live workers to route to"
            )
            self._count("unroutable")
            return
        # Failover replay is only safe when re-execution is: a GET, or
        # a POST carrying an idempotency key (the worker replays the
        # stored byte-identical response instead of recomputing).
        idempotent = method == "GET" or bool(
            headers.get("X-Idempotency-Key")
        )
        preference = shard_preference(key, live)
        candidates = [
            worker_id for worker_id in preference
            if self.health_of(worker_id).allow()
        ]
        if not candidates:
            # Every worker ejected: routing *somewhere* beats a
            # guaranteed 503 — fall back to plain preference order.
            candidates = preference
        if idempotent and self.hedge_ms > 0 and len(candidates) >= 2:
            outcome = self._hedged_attempt(
                candidates[0], candidates[1], method, path, body, headers
            )
            if outcome is not None:
                worker_id, status, raw, response_headers = outcome
                self._count("routed", worker_id)
                handler._reply(
                    status, raw,
                    self._pick_return_headers(worker_id, response_headers),
                )
                return
            candidates = candidates[2:]
        attempts = 0
        for worker_id in candidates:
            if self._transport(worker_id) is None:
                # No known port yet (worker mid-restart): nothing was
                # sent, so skipping is safe even for non-idempotent
                # requests.
                continue
            attempts += 1
            outcome = self._attempt_worker(
                worker_id, method, path, body, headers
            )
            if outcome is None:
                # Worker unreachable (mid-restart or sick).  Replaying
                # elsewhere is only safe for idempotent requests: for
                # anything else the bytes may already have reached the
                # worker, and a replay could double-execute.
                if not idempotent:
                    self._count("unroutable")
                    handler._reply_error(
                        503, "NonIdempotentFailover",
                        "worker %d failed mid-request; refusing to replay "
                        "a non-idempotent request (add X-Idempotency-Key "
                        "to opt in to failover)" % worker_id,
                    )
                    return
                self._count("failovers")
                continue
            worker_id, status, raw, response_headers = outcome
            self._count("routed", worker_id)
            handler._reply(
                status, raw,
                self._pick_return_headers(worker_id, response_headers),
            )
            return
        handler._reply_error(
            503,
            "NoWorkers",
            "all %d route attempts failed for this request" % attempts,
        )
        self._count("unroutable")

    def _scrape_worker(
        self, worker_id: int, path: str
    ) -> Optional[Tuple[int, bytes]]:
        transport = self._transport(worker_id)
        if transport is None:
            return None
        try:
            status, raw, _ = transport.request(
                "GET", path, None, {"Accept": "application/json"}
            )
        except (OSError, http.client.HTTPException):
            return None
        return status, raw

    # -- aggregate endpoints -------------------------------------------
    def handle_readyz(self, handler: _RouterHandler) -> None:
        states: Dict[str, bool] = {}
        any_ready = False
        for worker_id in self.pool.live_ids():
            scraped = self._scrape_worker(worker_id, "/readyz")
            ready = scraped is not None and scraped[0] == 200
            states[str(worker_id)] = ready
            any_ready = any_ready or ready
        status = 200 if any_ready else 503
        handler._reply_json(
            status,
            {
                "status": "ready" if any_ready else "unavailable",
                "workers": states,
            },
        )

    def handle_stats(self, handler: _RouterHandler) -> None:
        workers: Dict[str, Any] = {}
        for worker_id in self.pool.live_ids():
            scraped = self._scrape_worker(worker_id, "/stats")
            if scraped is None:
                workers[str(worker_id)] = {"error": "unreachable"}
                continue
            try:
                workers[str(worker_id)] = json.loads(scraped[1])
            except ValueError:
                workers[str(worker_id)] = {"error": "bad stats payload"}
        with self._stats_lock:
            router = dict(
                self.counters,
                routed_by_worker={
                    str(k): v for k, v in sorted(self._per_worker.items())
                },
            )
        with self._health_lock:
            health = {
                str(worker_id): tracker.snapshot()
                for worker_id, tracker in sorted(self._health.items())
            }
        handler._reply_json(
            200,
            {
                "status": "ok",
                "router": router,
                "health": health,
                "pool": self.pool.snapshot(),
                "workers": workers,
            },
        )

    def handle_metrics(self, handler: _RouterHandler) -> None:
        """One merged Prometheus exposition over all workers.

        Family ``# HELP``/``# TYPE`` headers are emitted once; sample
        lines concatenate from every worker and stay distinct series
        because each worker stamps its ``worker`` constant label.
        """
        seen_headers = set()
        merged: List[str] = []
        scraped_any = False
        for worker_id in self.pool.live_ids():
            scraped = self._scrape_worker(worker_id, "/metrics")
            if scraped is None or scraped[0] != 200:
                continue
            scraped_any = True
            for line in scraped[1].decode("utf-8").splitlines():
                if line.startswith("#"):
                    if line in seen_headers:
                        continue
                    seen_headers.add(line)
                merged.append(line)
        if not scraped_any:
            handler._reply_error(503, "NoWorkers", "no worker scrapes")
            return
        handler._reply(
            200,
            ("\n".join(merged) + "\n").encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    def close(self) -> None:
        self.server_close()
        with self._transports_lock:
            transports = list(self._transports.values())
            self._transports.clear()
        for transport in transports:
            transport.close()


# ----------------------------------------------------------------------
# the CLI entry: supervise until SIGTERM
# ----------------------------------------------------------------------
def serve_pool(
    config: ServiceConfig,
    workers: int,
    router: bool = False,
    cache_config: Optional[Dict[str, Any]] = None,
) -> int:
    """``repro serve --workers N [--router]``: run until SIGINT/SIGTERM.

    Returns 0 when every worker drained and exited cleanly.
    """
    mode = "private" if router else None
    pool = WorkerPool(config, workers, mode=mode, cache_config=cache_config)
    pool.start()
    front: Optional[RouterServer] = None

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _terminate)
    clean = True
    try:
        if router:
            front = RouterServer(config, pool)
            print(
                "repro service router on %s (%d workers: %s)"
                % (
                    front.url,
                    workers,
                    ", ".join(
                        ":%d" % p for p in pool.worker_ports().values()
                    ),
                ),
                flush=True,
            )
            front.serve_forever(poll_interval=0.2)
        else:
            print(
                "repro service listening on %s (%d workers, %s mode)"
                % (pool.url, workers, pool.mode),
                flush=True,
            )
            while True:
                time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        if front is not None:
            front.close()
        clean = pool.terminate()
    if clean:
        print("repro service pool: shut down cleanly", flush=True)
        return 0
    print("repro service pool: worker(s) killed after drain timeout",
          flush=True)
    return 1
