"""Unit tests for the consolidated report builder."""

import json

import pytest

from repro.analysis import full_report


class TestFullReport:
    def test_text_contains_all_sections(self, oscillator):
        report = full_report(oscillator)
        text = report.to_text()
        assert "cycle time: 10" in text
        assert "dλ/dδ" in text
        assert "timing diagram" in text
        assert "#" in text  # waveform present

    def test_diagram_optional(self, oscillator):
        report = full_report(oscillator, include_diagram=False)
        assert report.diagram is None
        assert "timing diagram" not in report.to_text()

    def test_dict_is_json_serialisable(self, oscillator):
        payload = full_report(oscillator).to_dict()
        text = json.dumps(payload)
        parsed = json.loads(text)
        assert parsed["cycle_time"] == 10
        assert parsed["graph"]["border_events"] == ["a+", "b+"]

    def test_dict_fraction_encoding(self, muller_ring_graph):
        payload = full_report(muller_ring_graph, include_diagram=False).to_dict()
        assert payload["cycle_time"] == {"fraction": [20, 3]}

    def test_dict_critical_cycles_exhaustive(self, oscillator):
        payload = full_report(oscillator).to_dict()
        assert len(payload["critical_cycles"]) == 1
        cycle = payload["critical_cycles"][0]
        assert set(cycle["events"]) == {"a+", "c+", "a-", "c-"}
        assert cycle["length"] == 10

    def test_dict_slacks_complete(self, oscillator):
        payload = full_report(oscillator).to_dict()
        # 8 repetitive-core arcs carry slacks
        assert len(payload["slacks"]) == 8
        zero = [row for row in payload["slacks"] if row["slack"] == 0]
        assert len(zero) == 6

    def test_border_distance_rows(self, oscillator):
        payload = full_report(oscillator).to_dict()
        rows = payload["border_distances"]
        assert {(r["border_event"], r["period"], r["distance"]) for r in rows} == {
            ("a+", 1, 10),
            ("a+", 2, 10),
            ("b+", 1, 8),
            ("b+", 2, 9),
        }

    def test_cycle_time_property(self, oscillator):
        assert full_report(oscillator).cycle_time == 10


class TestCLIIntegration:
    def test_report_json(self, capsys):
        from repro.cli import main

        assert main(["report", "oscillator", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cycle_time"] == 10

    def test_report_full(self, capsys):
        from repro.cli import main

        assert main(["report", "oscillator", "--full"]) == 0
        out = capsys.readouterr().out
        assert "timing diagram" in out
