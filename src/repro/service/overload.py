"""Adaptive overload control: closed-loop limits and brownout.

PR 4 gave the daemon *static* knobs — ``--max-inflight`` and
``--max-queue-depth`` — that must be tuned by hand against the
hardware: too high and load turns into a latency cliff, too low and
capacity is wasted.  This module closes the loop, in the same spirit
as the paper's simulation method itself: observe the system's actual
timing behaviour and let the numbers, not a guess, set the bounds.

Two independent pieces, both stdlib-only and deterministic under an
injected clock so their control laws are unit-testable:

* :class:`AdaptiveLimiter` — an AIMD concurrency limiter driven by
  observed service latency against a windowed moving-minimum RTT.
  While latency stays near the no-queueing floor the limit creeps up
  additively (the capacity probe); once latency inflates past
  ``tolerance`` times the floor — the signature of GIL/queueing
  contention — the limit backs off multiplicatively.  A server-side
  deadline expiry inside compute is treated as a hard congestion
  signal.  The static ``--max-inflight`` knob survives as the hard
  *ceiling* the limit may never exceed, and ``min_limit`` keeps the
  service from choking itself off entirely.

* :class:`BrownoutController` — degradation-by-accuracy for the
  Monte-Carlo endpoint.  The paper's method is sampling-based, so its
  answer degrades *gracefully* with sample count: under sustained
  pressure the controller steps a degradation level up and the server
  shrinks ``samples`` geometrically toward a floor, answering a
  smaller, honestly-labelled sweep (``{"degraded": {"requested": S,
  "served": S'}}``) instead of a 429 or a blown deadline.  When
  pressure subsides the level steps back down.  Degradation is never
  silent and never cached.

The deadline-aware, priority/CoDel queue discipline that consumes the
limiter lives in :class:`repro.service.resilience.AdmissionQueue`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, Optional

__all__ = ["AdaptiveLimiter", "BrownoutController"]


class AdaptiveLimiter:
    """AIMD concurrency limit from observed latency vs a moving floor.

    ``observe(rtt_s, outcome)`` feeds one completed request:

    * ``outcome="timeout"`` (server-side deadline expired while
      computing) is a hard congestion signal — multiplicative decrease
      regardless of the RTT sample;
    * otherwise the sample is compared against ``tolerance`` times the
      windowed minimum RTT: above → multiplicative decrease (at most
      once per ``cooldown_s``, so one burst of slow completions does
      not collapse the limit to the floor), below → additive increase
      of ``increase_step`` per full window of ``limit`` samples
      (classic AIMD: probe one slot per "round trip" of traffic).

    ``limit()`` floors the continuous control value to an integer in
    ``[min_limit, ceiling]``.  All state is visible via
    :meth:`snapshot` for ``/stats`` and ``/metrics``.
    """

    def __init__(
        self,
        ceiling: int = 8,
        min_limit: int = 1,
        tolerance: float = 2.0,
        decrease_ratio: float = 0.7,
        increase_step: float = 1.0,
        rtt_window_s: float = 30.0,
        cooldown_s: float = 0.1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if ceiling < 1:
            raise ValueError("ceiling must be positive")
        if not 1 <= min_limit <= ceiling:
            raise ValueError("need 1 <= min_limit <= ceiling")
        if tolerance <= 1.0:
            raise ValueError("tolerance must exceed 1.0")
        if not 0.0 < decrease_ratio < 1.0:
            raise ValueError("decrease_ratio must be in (0, 1)")
        self.ceiling = ceiling
        self.min_limit = min_limit
        self.tolerance = tolerance
        self.decrease_ratio = decrease_ratio
        self.increase_step = increase_step
        self.rtt_window_s = rtt_window_s
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._limit = float(ceiling)
        #: (bucket_start, bucket_min) pairs; the window minimum is the
        #: min over live buckets — O(1) amortised, bounded memory.
        self._buckets: "deque[list]" = deque()
        self._bucket_span = max(rtt_window_s / 10.0, 1e-6)
        self._last_decrease = -float("inf")
        self._since_increase = 0
        self._last_rtt = 0.0
        self._counts: Dict[str, int] = {
            "samples": 0, "increases": 0, "decreases": 0, "timeouts": 0,
        }

    # ------------------------------------------------------------------
    def _note_rtt(self, rtt_s: float, now: float) -> None:
        while self._buckets and self._buckets[0][0] <= now - self.rtt_window_s:
            self._buckets.popleft()
        if self._buckets and now - self._buckets[-1][0] < self._bucket_span:
            bucket = self._buckets[-1]
            if rtt_s < bucket[1]:
                bucket[1] = rtt_s
        else:
            self._buckets.append([now, rtt_s])

    def _min_rtt_locked(self) -> Optional[float]:
        if not self._buckets:
            return None
        return min(bucket[1] for bucket in self._buckets)

    def _decrease(self, now: float) -> None:
        if now - self._last_decrease < self.cooldown_s:
            return
        self._last_decrease = now
        self._since_increase = 0
        self._limit = max(float(self.min_limit),
                          self._limit * self.decrease_ratio)
        self._counts["decreases"] += 1

    # ------------------------------------------------------------------
    def observe(self, rtt_s: float, outcome: str = "ok") -> None:
        """Feed one completed request's service time and outcome."""
        now = self._clock()
        with self._lock:
            self._counts["samples"] += 1
            self._last_rtt = rtt_s
            if outcome == "timeout":
                self._counts["timeouts"] += 1
                self._decrease(now)
                return
            self._note_rtt(rtt_s, now)
            floor = self._min_rtt_locked()
            if floor is not None and rtt_s > floor * self.tolerance:
                self._decrease(now)
                return
            self._since_increase += 1
            if self._since_increase >= max(1, int(self._limit)):
                self._since_increase = 0
                if self._limit < self.ceiling:
                    self._limit = min(float(self.ceiling),
                                      self._limit + self.increase_step)
                    self._counts["increases"] += 1

    def limit(self) -> int:
        """The current integer concurrency limit."""
        with self._lock:
            return max(self.min_limit, min(self.ceiling, int(self._limit)))

    def min_rtt(self) -> Optional[float]:
        with self._lock:
            return self._min_rtt_locked()

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            floor = self._min_rtt_locked()
            return {
                "limit": max(self.min_limit,
                             min(self.ceiling, int(self._limit))),
                "raw_limit": self._limit,
                "ceiling": self.ceiling,
                "min_limit": self.min_limit,
                "min_rtt_ms": None if floor is None else floor * 1000.0,
                "last_rtt_ms": self._last_rtt * 1000.0,
                "samples": self._counts["samples"],
                "increases": self._counts["increases"],
                "decreases": self._counts["decreases"],
                "timeouts": self._counts["timeouts"],
            }


class BrownoutController:
    """Step a degradation level under sustained pressure.

    ``update(pressure)`` feeds one boolean pressure reading (the
    caller's signal — queued waiters, limiter at its floor, recent
    sheds).  An exponentially weighted average of those readings must
    stay above ``on_threshold`` to ratchet the level up, and drop
    below ``off_threshold`` to step it back down; each step is
    separated by at least ``hold_s`` so one burst never slams the
    service to the deepest level.

    ``degrade(requested)`` maps a requested Monte-Carlo sample count
    to the served one: ``requested * shrink**level``, floored at
    ``floor`` samples (never *raised* above the request).  Level 0 is
    the identity — brownout is inert until pressure is sustained.
    """

    def __init__(
        self,
        floor: int = 64,
        shrink: float = 0.5,
        max_level: int = 4,
        ewma_alpha: float = 0.3,
        on_threshold: float = 0.7,
        off_threshold: float = 0.2,
        hold_s: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if floor < 1:
            raise ValueError("floor must be positive")
        if not 0.0 < shrink < 1.0:
            raise ValueError("shrink must be in (0, 1)")
        if max_level < 1:
            raise ValueError("max_level must be positive")
        if not 0.0 <= off_threshold < on_threshold <= 1.0:
            raise ValueError("need 0 <= off_threshold < on_threshold <= 1")
        self.floor = floor
        self.shrink = shrink
        self.max_level = max_level
        self.ewma_alpha = ewma_alpha
        self.on_threshold = on_threshold
        self.off_threshold = off_threshold
        self.hold_s = hold_s
        self._clock = clock
        self._lock = threading.Lock()
        self._level = 0
        self._ewma = 0.0
        self._next_step = -float("inf")
        self._counts: Dict[str, int] = {
            "updates": 0, "degraded_requests": 0, "samples_saved": 0,
            "level_ups": 0, "level_downs": 0,
        }

    # ------------------------------------------------------------------
    def update(self, pressure: bool) -> int:
        """Feed one pressure reading; returns the (new) level."""
        now = self._clock()
        with self._lock:
            self._counts["updates"] += 1
            self._ewma += self.ewma_alpha * (
                (1.0 if pressure else 0.0) - self._ewma
            )
            if now >= self._next_step:
                if self._ewma > self.on_threshold and self._level < self.max_level:
                    self._level += 1
                    self._counts["level_ups"] += 1
                    self._next_step = now + self.hold_s
                elif self._ewma < self.off_threshold and self._level > 0:
                    self._level -= 1
                    self._counts["level_downs"] += 1
                    self._next_step = now + self.hold_s
            return self._level

    def degrade(self, requested: int) -> int:
        """The sample count actually served for ``requested``."""
        with self._lock:
            if self._level == 0:
                return requested
            served = int(requested * self.shrink ** self._level)
            served = max(served, min(requested, self.floor))
            if served < requested:
                self._counts["degraded_requests"] += 1
                self._counts["samples_saved"] += requested - served
            return served

    @property
    def level(self) -> int:
        with self._lock:
            return self._level

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "level": self._level,
                "max_level": self.max_level,
                "factor": self.shrink ** self._level,
                "floor": self.floor,
                "pressure_ewma": self._ewma,
                "updates": self._counts["updates"],
                "level_ups": self._counts["level_ups"],
                "level_downs": self._counts["level_downs"],
                "degraded_requests": self._counts["degraded_requests"],
                "samples_saved": self._counts["samples_saved"],
            }
