"""Timing simulation of a Timed Signal Graph (Section IV).

Two simulations are defined over the unfolding:

* the (global) **timing simulation** ``t(f)``::

      t(f) = 0                                  if f in I_u
      t(f) = max{ t(e) + delta | e -delta-> f }   otherwise

  where ``I_u`` is the set of unfolding instances with no
  predecessors;

* the **event-initiated timing simulation** ``t_g(f)`` which wipes out
  all past history concurrent with or preceding the initiating
  instance ``g``: instances not reachable from ``g`` get time 0 *and
  their out-arcs are neglected*; reachable instances maximise over
  predecessors that are ``g`` itself or successors of ``g``.

Both simulations expose the argmax predecessor of every instance, so
the longest (critical) path through the unfolding can be backtracked —
this is how the main algorithm recovers the critical cycle
(Proposition 1 establishes that ``t_g(f)`` equals the longest path
length from ``g`` to ``f``).

Since the compiled-kernel rework the default execution engine is
:mod:`repro.core.kernel`: times live in a flat list indexed by
``event_id + period * n`` instead of a dict keyed by ``(event, index)``
tuples, and argmax predecessors are recovered lazily on demand.  The
``kernel`` constructor argument selects the engine:

* ``"auto"`` (default) — exact kernel for int/Fraction delays, float64
  kernel when float delays are present;
* ``"exact"`` / ``"float"`` — force one compiled kernel;
* ``"legacy"`` — the original dict-based reference loops, kept for
  cross-validation (see ``tests/core/test_kernel_properties.py``).

All query methods behave identically across engines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .arithmetic import Number
from .errors import SimulationError
from .events import event_label
from .kernel import (
    NEG_INF,
    argmax_slot,
    compiled_graph,
    resolve_kernel,
    run_global,
    run_initiated,
)
from .signal_graph import Event, TimedSignalGraph
from .unfolding import Instance, Unfolding, instance_label


class _SimulationBase:
    """Shared storage, queries and backtracking for both simulation kinds.

    Two storage backends sit behind one query API: the compiled kernels
    fill ``_flat`` (a slot-indexed list with ``-inf`` marking undefined
    instances), while the legacy engine fills the ``_times``/``_argmax``
    dicts exactly as the original implementation did.
    """

    def __init__(
        self,
        graph: TimedSignalGraph,
        periods: int,
        unfolding: Optional[Unfolding],
        kernel: str = "auto",
    ):
        if periods < 0:
            raise SimulationError("periods must be non-negative, got %d" % periods)
        self.graph = graph
        self.periods = periods
        self.kernel = resolve_kernel(graph, kernel)
        self._unfolding = unfolding
        self._times: Optional[Dict[Instance, Number]] = None
        self._argmax: Optional[Dict[Instance, Optional[Instance]]] = None
        self._flat: Optional[list] = None
        self._cg = None
        self._argmax_cache: Optional[dict] = None
        if self.kernel == "legacy":
            self._times = {}
            self._argmax = {}
            if self._unfolding is None:
                self._unfolding = Unfolding(graph)
        else:
            # Raises NotLiveError for non-live graphs, like Unfolding.
            self._cg = compiled_graph(graph)
            self._argmax_cache = {}

    @property
    def unfolding(self) -> Unfolding:
        """The (lazily created) unfolding backing this simulation."""
        if self._unfolding is None:
            self._unfolding = Unfolding(self.graph)
        return self._unfolding

    # -- queries -------------------------------------------------------
    def _slot(self, event: Event, index: int) -> int:
        return self._cg.slot(event, index, self.periods)

    def defined(self, event: Event, index: int = 0) -> bool:
        """Was a time computed for instance ``(event, index)``?"""
        if self._flat is None:
            return (event, index) in self._times
        slot = self._slot(event, index)
        return slot >= 0 and self._flat[slot] != NEG_INF

    def time(self, event: Event, index: int = 0) -> Number:
        """Occurrence time of instance ``(event, index)``.

        Raises :class:`~repro.core.errors.SimulationError` for
        instances outside the simulated prefix (or, for event-initiated
        simulations, not reachable from the initiating instance).
        """
        if self._flat is None:
            try:
                return self._times[(event, index)]
            except KeyError:
                raise SimulationError(
                    "no simulated time for %s" % instance_label((event, index))
                ) from None
        slot = self._slot(event, index)
        if slot >= 0:
            value = self._flat[slot]
            if value != NEG_INF:
                return value
        raise SimulationError(
            "no simulated time for %s" % instance_label((event, index))
        )

    @property
    def times(self) -> Dict[Instance, Number]:
        """All computed occurrence times, keyed by instance."""
        if self._flat is None:
            return dict(self._times)
        cg = self._cg
        flat = self._flat
        order = cg.order
        n = cg.n
        result: Dict[Instance, Number] = {}
        for period in range(self.periods + 1):
            kn = period * n
            ids = range(n) if period == 0 else cg.rep_ids
            for tid in ids:
                value = flat[tid + kn]
                if value != NEG_INF:
                    result[(order[tid], period)] = value
        return result

    def predecessor(self, instance: Instance) -> Optional[Instance]:
        """The argmax predecessor of ``instance`` on the longest path."""
        if self._flat is None:
            return self._argmax.get(instance)
        event, index = instance
        slot = self._slot(event, index)
        if slot < 0 or self._flat[slot] == NEG_INF:
            return None
        cache = self._argmax_cache
        if slot not in cache:
            pred_slot = argmax_slot(
                self._cg, self._flat, slot, self.kernel == "float"
            )
            cache[slot] = (
                None if pred_slot is None else self._cg.instance_of(pred_slot)
            )
        return cache[slot]

    def critical_path(self, event: Event, index: int = 0) -> List[Instance]:
        """Longest path ending at ``(event, index)``, earliest first.

        Follows argmax predecessors back to an instance with no
        predecessor (time zero).
        """
        if not self.defined(event, index):
            raise SimulationError(
                "no simulated time for %s" % instance_label((event, index))
            )
        if self._flat is not None:
            # Backtrack in slot space: critical paths span every period,
            # so skipping the per-step instance tuples and cache lookups
            # matters for long unfoldings.
            cg = self._cg
            flat = self._flat
            float_mode = self.kernel == "float"
            slots: List[int] = []
            slot: Optional[int] = self._slot(event, index)
            while slot is not None:
                slots.append(slot)
                slot = argmax_slot(cg, flat, slot, float_mode)
            slots.reverse()
            return [cg.instance_of(position) for position in slots]
        path: List[Instance] = []
        instance: Optional[Instance] = (event, index)
        while instance is not None:
            path.append(instance)
            instance = self.predecessor(instance)
        path.reverse()
        return path

    def signal_history(self) -> Dict[Event, List[Tuple[int, Number]]]:
        """Per-event list of ``(index, time)`` pairs, sorted by index."""
        history: Dict[Event, List[Tuple[int, Number]]] = {}
        for (event, index), value in self.times.items():
            history.setdefault(event, []).append((index, value))
        for pairs in history.values():
            pairs.sort()
        return history

    def table(self) -> List[Tuple[str, Number]]:
        """Instances with times, ordered by time then label (for display)."""
        rows = [
            (instance_label(instance), value)
            for instance, value in self.times.items()
        ]
        rows.sort(key=lambda row: (float(row[1]), row[0]))
        return rows


class TimingSimulation(_SimulationBase):
    """The global timing simulation ``t(f)`` over ``periods`` periods.

    Example 3 of the paper is reproduced by::

        sim = TimingSimulation(oscillator(), periods=1)
        sim.time(Transition.parse("a-"), 0)   # -> 8
    """

    def __init__(
        self,
        graph: TimedSignalGraph,
        periods: int,
        unfolding: Optional[Unfolding] = None,
        kernel: str = "auto",
    ):
        super().__init__(graph, periods, unfolding, kernel)
        if self.kernel == "legacy":
            self._run_legacy()
        else:
            self._flat = run_global(self._cg, periods, self.kernel == "float")

    def _run_legacy(self) -> None:
        times = self._times
        argmax = self._argmax
        unfolding = self.unfolding
        for period_index in range(self.periods + 1):
            for event, index in unfolding.period(period_index):
                best: Optional[Number] = None
                best_pred: Optional[Instance] = None
                for source, tokens, delay, source_repeats in (
                    unfolding.compact_in_arcs(event)
                ):
                    source_index = index - tokens
                    if source_index < 0 or (source_index > 0 and not source_repeats):
                        continue
                    candidate = times[(source, source_index)] + delay
                    if best is None or candidate > best:
                        best = candidate
                        best_pred = (source, source_index)
                times[(event, index)] = 0 if best is None else best
                argmax[(event, index)] = best_pred


class EventInitiatedSimulation(_SimulationBase):
    """The ``g``-initiated timing simulation ``t_g(f)`` (Section IV-B).

    ``initiator`` names the Signal Graph event ``g`` whose instance 0
    starts the simulation.  Instances not reachable from ``(g, 0)`` are
    treated as having occurred in the past: they are *not* assigned
    times here (``defined`` returns False; the paper assigns them 0)
    and their out-arcs are neglected.

    Example 4 of the paper is reproduced by::

        sim = EventInitiatedSimulation(oscillator(), "b+", periods=1)
        sim.time(Transition.parse("c-"), 0)   # -> 7
    """

    def __init__(
        self,
        graph: TimedSignalGraph,
        initiator,
        periods: int,
        unfolding: Optional[Unfolding] = None,
        kernel: str = "auto",
    ):
        super().__init__(graph, periods, unfolding, kernel)
        from .events import as_event

        self.initiator = as_event(initiator)
        if not graph.has_event(self.initiator):
            raise SimulationError(
                "initiating event %s is not in the graph"
                % event_label(self.initiator)
            )
        if self.kernel == "legacy":
            self._run_legacy()
        else:
            self._flat = run_initiated(
                self._cg,
                self._cg.id_of[self.initiator],
                periods,
                self.kernel == "float",
            )

    @property
    def origin(self) -> Instance:
        """The initiating instance ``(g, 0)``."""
        return (self.initiator, 0)

    def reachable(self, event: Event, index: int = 0) -> bool:
        """Is ``(event, index)`` a (reflexive) successor of the origin?"""
        return self.defined(event, index)

    def _run_legacy(self) -> None:
        times = self._times
        argmax = self._argmax
        unfolding = self.unfolding
        origin = self.origin
        times[origin] = 0
        argmax[origin] = None
        started = False
        for period_index in range(self.periods + 1):
            for instance in unfolding.period(period_index):
                if not started:
                    # Instances topologically before the origin can
                    # never be its successors; skip cheaply.
                    if instance == origin:
                        started = True
                    continue
                event, index = instance
                best: Optional[Number] = None
                best_pred: Optional[Instance] = None
                for source, tokens, delay, source_repeats in (
                    unfolding.compact_in_arcs(event)
                ):
                    source_index = index - tokens
                    if source_index < 0 or (source_index > 0 and not source_repeats):
                        continue
                    pred_time = times.get((source, source_index))
                    if pred_time is None:
                        continue  # concurrent-or-earlier: neglected
                    candidate = pred_time + delay
                    if best is None or candidate > best:
                        best = candidate
                        best_pred = (source, source_index)
                if best is not None:
                    times[instance] = best
                    argmax[instance] = best_pred

    def initiator_times(self) -> List[Tuple[int, Number]]:
        """Times of later initiator instances: ``[(i, t_g0(g_i)), ...]``.

        Only reachable instances appear (``i`` starting at 1).
        """
        result = []
        if self._flat is None:
            for index in range(1, self.periods + 1):
                instance = (self.initiator, index)
                if instance in self._times:
                    result.append((index, self._times[instance]))
            return result
        flat = self._flat
        n = self._cg.n
        tid = self._cg.id_of[self.initiator]
        for index in range(1, self.periods + 1):
            value = flat[tid + index * n]
            if value != NEG_INF:
                result.append((index, value))
        return result
