"""Unit tests for performance reports (potentials, slacks)."""

from fractions import Fraction

import pytest

from repro.analysis import analyze, steady_state_potentials
from repro.core import TimedSignalGraph, Transition
from repro.core.errors import SignalGraphError


def T(text):
    return Transition.parse(text)


class TestPotentials:
    def test_constraints_hold(self, oscillator):
        report = analyze(oscillator)
        p = report.potentials
        lam = report.cycle_time
        repetitive = oscillator.repetitive_events
        for arc in oscillator.arcs:
            if arc.source in repetitive and arc.target in repetitive:
                assert p[arc.target] >= p[arc.source] + arc.delay - lam * arc.tokens

    def test_wrong_lambda_rejected(self, oscillator):
        with pytest.raises(SignalGraphError):
            steady_state_potentials(oscillator, 5)  # below the true λ

    def test_larger_lambda_accepted(self, oscillator):
        # a feasible (loose) period also admits a schedule
        potentials = steady_state_potentials(oscillator, 12)
        assert len(potentials) == 6

    def test_exact_arithmetic(self, muller_ring_graph):
        report = analyze(muller_ring_graph)
        assert all(
            isinstance(value, (int, Fraction))
            for value in report.potentials.values()
        )


class TestSlacks:
    def test_nonnegative(self, oscillator):
        report = analyze(oscillator)
        assert all(slack >= 0 for slack in report.slacks.values())

    def test_known_values(self, oscillator):
        report = analyze(oscillator)
        assert report.slack_of("b+", "c+") == 2
        assert report.slack_of("b-", "c-") == 2
        assert report.slack_of("a+", "c+") == 0

    def test_critical_arcs(self, oscillator):
        report = analyze(oscillator)
        critical = {(str(a.source), str(a.target)) for a in report.critical_arcs}
        assert ("a+", "c+") in critical
        assert ("b+", "c+") not in critical

    def test_all_critical_cycles_exhaustive(self, oscillator):
        report = analyze(oscillator)
        cycles = report.all_critical_cycles()
        assert len(cycles) == 1
        assert cycles[0].length == 10

    def test_tied_cycles_all_found(self):
        g = TimedSignalGraph()
        g.add_arc("h+", "x+", 5)
        g.add_arc("x+", "h+", 5, marked=True)
        g.add_arc("h+", "y+", 6)
        g.add_arc("y+", "h+", 4, marked=True)
        report = analyze(g)
        assert len(report.all_critical_cycles()) == 2

    def test_muller_ring_critical_subgraph(self, muller_ring_graph):
        # The critical cycle threads all 20 events via the inverters;
        # the 10 direct stage-to-stage data arcs are the non-critical
        # ones, each carrying slack 1/3.
        report = analyze(muller_ring_graph)
        assert len(report.critical_arcs) == 20
        slack_values = {
            slack for slack in report.slacks.values() if slack != 0
        }
        assert slack_values == {Fraction(1, 3)}


class TestSchedule:
    def test_schedule_rows(self, oscillator):
        report = analyze(oscillator)
        rows = report.schedule(periods=2)
        assert len(rows) == 12  # 6 repetitive events x 2 periods
        times = [float(t) for t, _ in rows]
        assert times == sorted(times)

    def test_schedule_respects_cycle_time(self, oscillator):
        report = analyze(oscillator)
        one = dict((label, time) for time, label in report.schedule(periods=1))
        two = report.schedule(periods=2)
        for time, label in two:
            base = one[label]
            assert time == base or time == base + report.cycle_time

    def test_summary_text(self, oscillator):
        text = analyze(oscillator).summary()
        assert "cycle time: 10" in text
        assert "critical" in text
