"""Unit tests for SR, LUT and generalised-C parametric gates."""

import pytest

from repro.circuits.gates import check_arity, evaluate, is_state_holding
from repro.core.errors import NetlistError


class TestSRLatch:
    def test_set(self):
        assert evaluate("SR", [1, 0], 0) == 1

    def test_reset(self):
        assert evaluate("SR", [0, 1], 1) == 0

    def test_hold(self):
        assert evaluate("SR", [0, 0], 0) == 0
        assert evaluate("SR", [0, 0], 1) == 1

    def test_both_high_holds(self):
        assert evaluate("SR", [1, 1], 0) == 0
        assert evaluate("SR", [1, 1], 1) == 1

    def test_exactly_two_inputs(self):
        with pytest.raises(NetlistError):
            check_arity("SR", 3)
        with pytest.raises(NetlistError):
            check_arity("SR", 1)

    def test_state_holding(self):
        assert is_state_holding("SR")


class TestLUT:
    def test_identity(self):
        # 1-input LUT with mask 0b10: output = input
        assert evaluate("LUT:2", [0], 0) == 0
        assert evaluate("LUT:2", [1], 0) == 1

    def test_nor_as_lut(self):
        # 2-input NOR: only combination 00 (index 0) outputs 1 -> mask 1
        for a in (0, 1):
            for b in (0, 1):
                assert evaluate("LUT:1", [a, b], 0) == evaluate("NOR", [a, b], 0)

    def test_three_input_majority_as_lut(self):
        # MAJ3 on-set: indices 3,5,6,7 -> mask 0b11101000 = 0xE8
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    assert (
                        evaluate("LUT:E8", [a, b, c], 0)
                        == evaluate("MAJ", [a, b, c], 0)
                    )

    def test_combinational(self):
        assert not is_state_holding("LUT:2")

    def test_bad_mask_rejected(self):
        with pytest.raises(NetlistError):
            evaluate("LUT:zz", [0], 0)

    def test_case_insensitive(self):
        assert evaluate("lut:e8", [1, 1, 0], 0) == 1


class TestGeneralizedC:
    def test_plain_c_as_gc(self):
        # 2-input C: set on 11 (index 3 -> mask 8), reset on 00 (mask 1)
        for a in (0, 1):
            for b in (0, 1):
                for current in (0, 1):
                    assert (
                        evaluate("GC:8:1", [a, b], current)
                        == evaluate("C", [a, b], current)
                    )

    def test_sr_as_gc(self):
        # (set, reset): set on 01 (index 1 -> mask 2), reset on 10 (mask 4)
        for s in (0, 1):
            for r in (0, 1):
                for current in (0, 1):
                    assert (
                        evaluate("GC:2:4", [s, r], current)
                        == evaluate("SR", [s, r], current)
                    )

    def test_asymmetric_cell(self):
        # set when a=1 regardless of b (indices 1,3 -> mask A);
        # reset only when both low (mask 1)
        assert evaluate("GC:A:1", [1, 0], 0) == 1
        assert evaluate("GC:A:1", [0, 1], 0) == 0  # hold
        assert evaluate("GC:A:1", [0, 1], 1) == 1  # hold
        assert evaluate("GC:A:1", [0, 0], 1) == 0

    def test_state_holding(self):
        assert is_state_holding("GC:8:1")

    def test_overlapping_masks_rejected(self):
        with pytest.raises(NetlistError):
            evaluate("GC:3:1", [0, 0], 0)

    def test_malformed_rejected(self):
        with pytest.raises(NetlistError):
            evaluate("GC:8", [1, 1], 0)
        with pytest.raises(NetlistError):
            evaluate("GC:x:1", [1, 1], 0)


class TestParametricGatesInCircuits:
    def test_oscillator_with_lut_gates_extracts_identically(self):
        """Rebuild Figure 1a using LUT-NORs and a GC C-element; the
        extracted graph must equal the original."""
        from repro.circuits.extraction import extract_signal_graph
        from repro.circuits.library import oscillator_tsg
        from repro.circuits.netlist import Netlist

        n = Netlist("lut-oscillator")
        n.add_input("e", initial=1)
        n.add_gate("a", "LUT:1", ["e", "c"], delays={"e": 2, "c": 2}, initial=0)
        n.add_gate("b", "LUT:1", ["f", "c"], delays={"f": 1, "c": 1}, initial=0)
        n.add_gate("c", "GC:8:1", ["a", "b"], delays={"a": 3, "b": 2}, initial=0)
        n.add_gate("f", "LUT:2", ["e"], delays={"e": 3}, initial=1)
        n.add_stimulus("e", 0)
        extracted = extract_signal_graph(n)
        reference = oscillator_tsg()
        # structural equality modulo the graph name
        assert extracted.num_arcs == reference.num_arcs
        for arc in reference.arcs:
            twin = extracted.arc(arc.source, arc.target)
            assert twin.delay == arc.delay
            assert twin.marked == arc.marked

    def test_lut_inverter_ring_end_to_end(self):
        """A ring of LUT-encoded inverters extracts and analyses like
        the built-in NOT gates."""
        from repro.circuits.extraction import extract_signal_graph
        from repro.circuits.netlist import Netlist
        from repro.core import compute_cycle_time

        n = Netlist("lut-ring")
        values = [0, 1, 0]
        for i in range(3):
            prev = (i - 1) % 3
            n.add_gate("i%d" % i, "LUT:1", ["i%d" % prev],
                       delays=2 + i, initial=values[i])
        graph = extract_signal_graph(n)
        assert compute_cycle_time(graph).cycle_time == 2 * (2 + 3 + 4)

    def test_buffer_tap_breaks_speed_independence(self):
        """Tapping an oscillator with a plain buffer is NOT
        speed-independent: in some interleaving the oscillator edge
        retracts before the buffer fires, disabling it — the
        state-space checker must catch this (and does, with a
        witness)."""
        from repro.circuits.netlist import Netlist
        from repro.circuits.state_space import explore
        from repro.core.errors import NotSemiModularError

        n = Netlist("tapped-ring")
        n.add_gate("i0", "NOT", ["i2"], delays=2, initial=0)
        n.add_gate("i1", "NOT", ["i0"], delays=2, initial=1)
        n.add_gate("i2", "NOT", ["i1"], delays=2, initial=0)
        n.add_gate("q", "BUF", ["i0"], delays={"i0": 1}, initial=0)
        with pytest.raises(NotSemiModularError) as info:
            explore(n)
        assert info.value.signal == "q"
