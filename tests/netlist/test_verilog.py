"""Structural-Verilog front end: parse, escaped names, round-trips."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.errors import FormatError
from repro.netlist import (
    load_corpus,
    parse_bench,
    parse_verilog,
    write_bench,
    write_verilog,
)

from .test_bench import random_networks

MODULE = """
// a two-gate cone
module cone (a, b, y);
  input a, b;
  output y;
  wire w;
  and g0 (w, a, b);
  not g1 (y, w);
endmodule
"""


class TestParsing:
    def test_basic_module(self):
        network = parse_verilog(MODULE)
        assert network.name == "cone"
        assert network.inputs == ["a", "b"]
        assert network.outputs == ["y"]
        assert network.gate("w").gate_type == "AND"
        assert network.gate("y").gate_type == "NOT"

    def test_dff_instance(self):
        network = parse_verilog(
            "module m (d, q); input d; output q;\n"
            "  dff r0 (q, d);\nendmodule\n"
        )
        assert network.gate("q").gate_type == "DFF"

    def test_unknown_primitive_rejected(self):
        with pytest.raises(FormatError):
            parse_verilog(
                "module m (a, y); input a; output y;\n"
                "  mystery g (y, a);\nendmodule\n"
            )

    def test_missing_semicolon_rejected(self):
        with pytest.raises(FormatError):
            parse_verilog("module m (a); input a\nendmodule\n")


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(random_networks())
    def test_parse_write_parse_fixpoint(self, network):
        text = write_verilog(network)
        reparsed = parse_verilog(text)
        assert write_verilog(reparsed) == text

    @settings(max_examples=40, deadline=None)
    @given(random_networks())
    def test_verilog_round_trip_equals_bench_round_trip(self, network):
        """The two front ends must agree on the same circuit."""
        via_verilog = parse_verilog(write_verilog(network))
        via_bench = parse_bench(write_bench(network))
        assert via_verilog == via_bench

    @pytest.mark.parametrize("name", ["c17", "rca8", "sreg16"])
    def test_corpus_cross_format(self, name):
        network = load_corpus(name)
        assert parse_verilog(write_verilog(network)) == network
