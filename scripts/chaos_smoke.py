#!/usr/bin/env python
"""Chaos smoke test: the daemon's failure behaviour stays bounded.

Spawns ``python -m repro serve --chaos ...`` with seeded latency,
error, cache-corruption and slow-kernel injection plus a deliberately
tiny admission queue, then

1. warms 12 distinct results onto the (corrupting) disk tier and reads
   them back — every corrupt entry must be detected by checksum,
   counted, evicted, and the result recomputed bit-identically, with
   the disk tier tripping into degraded memory-only mode;
2. fires a 200-request seeded storm from 8 threads (a fifth of the
   requests carry a 40 ms deadline) and requires every request to be
   *answered* — success or a structured 429/503/504 — never a hang,
   transport error, 500, or traceback, with p99 wall time bounded;
3. asserts `/stats` reports nonzero ``shed``, ``expired`` and
   ``corrupt_evicted`` counters and the degraded flag;
4. replays one idempotency-keyed request and requires byte-identical
   bodies;
5. sends SIGTERM while a request is in flight and requires the
   response to *drain* (complete) and the daemon to exit 0 cleanly.

Exit code 0 means every bound held; this is the CI chaos-smoke job.

The same harness can drive a sharded deployment: ``--workers 2
--router`` runs the storm through ``repro serve --workers 2 --router``
(topology-affinity router in front of two private workers) and
aggregates the per-worker ``/stats`` blocks when checking counters.

Usage::

    PYTHONPATH=src python scripts/chaos_smoke.py [--workers N] [--router]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request

ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.circuits.library import muller_ring_tsg  # noqa: E402
from repro.io.json_io import graph_to_dict  # noqa: E402
from repro.service.client import (  # noqa: E402
    DeadlineExceededError,
    ServerSaturatedError,
    ServiceClient,
    ServiceError,
    free_port,
)
from repro.service.resilience import RetryPolicy  # noqa: E402

CHAOS = (
    "latency:p=0.35,ms=120,site=handler;"
    "error:p=0.08,site=handler;"
    "corrupt:p=1,site=disk;"
    "slowkernel:p=0.2,ms=40;"
    "seed=11"
)
STORM_REQUESTS = 200
STORM_THREADS = 8
RING_SIZES = (3, 4, 5, 6, 7, 8)
P99_BOUND_S = 8.0


class Failure(Exception):
    pass


def check(condition, message):
    if not condition:
        raise Failure(message)


def worker_blocks(stats):
    """Per-daemon stats blocks: [stats] solo, the worker blocks when
    /stats came from the router (shape: {"router": ..., "workers": ...})."""
    if "router" in stats and "workers" in stats:
        return [
            block for block in stats["workers"].values()
            if isinstance(block, dict) and "admission" in block
        ]
    return [stats]


def total_inflight(stats):
    return sum(
        block["admission"]["inflight"] for block in worker_blocks(stats)
    )


def make_client(url, seed, retries=4):
    return ServiceClient(
        url,
        timeout=20,
        retries=retries,
        retry_policy=RetryPolicy(retries=retries, base=0.05, cap=0.5,
                                 rng=random.Random(seed)),
    )


def warm_and_corrupt_disk(url):
    """Fill the disk tier with 12 results, then re-read them through
    100% corruption: checksum evictions + deterministic recompute."""
    client = make_client(url, seed=999)
    ring = muller_ring_tsg(3)
    first_pass = {}
    for index in range(12):
        result = client.montecarlo(ring, samples=50, seed=100 + index)
        first_pass[index] = (result["mean"], result["std"])
    # Memory LRU holds only 4 results: most re-reads must fall through
    # to the (corrupting) disk tier and be recomputed.
    for index in range(12):
        result = client.montecarlo(ring, samples=50, seed=100 + index)
        check(
            (result["mean"], result["std"]) == first_pass[index],
            "recomputed result after corrupt eviction diverged "
            "(seed %d)" % (100 + index),
        )
    return len(first_pass)


def storm(url):
    """200 seeded mixed requests from 8 threads; every one answered."""
    graphs = {size: muller_ring_tsg(size) for size in RING_SIZES}
    tasks = list(range(STORM_REQUESTS))
    lock = threading.Lock()
    outcomes = {}
    durations = []
    montecarlo_bodies = {}

    def run_worker(worker_index):
        client = make_client(url, seed=worker_index)
        while True:
            with lock:
                if not tasks:
                    return
                index = tasks.pop()
            graph = graphs[RING_SIZES[index % len(RING_SIZES)]]
            tight = index % 5 == 0
            timeout_ms = 40 if tight else 15000
            started = time.monotonic()
            try:
                if index % 13 == 0:
                    client.analyze(graph, timeout_ms=timeout_ms)
                    outcome = "ok"
                else:
                    signature = (index % len(RING_SIZES), index % 3, tight)
                    reply = client.montecarlo(
                        graph, samples=200, seed=index % 3,
                        timeout_ms=timeout_ms,
                    )
                    outcome = "ok"
                    body = {
                        key: value for key, value in reply.items()
                        if key not in ("cached",)
                    }
                    with lock:
                        montecarlo_bodies.setdefault(signature, []).append(body)
            except DeadlineExceededError:
                outcome = "deadline_504"
            except ServerSaturatedError:
                outcome = "saturated_429"
            except ServiceError as error:
                if error.status == 503:
                    outcome = "injected_503"
                else:
                    outcome = "UNBOUNDED:%s status=%d" % (error.kind,
                                                          error.status)
            finally:
                elapsed = time.monotonic() - started
            with lock:
                outcomes[outcome] = outcomes.get(outcome, 0) + 1
                durations.append(elapsed)

    threads = [
        threading.Thread(target=run_worker, args=(i,))
        for i in range(STORM_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    check(len(durations) == STORM_REQUESTS, "lost requests: %d answered"
          % len(durations))
    unbounded = {k: v for k, v in outcomes.items() if k.startswith("UNBOUNDED")}
    check(not unbounded, "unbounded failures: %r" % unbounded)
    check(outcomes.get("ok", 0) >= STORM_REQUESTS // 2,
          "too few successes: %r" % outcomes)
    durations.sort()
    p99 = durations[int(0.99 * (len(durations) - 1))]
    check(p99 < P99_BOUND_S,
          "p99 latency %.2fs exceeds %.1fs bound" % (p99, P99_BOUND_S))

    # Bit-identical results for identical logical requests, across
    # cache hits, coalesced sweeps and post-corruption recomputes.
    for signature, bodies in montecarlo_bodies.items():
        for body in bodies[1:]:
            check(body == bodies[0],
                  "divergent results for request signature %r" % (signature,))
    return outcomes, p99


def replay_bit_identical(url):
    body = json.dumps({
        "graph": graph_to_dict(muller_ring_tsg(3)),
        "samples": 64, "seed": 42, "timeout_ms": 15000,
    }).encode("utf-8")

    def post():
        request = urllib.request.Request(
            url + "/montecarlo", data=body,
            headers={"Content-Type": "application/json",
                     "X-Idempotency-Key": "chaos-smoke-replay"},
            method="POST",
        )
        for _ in range(20):  # chaos may 503/429 the first attempts
            try:
                with urllib.request.urlopen(request, timeout=20) as reply:
                    return reply.read()
            except urllib.error.HTTPError as error:
                if error.code not in (429, 503, 504):
                    raise
                time.sleep(0.1)
        raise Failure("replay request never succeeded")

    first, second = post(), post()
    check(first == second, "idempotent replay was not byte-identical")


def drain_on_sigterm(url, daemon):
    """SIGTERM with a request in flight: the response must complete."""
    client = ServiceClient(url, timeout=30, retries=0)
    outcome = {}

    def slow_request():
        try:
            outcome["result"] = client.montecarlo(
                muller_ring_tsg(9), samples=60000, seed=7,
                timeout_ms=25000,
            )
        except ServiceError as error:
            outcome["error"] = error

    thread = threading.Thread(target=slow_request, daemon=True)
    thread.start()
    probe = ServiceClient(url, timeout=10, retries=0)
    for _ in range(600):
        try:
            if total_inflight(probe.stats()) >= 1:
                break
        except ServiceError:
            break
        time.sleep(0.01)
    daemon.send_signal(signal.SIGTERM)
    thread.join(30)
    check(not thread.is_alive(), "in-flight request hung through SIGTERM")
    if "error" in outcome:
        error = outcome["error"]
        # The only acceptable structured outcomes at the drain boundary.
        check(error.status in (429, 503, 504),
              "drained request failed unstructured: %s" % error)
    else:
        check(outcome["result"]["count"] == 60000,
              "drained response incomplete: %r" % outcome["result"])
    out, _ = daemon.communicate(timeout=30)
    check(daemon.returncode == 0, "daemon exit code %d" % daemon.returncode)
    check("shut down cleanly" in out, "missing clean-shutdown message")
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=1,
                        help="run the storm against a pre-fork pool of N "
                        "workers instead of a solo daemon")
    parser.add_argument("--router", action="store_true",
                        help="front the pool with the topology-affinity "
                        "router (requires --workers > 1)")
    args = parser.parse_args()

    cache_dir = tempfile.mkdtemp(prefix="repro-chaos-cache-")
    port = free_port()
    url = "http://127.0.0.1:%d" % port
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    command = [
        sys.executable, "-m", "repro", "serve",
        "--port", str(port), "--quiet",
        "--disk-cache", "--cache-dir", cache_dir,
        "--result-entries", "4",
        "--max-inflight", "2", "--max-queue-depth", "2",
        "--request-timeout", "15",
        "--drain-timeout", "15",
        "--chaos", CHAOS,
    ]
    if args.workers > 1:
        command += ["--workers", str(args.workers)]
        if args.router:
            command.append("--router")
    daemon = subprocess.Popen(
        command,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    out = ""
    try:
        client = make_client(url, seed=0)
        check(client.wait_until_ready(timeout=30),
              "daemon did not come up within 30s")

        warmed = warm_and_corrupt_disk(url)
        print("chaos: %d results warmed + re-read through 100%% disk "
              "corruption, all recomputed identically" % warmed)

        outcomes, p99 = storm(url)
        print("chaos: storm outcomes %r, p99 %.2fs" % (outcomes, p99))

        stats = client.stats()
        blocks = worker_blocks(stats)
        check(blocks, "no worker stats blocks in /stats: %r" % sorted(stats))
        shed = sum(b["requests"].get("shed", 0) for b in blocks)
        expired = sum(b["requests"].get("expired", 0) for b in blocks)
        corrupt_evicted = sum(
            b["cache"]["result"].get("corrupt_evicted", 0) for b in blocks
        )
        degraded = any(
            b["cache"]["result"].get("degraded") is True for b in blocks
        )
        latency_injected = sum(
            b["faults"]["injected"].get("latency_injected", 0)
            for b in blocks if b.get("faults")
        )
        check(shed > 0, "/stats shed counter is zero across workers")
        check(expired > 0, "/stats expired counter is zero across workers")
        check(corrupt_evicted > 0,
              "/stats corrupt_evicted is zero across workers")
        check(degraded,
              "corrupting disk tier did not trip degraded mode anywhere")
        check(latency_injected > 0, "fault injection counters missing")
        print(
            "chaos: shed=%d expired=%d corrupt_evicted=%d degraded=%s "
            "latency_injected=%d across %d daemon(s)"
            % (shed, expired, corrupt_evicted, degraded, latency_injected,
               len(blocks))
        )

        replay_bit_identical(url)
        print("chaos: idempotency-keyed replay byte-identical")

        out = drain_on_sigterm(url, daemon)
        print("chaos: SIGTERM drained the in-flight response, clean exit")
    except Failure as failure:
        print("FAIL: %s" % failure, file=sys.stderr)
        if daemon.poll() is None:
            daemon.kill()
            out, _ = daemon.communicate(timeout=10)
        print("--- daemon output ---\n%s" % out, file=sys.stderr)
        return 1
    except Exception as error:  # noqa: BLE001 — smoke harness boundary
        print("FAIL: %s: %s" % (type(error).__name__, error), file=sys.stderr)
        if daemon.poll() is None:
            daemon.kill()
            out, _ = daemon.communicate(timeout=10)
        print("--- daemon output ---\n%s" % out, file=sys.stderr)
        return 1
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    if "Traceback" in out:
        print("FAIL: traceback in daemon log\n%s" % out, file=sys.stderr)
        return 1
    print("chaos smoke: every bound held (no hangs, no tracebacks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
