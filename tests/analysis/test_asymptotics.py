"""Unit tests for the Figure 4 asymptotics analysis."""

from fractions import Fraction

import pytest

from repro.analysis import delta_series, render_series


class TestDeltaSeries:
    def test_on_critical_event(self, oscillator):
        series = delta_series(oscillator, "a+", periods=8)
        assert series.on_critical_cycle
        assert series.reaches_cycle_time
        assert series.maximum == 10
        assert series.cycle_time == 10

    def test_off_critical_event(self, oscillator):
        series = delta_series(oscillator, "b+", periods=30)
        assert not series.on_critical_cycle
        assert not series.reaches_cycle_time
        assert series.maximum < 10

    def test_points_well_formed(self, oscillator):
        series = delta_series(oscillator, "a+", periods=5)
        assert [index for index, _ in series.points] == [1, 2, 3, 4, 5]

    def test_verdicts(self, oscillator):
        on = delta_series(oscillator, "a+", periods=5)
        off = delta_series(oscillator, "b+", periods=5)
        assert "on a critical cycle" in on.verdict()
        assert "off critical cycles" in off.verdict()
        assert "never reaches" in off.verdict()

    def test_result_can_be_precomputed(self, oscillator):
        from repro.core import compute_cycle_time

        result = compute_cycle_time(oscillator)
        series = delta_series(oscillator, "a+", periods=4, result=result)
        assert series.cycle_time == result.cycle_time

    def test_muller_ring_oscillating_series(self, muller_ring_graph):
        # the ring's δ sequence oscillates (6, 6.5, 20/3, 6.5, ...)
        series = delta_series(muller_ring_graph, "s0+", periods=9)
        values = [delta for _, delta in series.points]
        assert values[2] == Fraction(20, 3)
        assert values[3] < Fraction(20, 3)
        assert series.on_critical_cycle


class TestRenderSeries:
    def test_renders_asymptote_line(self, oscillator):
        series = delta_series(oscillator, "b+", periods=12)
        chart = render_series(series)
        assert "λ=10" in chart
        assert "o" in chart

    def test_marks_points_reaching_lambda(self, oscillator):
        series = delta_series(oscillator, "a+", periods=6)
        chart = render_series(series)
        assert "*" in chart

    def test_empty_series(self, oscillator):
        series = delta_series(oscillator, "a+", periods=2)
        series.points.clear()
        assert "empty" in render_series(series)
