"""Average occurrence distances (Section IV-C).

For a repetitive event ``e`` and the global timing simulation, the
average occurrence distance after ``i`` periods is::

    delta(e_i) = t(e_i) / (i + 1)

For an event-initiated simulation started at instance ``e_0`` the
distances between later instances of the initiating event are::

    delta_{e_0}(e_j) = t_{e_0}(e_j) / j        (j > 0)

The cycle time is the limit of either sequence (Proposition 2 / 4); the
main algorithm extracts it from finitely many terms of the second.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .arithmetic import Number, exact_div
from .errors import SimulationError
from .events import as_event, event_label
from .signal_graph import TimedSignalGraph
from .simulation import EventInitiatedSimulation, TimingSimulation
from .unfolding import Unfolding


def average_occurrence_distances(
    graph: TimedSignalGraph,
    event,
    periods: int,
    unfolding: Optional[Unfolding] = None,
) -> List[Number]:
    """``[delta(e_0), delta(e_1), ..., delta(e_periods)]``.

    This is the sequence the paper tabulates in Section II for the
    oscillator's ``a+``: 2, 6 1/2, 7 2/3, 8 1/4, ...; its asymptote is
    the cycle time.
    """
    event = as_event(event)
    if event not in graph.repetitive_events:
        raise SimulationError(
            "average occurrence distance needs a repetitive event, got %s"
            % event_label(event)
        )
    simulation = TimingSimulation(graph, periods, unfolding=unfolding)
    return [
        exact_div(simulation.time(event, index), index + 1)
        for index in range(periods + 1)
    ]


def initiated_occurrence_distances(
    graph: TimedSignalGraph,
    event,
    periods: int,
    unfolding: Optional[Unfolding] = None,
) -> List[Tuple[int, Number]]:
    """``[(j, delta_{e_0}(e_j)), ...]`` for reachable ``j`` in 1..periods.

    The maximum of these values over all border events and
    ``j <= b`` is the cycle time (Proposition 7).  For events off every
    critical cycle all values stay strictly below the cycle time
    (Proposition 8).
    """
    event = as_event(event)
    simulation = EventInitiatedSimulation(graph, event, periods, unfolding=unfolding)
    return [
        (index, exact_div(value, index))
        for index, value in simulation.initiator_times()
    ]
