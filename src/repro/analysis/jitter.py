"""Per-firing delay jitter and its throughput penalty.

The paper's model fixes each arc's delay; real gates jitter from
firing to firing.  Two different questions follow:

* :mod:`repro.analysis.montecarlo` — delays random but *frozen* per
  sample (process variation): λ is a random variable, its mean close
  to λ(nominal);
* this module — delays re-sampled **at every firing** (dynamic
  jitter): the long-run average occurrence distance λ̄ satisfies::

      λ̄  >=  λ(mean delays)

  because MAX-causality makes occurrence times ``E[max] >= max E``
  (Jensen's inequality applied to the max-plus recursion).  The gap is
  the *jitter penalty*: zero-slack systems pay for variance even when
  the mean delays are unchanged.

:func:`stochastic_cycle_time` estimates λ̄ by replaying the batch
kernel's compiled arc programs (:mod:`repro.core.kernel`) with a
freshly sampled ``(R, m)`` delay matrix per period — ``R`` independent
*replications* advance in lockstep through the same vectorized
max-plus sweep, so tightening the estimate costs one wider NumPy
array, not another full simulation.  :func:`jitter_penalty` reports
the penalty against the deterministic mean-delay analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..core.arithmetic import Number
from ..core.cycle_time import compute_cycle_time
from ..core.errors import SignalGraphError
from ..core.events import as_event, event_label
from ..core.kernel import _batch_structure_of, _batch_sweep, compiled_graph
from ..core.signal_graph import TimedSignalGraph
from .montecarlo import DelaySampler, draw_delays


@dataclass
class JitterResult:
    """Estimated long-run behaviour under per-firing jitter."""

    average_distance: float     # λ̄ estimate (mean over replications)
    deterministic: float        # λ at the nominal delays
    periods: int
    seed: int
    replications: int = 1
    spread: float = 0.0         # std of the estimate across replications

    @property
    def penalty(self) -> float:
        """λ̄ − λ(nominal): the throughput cost of jitter."""
        return self.average_distance - self.deterministic

    @property
    def relative_penalty(self) -> float:
        if self.deterministic == 0:
            return 0.0
        return self.penalty / self.deterministic

    def __str__(self) -> str:
        return (
            "jittered λ̄ ≈ %.4f vs deterministic λ = %.4f "
            "(penalty %.4f, %+.1f%%)"
            % (
                self.average_distance,
                self.deterministic,
                self.penalty,
                100 * self.relative_penalty,
            )
        )


def stochastic_cycle_time(
    graph: TimedSignalGraph,
    sampler: DelaySampler,
    periods: int = 400,
    warmup: int = 50,
    seed: int = 0,
    witness=None,
    replications: int = 1,
) -> JitterResult:
    """Estimate λ̄ by timing simulation with per-firing random delays.

    Runs the global timing-simulation recursion over ``periods``
    unfolding periods, drawing a fresh delay for every arc instance,
    and returns the average occurrence distance of ``witness``
    (default: the first border event; must be a repetitive event) over
    the post-``warmup`` stretch.  ``replications`` independent runs
    share each vectorized period sweep; ``average_distance`` is their
    mean and ``spread`` their standard deviation.
    """
    if periods <= warmup:
        raise SignalGraphError("periods must exceed warmup")
    if warmup < 0:
        raise SignalGraphError("warmup must be non-negative")
    if replications < 1:
        raise SignalGraphError("need at least one replication")
    rng = np.random.default_rng(seed)
    cg = compiled_graph(graph)
    structure = _batch_structure_of(cg)
    n = structure.n
    if witness is None:
        border = graph.border_events
        if not border:
            raise SignalGraphError("graph has no border events")
        witness = border[0]
    else:
        witness = as_event(witness)
    if witness not in graph.repetitive_events:
        raise SignalGraphError(
            "witness %s must be a repetitive event" % event_label(witness)
        )
    witness_slot = n + cg.id_of[witness]

    nominal = np.asarray(
        [float(arc.delay) for arc in graph.arcs], dtype=np.float64
    )
    shape = (replications, len(nominal))
    buffer = np.zeros((replications, 2 * n), dtype=np.float64)

    def sweep(program) -> None:
        matrix = draw_delays(rng, sampler, nominal, shape)
        _batch_sweep(program, matrix[:, program.cols], buffer, 0.0)

    sweep(structure.p0)
    start = buffer[:, witness_slot].copy() if warmup == 0 else None
    for period in range(1, periods + 1):
        buffer[:, :n] = buffer[:, n:]
        sweep(structure.p1 if period == 1 else structure.ps)
        if period == warmup:
            start = buffer[:, witness_slot].copy()
    averages = (buffer[:, witness_slot] - start) / (periods - warmup)
    deterministic = float(compute_cycle_time(graph).cycle_time)
    return JitterResult(
        average_distance=float(np.mean(averages)),
        deterministic=deterministic,
        periods=periods,
        seed=seed,
        replications=replications,
        spread=float(np.std(averages)),
    )


def jitter_penalty(
    graph: TimedSignalGraph,
    sampler: DelaySampler,
    periods: int = 400,
    seed: int = 0,
) -> float:
    """Convenience wrapper returning only λ̄ − λ(nominal)."""
    return stochastic_cycle_time(graph, sampler, periods=periods, seed=seed).penalty
