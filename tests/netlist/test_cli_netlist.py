"""CLI: ``repro netlist``, circuit-aware ``convert`` and ``extract``."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.io import json_io
from repro.netlist import load_corpus, write_bench


@pytest.fixture
def c17_file(tmp_path):
    path = str(tmp_path / "c17.bench")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_bench(load_corpus("c17")))
    return path


class TestNetlistCommand:
    def test_corpus_listing(self, capsys):
        assert main(["netlist", "--list"]) == 0
        out = capsys.readouterr().out
        assert "c17" in out and "mult16" in out

    def test_corpus_analysis(self, capsys):
        assert main(["netlist", "corpus:c17"]) == 0
        out = capsys.readouterr().out
        assert "cycle time: 8" in out
        assert "extraction: oracle" in out

    def test_file_analysis(self, c17_file, capsys):
        assert main(["netlist", c17_file]) == 0
        assert "cycle time: 8" in capsys.readouterr().out

    def test_stats_only(self, capsys):
        assert main(["netlist", "corpus:rca8", "--stats-only"]) == 0
        out = capsys.readouterr().out
        assert "gates: 41" in out

    def test_interval_delay_and_output(self, c17_file, tmp_path, capsys):
        graph_path = str(tmp_path / "c17.json")
        assert main([
            "netlist", c17_file, "--delay", "2:5", "--delay-seed", "3",
            "-o", graph_path,
        ]) == 0
        graph = json_io.load(graph_path)
        assert graph.num_events > 0

    def test_explicit_method(self, capsys):
        assert main(["netlist", "corpus:c17", "--method", "howard-ratio"]) == 0
        out = capsys.readouterr().out
        assert "method: howard-ratio" in out
        assert "cycle time: 8" in out

    def test_unknown_corpus_fails(self, capsys):
        with pytest.raises(KeyError):
            main(["netlist", "corpus:c9999"])


class TestConvertCommand:
    def test_bench_to_verilog_to_bench(self, c17_file, tmp_path, capsys):
        verilog = str(tmp_path / "c17.v")
        back = str(tmp_path / "back.bench")
        assert main(["convert", c17_file, "-o", verilog]) == 0
        assert main(["convert", verilog, "-o", back]) == 0
        with open(back, encoding="utf-8") as handle:
            from repro.netlist import parse_bench

            assert parse_bench(handle.read()) == load_corpus("c17")

    def test_circuit_to_json(self, c17_file, tmp_path, capsys):
        out = str(tmp_path / "c17.json")
        assert main(["convert", c17_file, "-o", out]) == 0
        assert json_io.load(out) == load_corpus("c17")

    def test_stdout_default_is_bench(self, capsys):
        assert main(["convert", "corpus:c17"]) == 0
        assert "NAND" in capsys.readouterr().out

    def test_graph_conversion_still_works(self, tmp_path, oscillator, capsys):
        from repro.io import astg

        source = str(tmp_path / "osc.g")
        astg.dump(oscillator, source)
        target = str(tmp_path / "osc.json")
        assert main(["convert", source, "-o", target]) == 0
        assert json_io.load(target).structurally_equal(oscillator)


class TestExtractCommand:
    def test_bench_input_extracts(self, c17_file, capsys):
        assert main(["extract", c17_file]) == 0
        out = capsys.readouterr().out
        assert ".model" in out
        assert "n22+" in out

    def test_corpus_input(self, capsys):
        assert main(["extract", "corpus:c17"]) == 0
        assert ".model" in capsys.readouterr().out
