#!/usr/bin/env python
"""Measure the kernel speedups and record them as BENCH_cycle_time.json.

Times the legacy, exact and float engines — border simulations and
end-to-end ``compute_cycle_time`` — on the scaling-suite graphs and
writes the machine-readable record the README's performance note and
CI smoke check consume::

    PYTHONPATH=src python scripts/bench_to_json.py [-o BENCH_cycle_time.json]

Timings are best-of-N wall clock after warmup (the float kernel's
code-generation tier activates during warmup, as it does in any
repeated analysis).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core import compute_cycle_time, run_border_simulations  # noqa: E402
from repro.generators import ring_with_chords  # noqa: E402

KERNELS = ("legacy", "exact", "float")
SIZES = (100, 400, 800)
WARMUP = 8
REPS = 15


def best_of(fn, reps=REPS):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure(stages):
    graph = ring_with_chords(stages=stages, tokens=4, chords=stages // 4, seed=7)
    row = {
        "stages": stages,
        "events": graph.num_events,
        "arcs": graph.num_arcs,
        "border_events": len(graph.border_events),
        "simulate_ms": {},
        "end_to_end_ms": {},
    }
    for kernel in KERNELS:
        for _ in range(WARMUP):
            run_border_simulations(graph, kernel=kernel)
            compute_cycle_time(graph, check=False, kernel=kernel)
        row["simulate_ms"][kernel] = 1e3 * best_of(
            lambda: run_border_simulations(graph, kernel=kernel)
        )
        row["end_to_end_ms"][kernel] = 1e3 * best_of(
            lambda: compute_cycle_time(graph, check=False, kernel=kernel)
        )
    for section in ("simulate_ms", "end_to_end_ms"):
        legacy = row[section]["legacy"]
        row[section.replace("_ms", "_speedup")] = {
            kernel: legacy / row[section][kernel] for kernel in ("exact", "float")
        }
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o",
        "--output",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_cycle_time.json"
        ),
        help="output JSON path (default: repo-root BENCH_cycle_time.json)",
    )
    parser.add_argument(
        "--sizes", default=",".join(str(s) for s in SIZES),
        help="comma-separated ring sizes to measure",
    )
    args = parser.parse_args(argv)
    sizes = [int(part) for part in args.sizes.split(",")]
    rows = []
    for stages in sizes:
        row = measure(stages)
        rows.append(row)
        print(
            "n=%-4d  sim legacy %7.3f ms  exact %7.3f ms (%.1fx)  "
            "float %7.3f ms (%.1fx)"
            % (
                stages,
                row["simulate_ms"]["legacy"],
                row["simulate_ms"]["exact"],
                row["simulate_speedup"]["exact"],
                row["simulate_ms"]["float"],
                row["simulate_speedup"]["float"],
            )
        )
    largest = rows[-1]
    document = {
        "benchmark": "compiled simulation kernels vs legacy dict-based loops",
        "workload": "ring_with_chords(stages=n, tokens=4, chords=n/4, seed=7)",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "warmup_runs": WARMUP,
        "timer": "best of %d, wall clock" % REPS,
        "rows": rows,
        "headline": {
            "graph": "stages=%d" % largest["stages"],
            "float_simulation_speedup": largest["simulate_speedup"]["float"],
            "exact_simulation_speedup": largest["simulate_speedup"]["exact"],
            "float_end_to_end_speedup": largest["end_to_end_speedup"]["float"],
        },
    }
    with open(args.output, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print("wrote %s" % os.path.abspath(args.output))
    return 0


if __name__ == "__main__":
    sys.exit(main())
