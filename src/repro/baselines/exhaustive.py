"""Exhaustive cycle enumeration — the exact but exponential baseline.

Section II of the paper: "A straightforward approach for finding the
critical cycle ... is to search for all cycles and to choose the
longest.  Unfortunately, the number of cycles may be exponential in
the number of arcs in the graph."  This module is that straightforward
approach, used as ground truth for the polynomial algorithms on small
graphs and as the slow end of the method-comparison benchmark.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.arithmetic import Number
from ..core.cycles import Cycle, critical_cycles as _critical_cycles
from ..core.signal_graph import TimedSignalGraph


def max_cycle_ratio_exhaustive(
    graph: TimedSignalGraph,
) -> Tuple[Number, List[Cycle]]:
    """Cycle time and *all* critical cycles by full enumeration."""
    return _critical_cycles(graph)
