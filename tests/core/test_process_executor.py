"""The process-pool chunk executor: bit-identity and pickling."""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import textwrap

import numpy as np
import pytest

import repro.core.kernel as kernel_mod
from repro.analysis.montecarlo import monte_carlo_cycle_time, uniform_spread
from repro.circuits.library import async_stack_tsg, oscillator_tsg
from repro.core.errors import SignalGraphError
from repro.core.kernel import (
    compiled_graph,
    run_border_simulations_batch,
    shutdown_process_pool,
)


@pytest.fixture(autouse=True)
def _pool_teardown():
    yield
    shutdown_process_pool()


def _matrix(graph, samples, seed=11):
    rng = np.random.default_rng(seed)
    base = np.asarray([float(arc.delay) for arc in graph.arcs])
    return base * rng.uniform(0.8, 1.2, size=(samples, len(base)))


class TestProcessExecutor:
    def test_bit_identical_to_single_process(self, stack):
        matrix = _matrix(stack, 48)
        single = run_border_simulations_batch(stack, matrix)
        threaded = run_border_simulations_batch(
            stack, matrix.copy(), workers=2, batch_size=12, executor="thread"
        )
        pooled = run_border_simulations_batch(
            stack, matrix.copy(), workers=2, executor="process"
        )
        for event, table in single.initiator_times.items():
            assert np.array_equal(table, threaded.initiator_times[event])
            assert np.array_equal(table, pooled.initiator_times[event])
        assert np.array_equal(single.cycle_times(), pooled.cycle_times())

    def test_process_default_chunking_covers_all_samples(self, oscillator):
        # samples not divisible by workers: the default per-worker
        # chunking must still return every row, in order.
        matrix = _matrix(oscillator, 17)
        single = run_border_simulations_batch(oscillator, matrix)
        pooled = run_border_simulations_batch(
            oscillator, matrix.copy(), workers=4, executor="process"
        )
        assert np.array_equal(single.cycle_times(), pooled.cycle_times())

    def test_montecarlo_executor_passthrough(self, oscillator):
        threaded = monte_carlo_cycle_time(
            oscillator, uniform_spread(0.1), samples=64, seed=5,
            track_criticality=False, workers=2, executor="thread",
            batch_size=16,
        )
        pooled = monte_carlo_cycle_time(
            oscillator.copy(), uniform_spread(0.1), samples=64, seed=5,
            track_criticality=False, workers=2, executor="process",
        )
        assert np.array_equal(threaded.samples, pooled.samples)

    def test_unknown_executor_rejected(self, oscillator):
        with pytest.raises(SignalGraphError):
            run_border_simulations_batch(
                oscillator, _matrix(oscillator, 4), executor="gpu"
            )

    def test_shutdown_is_idempotent(self):
        shutdown_process_pool()
        shutdown_process_pool()


class TestCompiledGraphShipping:
    def test_pool_attributes_never_nest_in_pickles(self):
        graph = oscillator_tsg()
        cg = compiled_graph(graph)
        run_border_simulations_batch(
            graph, _matrix(graph, 8), workers=2, executor="process"
        )
        # The parent-local shipping token/blob must not survive a
        # pickle round trip (they would otherwise nest a pickle blob
        # inside every disk-cache entry of this compiled graph).
        assert hasattr(cg, "_pool_token")
        clone = pickle.loads(pickle.dumps(cg))
        assert not hasattr(clone, "_pool_token")
        assert not hasattr(clone, "_pool_blob")

    def test_unpickled_graph_sweeps_identically(self):
        graph = async_stack_tsg()
        cg = compiled_graph(graph)
        clone = pickle.loads(pickle.dumps(cg))
        matrix = _matrix(graph, 12)
        from repro.core.kernel import BatchBindings, run_initiated_batch

        origin = cg.id_of[graph.border_events[0]]
        original = run_initiated_batch(BatchBindings(cg, matrix), origin, 3)
        shipped = run_initiated_batch(BatchBindings(clone, matrix), origin, 3)
        assert np.array_equal(original, shipped)

    def test_chunk_dispatch_never_pickles_delay_matrix(self, stack,
                                                       monkeypatch):
        # Interpose on the single submission boundary and record the
        # exact argument tuples crossing the pickle fence: with a live
        # shared block every chunk ships the block *name* plus a row
        # range — never an ndarray, never the (S, m) matrix.
        matrix = _matrix(stack, 64)
        real_submit_chunk = kernel_mod._submit_chunk
        shipped = []

        def spy(pool, token, blob, shared, mat, lo, hi, *rest):
            real_submit = pool.submit

            def submit(fn, *args):
                shipped.append(args)
                return real_submit(fn, *args)

            pool.submit = submit
            try:
                return real_submit_chunk(
                    pool, token, blob, shared, mat, lo, hi, *rest
                )
            finally:
                pool.submit = real_submit

        monkeypatch.setattr(kernel_mod, "_submit_chunk", spy)
        single = run_border_simulations_batch(stack, matrix)
        pooled = run_border_simulations_batch(
            stack, matrix.copy(), workers=2, executor="process"
        )
        assert np.array_equal(single.cycle_times(), pooled.cycle_times())
        assert shipped
        for args in shipped:
            # (token, blob, shm_name, shm_shape, untrack, lo, hi,
            #  origin_ids, periods, kernel, unroll, matrix=None)
            assert not any(isinstance(arg, np.ndarray) for arg in args)
            assert args[-1] is None           # the matrix slot
            assert isinstance(args[2], str)   # the shared-block name
            beyond_blob = pickle.dumps(args[2:])
            assert len(beyond_blob) < 2048
            assert matrix.nbytes > 4 * len(beyond_blob)

    def test_shared_blocks_balanced_and_unlinked(self, stack):
        before = dict(kernel_mod._SHM_STATS)
        run_border_simulations_batch(
            stack, _matrix(stack, 32), workers=2, executor="process"
        )
        assert kernel_mod._SHM_STATS["created"] == before["created"] + 1
        assert kernel_mod._SHM_STATS["unlinked"] == before["unlinked"] + 1
        assert not kernel_mod._SHM_LIVE

    def test_fallback_without_shared_memory_bit_identical(
            self, oscillator, monkeypatch):
        def unavailable(matrix):
            raise OSError("shared memory unavailable")

        matrix = _matrix(oscillator, 20)
        single = run_border_simulations_batch(oscillator, matrix)
        before = kernel_mod._SHM_STATS["fallback"]
        monkeypatch.setattr(kernel_mod, "_SharedMatrix", unavailable)
        pooled = run_border_simulations_batch(
            oscillator, matrix.copy(), workers=2, executor="process"
        )
        assert kernel_mod._SHM_STATS["fallback"] == before + 1
        assert np.array_equal(single.cycle_times(), pooled.cycle_times())

    @pytest.mark.filterwarnings(
        "ignore:numba is not importable:RuntimeWarning"
    )
    def test_all_kernels_bit_identical_through_process_pool(self, stack):
        matrix = _matrix(stack, 24)
        want = run_border_simulations_batch(
            stack, matrix, kernel="batch"
        ).cycle_times()
        for kern in ("batch", "fused", "numba"):
            got = run_border_simulations_batch(
                stack, matrix.copy(), workers=2, executor="process",
                kernel=kern,
            ).cycle_times()
            assert np.array_equal(want, got)

    def test_cleanup_hook_unlinks_leaked_blocks(self):
        # The atexit sweep must reap blocks a crashed sweep left
        # behind, and a later close() of the same block is a no-op.
        shared = kernel_mod._SharedMatrix(np.ones((4, 3)))
        assert shared.name in kernel_mod._SHM_LIVE
        kernel_mod._cleanup_shared_matrices()
        assert not kernel_mod._SHM_LIVE
        shared.close()
        kernel_mod._cleanup_shared_matrices()


class TestPoolLifecycle:
    def test_pool_respawns_after_teardown_twice(self, oscillator):
        # Regression: tear the pool down and spin it up again, twice —
        # the second sweep must get a fresh working pool, not a dead
        # executor or leaked semaphores.
        matrix = _matrix(oscillator, 8)
        reference = run_border_simulations_batch(oscillator, matrix)
        for _ in range(2):
            sweep = run_border_simulations_batch(
                oscillator, matrix.copy(), workers=2, executor="process"
            )
            assert np.array_equal(
                reference.cycle_times(), sweep.cycle_times()
            )
            shutdown_process_pool()

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"), reason="POSIX shm mount required"
    )
    def test_interpreter_exit_reaps_pool_and_segments(self):
        # A worst-case client: runs a pooled sweep, then leaks a live
        # shared block and exits without closing anything.  The atexit
        # hooks must drain the pool (clean exit code) and unlink the
        # leaked segment from /dev/shm.
        code = textwrap.dedent(
            """
            import numpy as np
            from repro.circuits.library import oscillator_tsg
            import repro.core.kernel as kernel

            graph = oscillator_tsg()
            rng = np.random.default_rng(0)
            base = np.asarray([float(a.delay) for a in graph.arcs])
            matrix = base * rng.uniform(0.8, 1.2, size=(12, base.size))
            kernel.run_border_simulations_batch(
                graph, matrix, workers=2, executor="process"
            )
            leaked = kernel._SharedMatrix(matrix)
            print(leaked.name)
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, timeout=120,
            cwd=os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.abspath(__file__)))),
        )
        assert proc.returncode == 0, proc.stderr
        name = proc.stdout.strip().splitlines()[-1].lstrip("/")
        assert name
        assert not os.path.exists(os.path.join("/dev/shm", name))
