"""Structural-Verilog subset reader and writer.

The subset is what gate-level benchmark translations actually use:

* one ``module`` with a port list, ``input``/``output``/``wire``
  declarations (scalar nets only, comma-separated lists allowed);
* gate-primitive instantiations — ``and``, ``or``, ``nand``, ``nor``,
  ``xor``, ``xnor``, ``not``, ``buf`` and a ``dff`` cell — with the
  *first* port the output (Verilog primitive convention), an optional
  instance name, and one instance per statement;
* ``//`` and ``/* ... */`` comments; escaped identifiers
  (``\\22 `` — a backslash, the name, a terminating space) so the
  numeric signal names of the ISCAS sets survive a ``.bench`` ->
  Verilog -> ``.bench`` round-trip.

No expressions, no ``assign``, no vectors, no parameters — anything
else is a :class:`~repro.core.errors.FormatError` with a line number.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

from ..core.errors import FormatError
from .model import LogicNetwork

#: primitive name (lowercase) -> library cell.
_PRIMITIVES = {
    "and": "AND", "or": "OR", "nand": "NAND", "nor": "NOR",
    "xor": "XOR", "xnor": "XNOR", "not": "NOT", "buf": "BUF",
    "dff": "DFF",
}
_CELL_TO_PRIMITIVE = {cell: prim for prim, cell in _PRIMITIVES.items()}

_KEYWORDS = frozenset(("module", "endmodule", "input", "output", "wire"))

_SIMPLE_ID = re.compile(r"[A-Za-z_][A-Za-z0-9_$]*")

_TOKEN = re.compile(
    r"\\(?P<escaped>\S+)\s"      # escaped identifier: \name<ws>
    r"|(?P<id>[A-Za-z_$][A-Za-z0-9_$]*)"
    r"|(?P<punct>[();,])"
    r"|(?P<bad>\S)"
)

_LINE_COMMENT = re.compile(r"//[^\n]*")
_BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)


class _Token(NamedTuple):
    kind: str   # "id" (escaped or simple) or "punct"
    text: str
    line: int
    escaped: bool


def _tokenize(text: str) -> List[_Token]:
    # Blank comments out (preserving newlines) so line numbers survive.
    def blank(match: "re.Match") -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    text = _BLOCK_COMMENT.sub(blank, text)
    text = _LINE_COMMENT.sub(blank, text)
    tokens: List[_Token] = []
    line = 1
    position = 0
    for match in _TOKEN.finditer(text):
        line += text.count("\n", position, match.start())
        position = match.start()
        if match.lastgroup == "bad":
            raise FormatError(
                "line %d: unexpected character %r" % (line, match.group(0))
            )
        if match.lastgroup == "escaped":
            tokens.append(_Token("id", match.group("escaped"), line, True))
        elif match.lastgroup == "id":
            tokens.append(_Token("id", match.group("id"), line, False))
        else:
            tokens.append(_Token("punct", match.group("punct"), line, False))
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token]):
        self.tokens = tokens
        self.index = 0

    def peek(self) -> Optional[_Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self, expect: Optional[str] = None) -> _Token:
        token = self.peek()
        if token is None:
            raise FormatError("unexpected end of file")
        self.index += 1
        if expect is not None and token.text != expect:
            raise FormatError(
                "line %d: expected %r, got %r"
                % (token.line, expect, token.text)
            )
        return token

    def identifier(self) -> _Token:
        token = self.next()
        if token.kind != "id":
            raise FormatError(
                "line %d: expected an identifier, got %r"
                % (token.line, token.text)
            )
        return token

    def name_list(self) -> List[str]:
        """``a, b, c`` up to (but not consuming) ``;`` or ``)``."""
        names = [self.identifier().text]
        while self.peek() is not None and self.peek().text == ",":
            self.next()
            names.append(self.identifier().text)
        return names


def parse_verilog(text: str, name: Optional[str] = None) -> LogicNetwork:
    """Parse structural-Verilog text into a :class:`LogicNetwork`."""
    parser = _Parser(_tokenize(text))
    parser.next(expect="module")
    module_name = parser.identifier().text
    network = LogicNetwork(name=name if name is not None else module_name)
    token = parser.next()
    if token.text == "(":
        if parser.peek() is not None and parser.peek().text != ")":
            parser.name_list()  # port order is re-derived from the decls
        parser.next(expect=")")
        token = parser.next()
    if token.text != ";":
        raise FormatError(
            "line %d: expected ';' after module header, got %r"
            % (token.line, token.text)
        )

    outputs: List[str] = []
    while True:
        token = parser.next()
        if token.kind != "id":
            raise FormatError(
                "line %d: expected a statement, got %r"
                % (token.line, token.text)
            )
        keyword = token.text
        if token.escaped:
            keyword = None  # escaped ids never form keywords/primitives
        if keyword == "endmodule":
            break
        if keyword in ("input", "output", "wire"):
            names = parser.name_list()
            parser.next(expect=";")
            if keyword == "input":
                for signal in names:
                    try:
                        network.add_input(signal)
                    except Exception as error:
                        raise FormatError(
                            "line %d: %s" % (token.line, error)
                        ) from None
            elif keyword == "output":
                outputs.extend(names)
            continue  # wire decls carry no information we keep
        primitive = None if keyword is None else _PRIMITIVES.get(
            keyword.lower()
        )
        if primitive is None:
            raise FormatError(
                "line %d: unsupported statement or primitive %r"
                % (token.line, token.text)
            )
        after = parser.peek()
        if after is not None and after.kind == "id":
            parser.next()  # optional instance name, discarded
        parser.next(expect="(")
        ports = parser.name_list()
        parser.next(expect=")")
        parser.next(expect=";")
        if len(ports) < 2:
            raise FormatError(
                "line %d: primitive %r needs an output and at least one "
                "input" % (token.line, token.text)
            )
        try:
            network.add_gate(ports[0], primitive, ports[1:])
        except Exception as error:
            raise FormatError("line %d: %s" % (token.line, error)) from None
    for signal in outputs:
        network.add_output(signal)
    try:
        network.validate()
    except Exception as error:
        raise FormatError("invalid verilog netlist: %s" % error) from None
    return network


def _emit_id(name: str) -> str:
    """Escape identifiers the simple-name grammar cannot carry."""
    if _SIMPLE_ID.fullmatch(name) and name.lower() not in _KEYWORDS \
            and name.lower() not in _PRIMITIVES:
        return name
    return "\\" + name + " "


def _module_id(name: str) -> str:
    if _SIMPLE_ID.fullmatch(name) and name.lower() not in _KEYWORDS:
        return name
    cleaned = re.sub(r"[^A-Za-z0-9_]", "_", name)
    if not cleaned or not re.match(r"[A-Za-z_]", cleaned):
        cleaned = "m_" + cleaned
    return cleaned


def write_verilog(network: LogicNetwork) -> str:
    """Render a :class:`LogicNetwork` as structural Verilog."""
    ports = [_emit_id(s) for s in network.inputs + network.outputs]
    lines = ["// %s" % network.name]
    lines.append("module %s (%s);" % (_module_id(network.name),
                                      ", ".join(ports)))
    for signal in network.inputs:
        lines.append("  input %s;" % _emit_id(signal))
    for signal in network.outputs:
        lines.append("  output %s;" % _emit_id(signal))
    declared = set(network.inputs) | set(network.outputs)
    wires = [g.output for g in network.gates if g.output not in declared]
    for signal in wires:
        lines.append("  wire %s;" % _emit_id(signal))
    for position, gate in enumerate(network.gates):
        primitive = _CELL_TO_PRIMITIVE[gate.gate_type]
        pins = ", ".join(
            _emit_id(s) for s in (gate.output,) + gate.inputs
        )
        lines.append("  %s g%d (%s);" % (primitive, position, pins))
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def load_verilog(path: str, name: Optional[str] = None) -> LogicNetwork:
    with open(path, "r", encoding="utf-8") as handle:
        return parse_verilog(handle.read(), name=name)


def dump_verilog(network: LogicNetwork, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(write_verilog(network))
