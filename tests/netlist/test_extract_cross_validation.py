"""Structural extraction must be bit-identical to the oracle.

The acceptance bar for the scalable path: on every circuit small
enough for ``circuits.extraction`` (exhaustive exploration + quadratic
simulation), ``structural_extract`` must produce the *same* Timed
Signal Graph — same events, same arcs, same delays, same markings.
"""

from __future__ import annotations

import pytest

from repro.circuits.extraction import extract_signal_graph, simulate_untimed
from repro.circuits.library import (
    c_element_synchronizer_netlist,
    inverter_ring_netlist,
    muller_ring_netlist,
    oscillator_netlist,
)
from repro.circuits.netlist import Netlist
from repro.core.errors import ExtractionError, NotSemiModularError
from repro.netlist import load_corpus, ring_wrap, structural_extract
from repro.netlist.extract import structural_simulate

ORACLE_CIRCUITS = {
    "oscillator": oscillator_netlist,
    "muller3": lambda: muller_ring_netlist(3),
    "muller5": lambda: muller_ring_netlist(5),
    "inverter3": lambda: inverter_ring_netlist(3),
    "inverter5": lambda: inverter_ring_netlist(5),
    "c_sync": c_element_synchronizer_netlist,
    "c17_wrapped": lambda: ring_wrap(load_corpus("c17")),
}


class TestBitIdentity:
    @pytest.mark.parametrize("name", sorted(ORACLE_CIRCUITS))
    def test_structural_equals_oracle(self, name):
        netlist = ORACLE_CIRCUITS[name]()
        oracle = extract_signal_graph(netlist)
        structural = structural_extract(netlist)
        assert structural.structurally_equal(oracle)

    @pytest.mark.parametrize("name", sorted(ORACLE_CIRCUITS))
    def test_same_trace_and_window(self, name):
        netlist = ORACLE_CIRCUITS[name]()
        oracle = simulate_untimed(netlist)
        fast = structural_simulate(netlist)
        assert fast.prefix_end == oracle.prefix_end
        assert fast.window == oracle.window
        assert fast.fired == oracle.fired

    def test_explore_mode_matches_trace_mode(self):
        netlist = muller_ring_netlist(3)
        assert structural_extract(netlist, check="explore").structurally_equal(
            structural_extract(netlist, check="trace")
        )


class TestSemiModularity:
    def racing_latch(self):
        n = Netlist("race")
        n.add_input("set", initial=1)
        n.add_input("reset", initial=1)
        n.add_gate("q", "NOR", ["reset", "qb"], initial=0)
        n.add_gate("qb", "NOR", ["set", "q"], initial=0)
        n.add_stimulus("set")
        n.add_stimulus("reset")
        return n

    def glitching_and(self):
        # After a+ both b (NOT) and c (AND) are excited; the serialised
        # rule fires b first, which disables c — a visible hazard.
        n = Netlist("glitch")
        n.add_input("a", initial=0)
        n.add_gate("b", "NOT", ["a"], initial=1)
        n.add_gate("c", "AND", ["a", "b"], initial=0)
        n.add_stimulus("a")
        return n

    def test_trace_check_catches_the_hazard(self):
        with pytest.raises(NotSemiModularError):
            structural_extract(self.glitching_and(), check="trace")

    def test_explore_check_catches_the_race(self):
        # The latch race hides from the serialised interleaving (reset
        # fires before set), but exhaustive exploration still finds it.
        with pytest.raises(NotSemiModularError):
            structural_extract(self.racing_latch(), check="explore")

    def test_violation_does_not_fall_back(self):
        """Semi-modularity is a circuit property: the oracle fallback
        must not mask it."""
        with pytest.raises(NotSemiModularError):
            structural_extract(self.glitching_and(), check="trace",
                               fallback=True)

    def test_unknown_check_mode_rejected(self):
        with pytest.raises(ValueError):
            structural_extract(oscillator_netlist(), check="maybe")


class TestDetectorLimits:
    def test_transition_budget_raises(self):
        with pytest.raises(ExtractionError):
            structural_simulate(oscillator_netlist(), max_transitions=3)

    def test_fallback_disabled_propagates(self):
        with pytest.raises(ExtractionError):
            structural_extract(oscillator_netlist(), max_transitions=3,
                               fallback=False)

    def test_quiescent_circuit_folds_empty_window(self):
        n = Netlist("quiet")
        n.add_input("a", initial=0)
        n.add_gate("b", "BUF", ["a"], initial=0)
        trace = structural_simulate(n)
        assert trace.window == 0
        assert trace.fired == []


class TestScale:
    @pytest.mark.parametrize("name", ["rca8", "sreg16"])
    def test_corpus_extracts(self, name):
        graph = structural_extract(ring_wrap(load_corpus(name)))
        assert graph.num_events > 100

    def test_thousand_gate_circuit_extracts(self):
        """The tentpole scale requirement: >=1000 gates end to end."""
        network = load_corpus("mult16")
        assert network.num_gates >= 1000
        graph = structural_extract(ring_wrap(network))
        assert graph.num_events == 2 * (
            len(ring_wrap(network).gates)
        )
