"""Structured JSON logging bound to the active trace context.

One JSON object per line on the configured stream (stderr by
default), with ``trace_id``/``span_id`` stamped automatically when a
span is active, so daemon logs correlate with exported traces:

    {"ts": "2026-08-06T12:00:00.123Z", "level": "info",
     "logger": "repro.service", "event": "degraded mode tripped",
     "failures": 3, "trace_id": "4bf9...", "span_id": "00f0..."}

This module is for *sparse, meaningful* events (startup, degraded
trips, drain) — high-frequency signals belong in metrics.  Loggers
are cheap and cached; emission honours a process-wide level.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, Dict, Optional, TextIO

from .tracing import current_span

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_state_lock = threading.Lock()
_level = _LEVELS["info"]
_stream: Optional[TextIO] = None  # None -> sys.stderr at emit time
_loggers: Dict[str, "StructuredLogger"] = {}


def set_log_level(level: str) -> None:
    """Set the process-wide log level (debug/info/warning/error)."""
    global _level
    normalized = level.strip().lower()
    if normalized not in _LEVELS:
        raise ValueError(
            "unknown log level %r (expected one of %s)"
            % (level, ", ".join(sorted(_LEVELS)))
        )
    with _state_lock:
        _level = _LEVELS[normalized]


def set_log_stream(stream: Optional[TextIO]) -> None:
    """Redirect log output (``None`` restores stderr)."""
    global _stream
    with _state_lock:
        _stream = stream


def _isoformat(epoch_seconds: float) -> str:
    fractional = epoch_seconds - int(epoch_seconds)
    base = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(epoch_seconds))
    return "%s.%03dZ" % (base, int(fractional * 1000))


class StructuredLogger:
    """Named emitter of one-JSON-object-per-line log records."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def _emit(self, level_name: str, event: str, fields: Dict[str, Any]) -> None:
        with _state_lock:
            if _LEVELS[level_name] < _level:
                return
            stream = _stream
        record: Dict[str, Any] = {
            "ts": _isoformat(time.time()),
            "level": level_name,
            "logger": self.name,
            "event": event,
        }
        span = current_span()
        if span is not None and span.context is not None:
            record["trace_id"] = span.trace_id
            record["span_id"] = span.span_id
        for key, value in fields.items():
            if key in record:
                key = "field_" + key
            if isinstance(value, (str, int, float, bool)) or value is None:
                record[key] = value
            else:
                record[key] = repr(value)
        line = json.dumps(record, sort_keys=False)
        target = stream if stream is not None else sys.stderr
        try:
            target.write(line + "\n")
            target.flush()
        except (ValueError, OSError):
            pass  # closed stream: logging must never take the service down

    def debug(self, event: str, **fields: Any) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._emit("error", event, fields)


def get_logger(name: str) -> StructuredLogger:
    """Fetch (or create) the cached logger for ``name``."""
    with _state_lock:
        logger = _loggers.get(name)
        if logger is None:
            logger = StructuredLogger(name)
            _loggers[name] = logger
        return logger
