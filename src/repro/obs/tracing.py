"""Spans, ``traceparent`` propagation and Chrome trace export.

A deliberately small tracer: spans carry 128-bit trace ids / 64-bit
span ids (W3C ``traceparent``-compatible), measure time with the
monotonic clock (anchored once to the wall clock so exported
timestamps are meaningful), and propagate through ``contextvars`` so
nested ``with tracer().span(...)`` blocks parent correctly across
``await``-free threaded code.  Two exporters ship:

* :class:`RingExporter` — a bounded in-memory ring, handy for tests
  and for the daemon's introspection;
* :class:`ChromeTraceExporter` — buffers finished spans and writes a
  Chrome ``trace_event``-format JSON array (one event per line)
  loadable in ``chrome://tracing`` and https://ui.perfetto.dev.

Everything short-circuits when ``repro.obs.STATE.tracing`` is off:
``tracer().span(...)`` then returns a shared no-op context manager —
no allocation, no contextvar traffic.
"""

from __future__ import annotations

import contextvars
import json
import os
import re
import threading
import time
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from . import STATE

_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)

# Anchor the monotonic clock to the wall clock once so span
# timestamps are comparable across processes while durations stay
# monotonic within one.
_EPOCH_OFFSET_US = int(time.time() * 1e6) - int(time.monotonic() * 1e6)


def _now_us() -> int:
    return int(time.monotonic() * 1e6) + _EPOCH_OFFSET_US


def _new_trace_id() -> str:
    return os.urandom(16).hex()


def _new_span_id() -> str:
    return os.urandom(8).hex()


class SpanContext:
    """The propagatable identity of a span (what goes on the wire)."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str):
        self.trace_id = trace_id
        self.span_id = span_id

    def to_traceparent(self) -> str:
        return "00-%s-%s-01" % (self.trace_id, self.span_id)

    def __repr__(self) -> str:
        return "SpanContext(trace_id=%r, span_id=%r)" % (
            self.trace_id,
            self.span_id,
        )


def parse_traceparent(header: Optional[str]) -> Optional[SpanContext]:
    """Parse a W3C ``traceparent`` header; ``None`` if absent/invalid."""
    if not header:
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if not match:
        return None
    version, trace_id, span_id = match.group(1), match.group(2), match.group(3)
    if version == "ff":
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return SpanContext(trace_id, span_id)


class Span:
    """One timed operation; created via :meth:`Tracer.span`."""

    __slots__ = (
        "name",
        "context",
        "parent_id",
        "start_us",
        "end_us",
        "attributes",
        "pid",
        "tid",
    )

    def __init__(
        self,
        name: str,
        context: SpanContext,
        parent_id: Optional[str] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.context = context
        self.parent_id = parent_id
        self.start_us = _now_us()
        self.end_us: Optional[int] = None
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}
        self.pid = os.getpid()
        self.tid = threading.get_ident()

    @property
    def trace_id(self) -> str:
        return self.context.trace_id

    @property
    def span_id(self) -> str:
        return self.context.span_id

    @property
    def duration_us(self) -> Optional[int]:
        if self.end_us is None:
            return None
        return self.end_us - self.start_us

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def end(self) -> None:
        if self.end_us is None:
            self.end_us = _now_us()

    def to_traceparent(self) -> str:
        return self.context.to_traceparent()

    def __repr__(self) -> str:
        return "Span(name=%r, trace_id=%r, span_id=%r, parent_id=%r)" % (
            self.name,
            self.trace_id,
            self.span_id,
            self.parent_id,
        )


class _NullSpan:
    """Inert stand-in yielded while tracing is disabled."""

    __slots__ = ()
    context = None
    parent_id = None
    attributes: Dict[str, Any] = {}

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def end(self) -> None:
        pass

    def to_traceparent(self) -> None:  # type: ignore[override]
        return None


class _NullSpanCM:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()
_NULL_CM = _NullSpanCM()

_current_span: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


def current_span() -> Optional[Span]:
    """The span active in this context, or ``None``."""
    return _current_span.get()


def current_traceparent() -> Optional[str]:
    """``traceparent`` header for the active span, or ``None``."""
    span = _current_span.get()
    if span is None:
        return None
    return span.to_traceparent()


class _SpanCM:
    """Context manager that activates a span for its `with` block."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> Span:
        self._token = _current_span.set(self._span)
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is not None:
            self._span.attributes.setdefault("error", True)
            self._span.attributes.setdefault(
                "error.type", getattr(exc_type, "__name__", str(exc_type))
            )
        self._span.end()
        if self._token is not None:
            _current_span.reset(self._token)
        self._tracer._export(self._span)
        return None


ParentLike = Union[Span, SpanContext, None]


class Tracer:
    """Creates spans and fans finished ones out to exporters."""

    def __init__(self) -> None:
        self._exporters: List[Any] = []
        self._lock = threading.Lock()

    # -- exporter management -------------------------------------------
    def add_exporter(self, exporter: Any) -> None:
        with self._lock:
            if exporter not in self._exporters:
                self._exporters.append(exporter)

    def remove_exporter(self, exporter: Any) -> None:
        with self._lock:
            if exporter in self._exporters:
                self._exporters.remove(exporter)

    def clear_exporters(self) -> None:
        with self._lock:
            self._exporters = []

    def _export(self, span: Span) -> None:
        with self._lock:
            exporters = list(self._exporters)
        for exporter in exporters:
            try:
                exporter.export(span)
            except Exception:
                pass  # observability must never break the operation

    # -- span creation -------------------------------------------------
    def start_span(
        self,
        name: str,
        parent: ParentLike = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Create (but do not activate) a span; caller must end+export."""
        parent_context = self._resolve_parent(parent)
        if parent_context is not None:
            context = SpanContext(parent_context.trace_id, _new_span_id())
            parent_id: Optional[str] = parent_context.span_id
        else:
            context = SpanContext(_new_trace_id(), _new_span_id())
            parent_id = None
        return Span(name, context, parent_id=parent_id, attributes=attributes)

    def span(
        self,
        name: str,
        parent: ParentLike = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> Union[_SpanCM, _NullSpanCM]:
        """Context manager: activate a child span for the block.

        Parent resolution: explicit ``parent`` (a :class:`Span` or
        :class:`SpanContext`, e.g. parsed from a ``traceparent``
        header or carried across a thread boundary) wins; otherwise
        the contextvar-active span; otherwise a new root.
        """
        if not STATE.tracing:
            return _NULL_CM
        return _SpanCM(self, self.start_span(name, parent, attributes))

    def finish_span(self, span: Span) -> None:
        """End and export a span created with :meth:`start_span`."""
        span.end()
        self._export(span)

    @staticmethod
    def _resolve_parent(parent: ParentLike) -> Optional[SpanContext]:
        if parent is None:
            active = _current_span.get()
            return active.context if active is not None else None
        if isinstance(parent, Span):
            return parent.context
        return parent


_TRACER = Tracer()


def tracer() -> Tracer:
    """The process-wide tracer."""
    return _TRACER


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


class RingExporter:
    """Keeps the last ``capacity`` finished spans in memory."""

    def __init__(self, capacity: int = 2048):
        self._spans: "deque[Span]" = deque(maxlen=int(capacity))
        self._lock = threading.Lock()

    def export(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


def _span_args(span: Span) -> Dict[str, Any]:
    args: Dict[str, Any] = {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
    }
    if span.parent_id is not None:
        args["parent_id"] = span.parent_id
    for key, value in span.attributes.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            args[key] = value
        else:
            args[key] = repr(value)
    return args


def chrome_trace_events(spans: Iterable[Span]) -> List[Dict[str, Any]]:
    """Chrome ``trace_event`` B/E pairs for *finished* spans.

    Events are ordered so that B/E pairs nest properly per thread
    even at timestamp ties: at the same ``ts``, E events come first
    (innermost — shortest duration — ending first) and B events last
    (outermost — longest duration — beginning first).
    """
    events: List[Tuple[Tuple[int, int, int], Dict[str, Any]]] = []
    for span in spans:
        if span.end_us is None:
            continue
        duration = span.end_us - span.start_us
        args = _span_args(span)
        common = {
            "name": span.name,
            "cat": "repro",
            "pid": span.pid,
            "tid": span.tid,
        }
        begin = dict(common)
        begin.update({"ph": "B", "ts": span.start_us, "args": args})
        end = dict(common)
        end.update({"ph": "E", "ts": span.end_us})
        events.append(((span.start_us, 1, -duration), begin))
        events.append(((span.end_us, 0, duration), end))
    events.sort(key=lambda item: item[0])
    return [event for _, event in events]


def write_chrome_trace(spans: Iterable[Span], path: str) -> int:
    """Write spans as a Chrome trace JSON array, one event per line.

    The file is a strict JSON array (``json.load``-able, and accepted
    by Perfetto / ``chrome://tracing``) formatted with one
    ``trace_event`` object per line so it greps and diffs cleanly.
    Returns the number of events written.
    """
    events = chrome_trace_events(spans)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("[\n")
        for index, event in enumerate(events):
            suffix = ",\n" if index < len(events) - 1 else "\n"
            handle.write(json.dumps(event, sort_keys=True) + suffix)
        handle.write("]\n")
    return len(events)


class ChromeTraceExporter:
    """Buffers finished spans; :meth:`flush` writes the trace file."""

    def __init__(self, path: str, capacity: int = 100000):
        self.path = path
        self._spans: "deque[Span]" = deque(maxlen=int(capacity))
        self._lock = threading.Lock()

    def export(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def flush(self) -> int:
        with self._lock:
            spans = list(self._spans)
        return write_chrome_trace(spans, self.path)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


def validate_chrome_trace(events: List[Dict[str, Any]]) -> None:
    """Raise ``ValueError`` unless B/E events nest properly per thread."""
    stacks: Dict[Tuple[Any, Any], List[str]] = {}
    last_ts: Dict[Tuple[Any, Any], float] = {}
    for index, event in enumerate(events):
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in event:
                raise ValueError(
                    "event %d is missing field %r" % (index, field)
                )
        if event["ph"] not in ("B", "E", "X", "i", "M"):
            raise ValueError(
                "event %d has unknown phase %r" % (index, event["ph"])
            )
        key = (event["pid"], event["tid"])
        if event["ts"] < last_ts.get(key, float("-inf")):
            raise ValueError("event %d goes backwards in time" % index)
        last_ts[key] = event["ts"]
        if event["ph"] == "B":
            stacks.setdefault(key, []).append(event["name"])
        elif event["ph"] == "E":
            stack = stacks.get(key)
            if not stack:
                raise ValueError(
                    "event %d: E with no matching B on tid %r"
                    % (index, event["tid"])
                )
            stack.pop()
    for key, stack in stacks.items():
        if stack:
            raise ValueError(
                "unclosed B events on pid/tid %r: %r" % (key, stack)
            )
