"""Unit tests for the lazy unfolding."""

import pytest

from repro.core import TimedSignalGraph, Transition, Unfolding
from repro.core.errors import NotLiveError, SimulationError
from repro.core.unfolding import instance_label


def T(text):
    return Transition.parse(text)


class TestExistence:
    def test_nonrepetitive_only_instance_zero(self, oscillator):
        u = Unfolding(oscillator)
        assert u.exists(T("e-"), 0)
        assert not u.exists(T("e-"), 1)
        assert u.exists(T("f-"), 0)
        assert not u.exists(T("f-"), 3)

    def test_repetitive_all_instances(self, oscillator):
        u = Unfolding(oscillator)
        for k in range(5):
            assert u.exists(T("a+"), k)

    def test_negative_and_unknown(self, oscillator):
        u = Unfolding(oscillator)
        assert not u.exists(T("a+"), -1)
        assert not u.exists(T("zz+"), 0)

    def test_unfolding_requires_liveness(self):
        g = TimedSignalGraph()
        g.add_arc("a+", "b+", 1)
        g.add_arc("b+", "a+", 1)
        with pytest.raises(NotLiveError):
            Unfolding(g)


class TestArcs:
    def test_in_arcs_first_period(self, oscillator):
        u = Unfolding(oscillator)
        # a+[0]: only e- (the marked arc reaches back to c-[-1])
        preds = u.in_arcs((T("a+"), 0))
        assert [(instance_label(p), a.delay) for p, a in preds] == [("e-[0]", 2)]

    def test_in_arcs_later_period(self, oscillator):
        u = Unfolding(oscillator)
        preds = u.in_arcs((T("a+"), 2))
        assert [(instance_label(p), a.delay) for p, a in preds] == [("c-[1]", 2)]

    def test_in_arcs_unmarked_same_period(self, oscillator):
        u = Unfolding(oscillator)
        preds = {instance_label(p) for p, _ in u.in_arcs((T("c+"), 1))}
        assert preds == {"a+[1]", "b+[1]"}

    def test_out_arcs(self, oscillator):
        u = Unfolding(oscillator)
        succs = {instance_label(s) for s, _ in u.out_arcs((T("c-"), 0))}
        assert succs == {"a+[1]", "b+[1]"}
        succs0 = {instance_label(s) for s, _ in u.out_arcs((T("e-"), 0))}
        assert succs0 == {"a+[0]", "f-[0]"}


class TestOrdering:
    def test_period_zero_contains_everything(self, oscillator):
        u = Unfolding(oscillator)
        assert len(u.period(0)) == oscillator.num_events

    def test_later_periods_only_repetitive(self, oscillator):
        u = Unfolding(oscillator)
        assert len(u.period(3)) == len(oscillator.repetitive_events)

    def test_topological_property(self, oscillator):
        u = Unfolding(oscillator)
        order = list(u.instances(3))
        position = {inst: i for i, inst in enumerate(order)}
        for instance in order:
            for pred, _ in u.in_arcs(instance):
                assert position[pred] < position[instance], (pred, instance)

    def test_instance_count(self, oscillator):
        u = Unfolding(oscillator)
        assert u.instance_count(0) == 8
        assert u.instance_count(2) == 8 + 2 * 6
        assert len(list(u.instances(2))) == u.instance_count(2)

    def test_require(self, oscillator):
        u = Unfolding(oscillator)
        assert u.require(T("a+"), 1) == (T("a+"), 1)
        with pytest.raises(SimulationError):
            u.require(T("e-"), 1)

    def test_initial_instances(self, oscillator):
        u = Unfolding(oscillator)
        assert {instance_label(i) for i in u.initial_instances()} == {"e-[0]"}

    def test_initial_instances_fully_marked_event(self):
        # an event whose in-arcs are all marked belongs to I_u
        g = TimedSignalGraph()
        g.add_arc("a+", "b+", 1, marked=True)
        g.add_arc("b+", "a+", 1, marked=True)
        u = Unfolding(g)
        labels = {instance_label(i) for i in u.initial_instances()}
        assert labels == {"a+[0]", "b+[0]"}

    def test_instance_label(self):
        assert instance_label((T("a+"), 2)) == "a+[2]"
