#!/usr/bin/env python3
"""File-based workflow: the tool-exchange formats in practice.

Loads the shipped sample files (examples/data/), analyses them, and
converts between formats — the workflow of a user whose graphs come
from another tool (petrify/SIS-style ``.g`` files) or whose netlists
arrive as JSON:

1. read a ``.g`` Signal Graph, analyse it;
2. read a netlist JSON, extract, verify, analyse;
3. convert the graph to DOT (for rendering) and JSON (for scripting).

Run:  python examples/file_workflow.py
"""

import os
import tempfile

from repro.analysis import analyze
from repro.circuits.extraction import extract_signal_graph
from repro.circuits.verification import verify_extraction
from repro.core import compute_cycle_time
from repro.io import astg, dot, json_io

DATA = os.path.join(os.path.dirname(__file__), "data")


def main() -> None:
    # 1. .g files from another tool
    for name in ("oscillator.g", "muller_ring.g", "async_stack.g"):
        graph = astg.load(os.path.join(DATA, name))
        result = compute_cycle_time(graph)
        print(
            "%-16s %3d events %3d arcs  ->  cycle time %s"
            % (name, graph.num_events, graph.num_arcs, result.cycle_time)
        )
    print()

    # 2. a netlist delivered as JSON
    netlist = json_io.load(os.path.join(DATA, "muller_ring_netlist.json"))
    print("loaded netlist %r with %d gates" % (netlist.name, len(netlist.gates)))
    print(verify_extraction(netlist))
    graph = extract_signal_graph(netlist)
    report = analyze(graph)
    print("cycle time:", report.cycle_time)
    print()

    # 3. conversions
    with tempfile.TemporaryDirectory() as scratch:
        dot_path = os.path.join(scratch, "ring.dot")
        json_path = os.path.join(scratch, "ring.json")
        dot.write_dot(graph, dot_path, critical=report.result.critical_cycles)
        json_io.dump(graph, json_path)
        print("wrote", dot_path, "(%d bytes)" % os.path.getsize(dot_path))
        print("wrote", json_path, "(%d bytes)" % os.path.getsize(json_path))
        # round-trip sanity
        assert json_io.load(json_path).structurally_equal(graph)
        print("JSON round-trip is lossless")


if __name__ == "__main__":
    main()
