"""Overload layer: AIMD limiter, brownout, priority/CoDel admission."""

from __future__ import annotations

import threading
import time

import pytest

from repro.circuits.library import muller_ring_tsg
from repro.service.client import ServiceClient, ServiceError
from repro.service.overload import AdaptiveLimiter, BrownoutController
from repro.service.resilience import (
    AdmissionQueue,
    Deadline,
    DeadlineExceeded,
    Saturated,
)
from repro.service.server import make_server


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


@pytest.fixture
def server_factory():
    servers = []

    def build(**overrides):
        server = make_server(quiet=True, **overrides)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append((server, thread))
        return server

    yield build
    for server, thread in servers:
        server.shutdown()
        server.close()
        thread.join(timeout=5)


def spin_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class TestAdaptiveLimiter:
    def test_starts_at_the_static_ceiling(self):
        limiter = AdaptiveLimiter(ceiling=8, clock=FakeClock())
        assert limiter.limit() == 8

    def test_timeout_is_a_hard_congestion_signal(self):
        limiter = AdaptiveLimiter(ceiling=8, decrease_ratio=0.7,
                                  clock=FakeClock())
        limiter.observe(0.1, "timeout")
        assert limiter.limit() == 5  # int(8 * 0.7)
        assert limiter.snapshot()["timeouts"] == 1
        assert limiter.snapshot()["decreases"] == 1

    def test_decreases_are_rate_limited_by_cooldown(self):
        clock = FakeClock()
        limiter = AdaptiveLimiter(ceiling=8, cooldown_s=0.1, clock=clock)
        limiter.observe(0.1, "timeout")
        limiter.observe(0.1, "timeout")  # inside the cooldown: ignored
        assert limiter.snapshot()["decreases"] == 1
        clock.now += 0.2
        limiter.observe(0.1, "timeout")
        assert limiter.snapshot()["decreases"] == 2

    def test_inflated_rtt_vs_moving_floor_decreases(self):
        clock = FakeClock()
        limiter = AdaptiveLimiter(ceiling=8, tolerance=2.0, clock=clock)
        limiter.observe(0.010)  # establishes the 10 ms floor
        clock.now += 0.2
        limiter.observe(0.050)  # 5x the floor: congestion
        snapshot = limiter.snapshot()
        assert snapshot["decreases"] == 1
        assert snapshot["min_rtt_ms"] == pytest.approx(10.0)

    def test_additive_increase_after_a_window_of_good_samples(self):
        clock = FakeClock()
        limiter = AdaptiveLimiter(ceiling=4, cooldown_s=0.01, clock=clock)
        limiter.observe(0.1, "timeout")  # 4 -> 2.8 (limit 2)
        assert limiter.limit() == 2
        clock.now += 1.0
        for _ in range(2):  # one full window at limit 2
            limiter.observe(0.010)
        assert limiter.limit() == 3  # 2.8 + 1.0
        assert limiter.snapshot()["increases"] == 1

    def test_limit_never_leaves_the_configured_band(self):
        clock = FakeClock()
        limiter = AdaptiveLimiter(ceiling=4, min_limit=2, cooldown_s=0.01,
                                  clock=clock)
        for _ in range(20):
            limiter.observe(0.1, "timeout")
            clock.now += 0.1
        assert limiter.limit() == 2
        for _ in range(200):
            limiter.observe(0.010)
        assert limiter.limit() == 4

    def test_rtt_window_forgets_stale_floors(self):
        clock = FakeClock()
        limiter = AdaptiveLimiter(ceiling=8, rtt_window_s=1.0, clock=clock)
        limiter.observe(0.001)
        clock.now += 5.0  # the 1 ms floor ages out entirely
        limiter.observe(0.050)  # would be 50x the stale floor
        assert limiter.snapshot()["decreases"] == 0
        assert limiter.snapshot()["min_rtt_ms"] == pytest.approx(50.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveLimiter(ceiling=0)
        with pytest.raises(ValueError):
            AdaptiveLimiter(ceiling=4, min_limit=5)
        with pytest.raises(ValueError):
            AdaptiveLimiter(tolerance=1.0)
        with pytest.raises(ValueError):
            AdaptiveLimiter(decrease_ratio=1.0)


class TestBrownoutController:
    def test_level_zero_is_the_identity(self):
        brownout = BrownoutController(clock=FakeClock())
        assert brownout.degrade(1000) == 1000
        assert brownout.snapshot()["degraded_requests"] == 0

    def test_sustained_pressure_ratchets_one_level_per_hold(self):
        clock = FakeClock()
        brownout = BrownoutController(hold_s=0.5, clock=clock)
        for _ in range(6):
            brownout.update(True)
        assert brownout.level == 1  # crossed on_threshold once
        for _ in range(4):
            brownout.update(True)  # still inside hold_s
        assert brownout.level == 1
        clock.now += 0.6
        brownout.update(True)
        assert brownout.level == 2

    def test_degrade_shrinks_geometrically_with_counters(self):
        clock = FakeClock()
        brownout = BrownoutController(floor=64, shrink=0.5, clock=clock)
        for _ in range(6):
            brownout.update(True)
        assert brownout.level == 1
        assert brownout.degrade(1000) == 500
        snapshot = brownout.snapshot()
        assert snapshot["degraded_requests"] == 1
        assert snapshot["samples_saved"] == 500

    def test_floor_bounds_degradation(self):
        clock = FakeClock()
        brownout = BrownoutController(floor=64, shrink=0.5, max_level=4,
                                      hold_s=0.1, clock=clock)
        for _ in range(40):
            brownout.update(True)
            clock.now += 0.2
        assert brownout.level == 4
        assert brownout.degrade(100) == 64     # floored
        assert brownout.degrade(32) == 32      # never raised above request
        assert brownout.snapshot()["degraded_requests"] == 1

    def test_recovers_when_pressure_clears(self):
        clock = FakeClock()
        brownout = BrownoutController(hold_s=0.1, clock=clock)
        for _ in range(10):
            brownout.update(True)
            clock.now += 0.2
        assert brownout.level >= 2
        level = brownout.level
        for _ in range(40):
            brownout.update(False)
            clock.now += 0.2
        assert brownout.level == 0
        assert brownout.snapshot()["level_downs"] == level


class TestPriorityAdmission:
    def _occupy(self, queue):
        hold = threading.Event()

        def occupant():
            with queue.admit():
                hold.wait(10)

        thread = threading.Thread(target=occupant, daemon=True)
        thread.start()
        assert spin_until(lambda: queue.inflight() == 1)
        return hold, thread

    def test_interactive_preempts_bulk_on_dequeue(self):
        queue = AdmissionQueue(max_inflight=1, max_queue_depth=8)
        hold, occupant = self._occupy(queue)
        order = []
        admitted = threading.Event()

        def waiter(priority):
            with queue.admit(priority=priority):
                order.append(priority)
                admitted.wait(5)

        bulk = threading.Thread(target=waiter, args=("bulk",), daemon=True)
        bulk.start()
        assert spin_until(lambda: queue.waiting() == 1)
        interactive = threading.Thread(
            target=waiter, args=("interactive",), daemon=True
        )
        interactive.start()
        assert spin_until(lambda: queue.waiting() == 2)
        hold.set()  # free the slot: the later interactive arrival wins
        assert spin_until(lambda: len(order) == 1)
        assert order == ["interactive"]
        admitted.set()
        for thread in (occupant, bulk, interactive):
            thread.join(5)
        assert order == ["interactive", "bulk"]

    def test_interactive_arrival_displaces_newest_bulk_waiter(self):
        queue = AdmissionQueue(max_inflight=1, max_queue_depth=1)
        hold, occupant = self._occupy(queue)
        bulk_outcome = []

        def bulk_waiter():
            try:
                with queue.admit(priority="bulk"):
                    bulk_outcome.append("admitted")
            except Saturated:
                bulk_outcome.append("shed")

        bulk = threading.Thread(target=bulk_waiter, daemon=True)
        bulk.start()
        assert spin_until(lambda: queue.waiting() == 1)

        done = []

        def interactive_waiter():
            with queue.admit(priority="interactive"):
                done.append(True)

        interactive = threading.Thread(target=interactive_waiter, daemon=True)
        interactive.start()
        assert spin_until(lambda: bulk_outcome == ["shed"])
        hold.set()
        interactive.join(5)
        assert done == [True]
        snapshot = queue.snapshot()
        assert snapshot["displaced"] == 1
        assert snapshot["shed"] == 1

    def test_bulk_arrival_cannot_displace_bulk(self):
        queue = AdmissionQueue(max_inflight=1, max_queue_depth=1)
        hold, occupant = self._occupy(queue)

        def bulk_waiter():
            with queue.admit(priority="bulk"):
                pass

        bulk = threading.Thread(target=bulk_waiter, daemon=True)
        bulk.start()
        assert spin_until(lambda: queue.waiting() == 1)
        with pytest.raises(Saturated):
            queue.acquire(priority="bulk")
        hold.set()
        bulk.join(5)

    def test_unknown_priority_is_rejected(self):
        queue = AdmissionQueue(max_inflight=1, max_queue_depth=1)
        with pytest.raises(ValueError):
            queue.acquire(priority="urgent")

    def test_expired_waiter_is_dropped_at_dequeue(self):
        clock = FakeClock()
        queue = AdmissionQueue(max_inflight=1, max_queue_depth=4)
        hold, occupant = self._occupy(queue)
        outcome = []

        def waiter():
            try:
                with queue.admit(Deadline(0.05, clock=clock)):
                    outcome.append("admitted")
            except DeadlineExceeded:
                outcome.append("expired")

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        assert spin_until(lambda: queue.waiting() == 1)
        clock.now += 0.1  # the waiter's budget lapses while queued
        hold.set()
        thread.join(5)
        assert outcome == ["expired"]
        snapshot = queue.snapshot()
        assert snapshot["expired_in_queue"] == 1
        assert snapshot["inflight"] == 0  # the freed slot was not wasted


class TestCodelShedding:
    def test_sustained_sojourn_sheds_the_worst_waiter(self):
        clock = FakeClock()
        queue = AdmissionQueue(
            max_inflight=1, max_queue_depth=8,
            codel_target_ms=50.0, codel_interval_ms=100.0, clock=clock,
        )
        hold_first = threading.Event()

        def occupant():
            with queue.admit():
                hold_first.wait(10)

        first = threading.Thread(target=occupant, daemon=True)
        first.start()
        assert spin_until(lambda: queue.inflight() == 1)

        outcomes = []
        admitted_hold = threading.Event()

        def waiter(index):
            try:
                with queue.admit(priority="bulk"):
                    outcomes.append(("admitted", index))
                    admitted_hold.wait(5)
            except Saturated:
                outcomes.append(("shed", index))

        waiters = []
        for index in range(3):
            thread = threading.Thread(target=waiter, args=(index,),
                                      daemon=True)
            thread.start()
            waiters.append(thread)
            assert spin_until(
                lambda count=index + 1: queue.waiting() == count
            )
        # First dequeue at t=0.2: sojourn 200 ms > 50 ms target arms
        # the interval timer (expires at t=0.3).
        clock.now = 0.2
        hold_first.set()
        assert spin_until(
            lambda: any(o[0] == "admitted" for o in outcomes)
        )
        # Second dequeue at t=0.45: still above target past the armed
        # interval -> dropping state -> the newest waiter is shed.
        clock.now = 0.45
        admitted_hold.set()
        assert spin_until(lambda: len(outcomes) == 3)
        kinds = [kind for kind, _ in outcomes]
        assert kinds.count("admitted") == 2
        assert kinds.count("shed") == 1
        snapshot = queue.snapshot()
        assert snapshot["codel_shed"] == 1
        assert snapshot["codel_dropping"] is True
        for thread in waiters:
            thread.join(5)

    def test_recovered_sojourn_leaves_dropping_state(self):
        clock = FakeClock()
        queue = AdmissionQueue(
            max_inflight=1, max_queue_depth=8,
            codel_target_ms=50.0, codel_interval_ms=100.0, clock=clock,
        )
        # Fast admissions keep sojourn at zero: never arms the timer.
        for _ in range(5):
            with queue.admit():
                pass
        snapshot = queue.snapshot()
        assert snapshot["codel_shed"] == 0
        assert snapshot["codel_dropping"] is False


class TestLimiterIntegration:
    def test_limiter_lowers_the_effective_limit(self):
        clock = FakeClock()
        limiter = AdaptiveLimiter(ceiling=4, cooldown_s=0.05, clock=clock)
        queue = AdmissionQueue(max_inflight=4, max_queue_depth=0,
                               limiter=limiter, clock=clock)
        assert queue.limit() == 4
        for _ in range(6):
            limiter.observe(0.1, "timeout")
            clock.now += 0.1
        assert queue.limit() == 1
        queue.acquire()
        with pytest.raises(Saturated):
            queue.acquire()
        queue.release()
        assert queue.snapshot()["limit"] == 1

    def test_limiter_never_raises_above_the_static_cap(self):
        limiter = AdaptiveLimiter(ceiling=16, clock=FakeClock())
        queue = AdmissionQueue(max_inflight=2, max_queue_depth=0,
                               limiter=limiter)
        assert queue.limit() == 2


class TestServerBrownout:
    def test_degraded_response_is_stamped_and_surfaced(self, server_factory):
        server = server_factory(brownout=True, brownout_floor=16,
                                max_inflight=4)
        service = server.service
        for _ in range(6):
            service.brownout.update(True)
        assert service.brownout.level >= 1
        stamps = []
        client = ServiceClient(server.url, timeout=10, retries=0,
                               on_degraded=stamps.append)
        result = client.montecarlo(muller_ring_tsg(3), samples=256, seed=3)
        assert result["count"] < 256
        assert result["degraded"] == {
            "requested": 256, "served": result["count"],
        }
        assert stamps == [result["degraded"]]
        assert client.degraded_responses == 1
        stats = client.stats()
        assert stats["overload"]["brownout"]["level"] >= 1
        assert stats["overload"]["brownout"]["degraded_requests"] >= 1
        client.close()

    def test_degraded_result_is_never_cached(self, server_factory):
        server = server_factory(brownout=True, brownout_floor=16,
                                max_inflight=4)
        service = server.service
        for _ in range(6):
            service.brownout.update(True)
        client = ServiceClient(server.url, timeout=10, retries=0)
        degraded = client.montecarlo(muller_ring_tsg(3), samples=256, seed=9)
        assert degraded["count"] < 256
        # Pressure clears: the same request must be recomputed at full
        # fidelity, not replayed from a degraded cache entry.  (The
        # controller's real clock enforces hold_s between steps.)
        for _ in range(60):
            service.brownout.update(False)
        assert spin_until(
            lambda: service.brownout.update(False) == 0, timeout=5.0
        )
        full = client.montecarlo(muller_ring_tsg(3), samples=256, seed=9)
        assert full["count"] == 256
        assert "degraded" not in full
        assert full["cached"] is False
        client.close()

    def test_brownout_disabled_by_default(self, server_factory):
        server = server_factory(max_inflight=4)
        client = ServiceClient(server.url, timeout=10, retries=0)
        result = client.montecarlo(muller_ring_tsg(3), samples=128, seed=1)
        assert result["count"] == 128
        assert "degraded" not in result
        stats = client.stats()
        assert stats["overload"]["brownout"] is None
        assert stats["overload"]["limiter"] is not None  # adaptive default
        client.close()

    def test_unknown_priority_is_a_structured_400(self, server_factory):
        server = server_factory(max_inflight=4)
        client = ServiceClient(server.url, timeout=10, retries=0)
        with pytest.raises(ServiceError) as caught:
            client.montecarlo(muller_ring_tsg(3), samples=32, seed=1,
                              priority="urgent")
        assert caught.value.status == 400
        client.close()

    def test_adaptive_limit_on_stats_and_metrics(self, server_factory):
        server = server_factory(max_inflight=3, metrics=True)
        client = ServiceClient(server.url, timeout=10, retries=0)
        client.analyze(muller_ring_tsg(3))
        stats = client.stats()
        limiter = stats["overload"]["limiter"]
        assert limiter["ceiling"] == 3
        assert limiter["min_limit"] <= limiter["limit"] <= 3
        assert limiter["samples"] >= 1
        assert stats["admission"]["limit"] <= 3
        status, raw, _ = client.transport.request("GET", "/metrics", None, {})
        assert status == 200
        text = raw.decode("utf-8")
        assert "repro_overload_limit" in text
        assert "repro_admission_limit" in text
        client.close()
