"""Event-Rule System (ERS) front-end (Burns [2]).

The paper notes its algorithm "is just as applicable ... to any other
equivalent model, for example to event rules systems [2]".  An ERS
describes repetitive behaviour by *rules*::

    <e, i>  ->(δ)  <f, i + ε>

"the (i+ε)-th occurrence of f waits until δ after the i-th occurrence
of e", with a non-negative integer *occurrence-index offset* ε.  This
is Burns' formulation for asynchronous-circuit performance analysis;
the cycle time is ``max over cycles Σδ / Σε`` exactly as for Signal
Graphs.

The conversion to a Timed Signal Graph is direct: a rule with offset
ε becomes an arc with ε tokens (expanded through the initially-safe
chain when ε ≥ 2).  One-shot start-up rules (``once=True``) become
disengageable arcs from one-shot events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.arithmetic import Number
from ..core.cycle_time import CycleTimeResult, compute_cycle_time
from ..core.errors import GraphConstructionError
from ..core.signal_graph import TimedSignalGraph


@dataclass(frozen=True)
class Rule:
    """One ERS rule ``<source, i> ->(delay) <target, i + offset>``."""

    source: str
    target: str
    delay: Number
    offset: int = 0
    once: bool = False

    def __str__(self) -> str:
        if self.once:
            return "<%s> -(%s)-> <%s>  (once)" % (self.source, self.delay, self.target)
        return "<%s, i> -(%s)-> <%s, i+%d>" % (
            self.source,
            self.delay,
            self.target,
            self.offset,
        )


class EventRuleSystem:
    """Builder for event-rule systems."""

    def __init__(self, name: str = "ers"):
        self.name = name
        self._rules: List[Rule] = []
        self._events: List[str] = []

    def add_event(self, name: str) -> str:
        if name not in self._events:
            self._events.append(name)
        return name

    def add_rule(
        self,
        source: str,
        target: str,
        delay: Number = 0,
        offset: int = 0,
        once: bool = False,
    ) -> Rule:
        """Add a rule.  ``offset`` must be a non-negative integer;
        ``once=True`` marks a start-up rule active for the first
        enabling only (the source must then be a one-shot event)."""
        if offset < 0 or int(offset) != offset:
            raise GraphConstructionError(
                "occurrence offset must be a non-negative integer, got %r"
                % (offset,)
            )
        self.add_event(source)
        self.add_event(target)
        rule = Rule(source, target, delay, int(offset), once)
        self._rules.append(rule)
        return rule

    @property
    def rules(self) -> List[Rule]:
        return list(self._rules)

    @property
    def events(self) -> List[str]:
        return list(self._events)

    def to_signal_graph(self) -> TimedSignalGraph:
        """Convert to the Timed Signal Graph representation."""
        graph = TimedSignalGraph(name=self.name)
        for event in self._events:
            graph.add_event(event)
        for rule in self._rules:
            if rule.once:
                graph.add_arc(
                    rule.source,
                    rule.target,
                    rule.delay,
                    marked=bool(rule.offset),
                    disengageable=True,
                )
            elif rule.offset <= 1:
                graph.add_arc(
                    rule.source,
                    rule.target,
                    rule.delay,
                    marked=bool(rule.offset),
                )
            else:
                graph.add_multimarked_arc(
                    rule.source, rule.target, rule.delay, rule.offset
                )
        return graph

    def __repr__(self) -> str:
        return "EventRuleSystem(name=%r, events=%d, rules=%d)" % (
            self.name,
            len(self._events),
            len(self._rules),
        )


def cycle_time(system: EventRuleSystem, **kwargs) -> CycleTimeResult:
    """Cycle time of an ERS via the paper's algorithm."""
    return compute_cycle_time(system.to_signal_graph(), **kwargs)
