"""The paper's cycle-time algorithm (Section VII).

Skeleton, as published:

1. take the Timed Signal Graph;
2. identify the *border events* (repetitive events with an initially
   marked in-arc) — a cut set of all cycles;
3. for each of the ``b`` border events run an event-initiated timing
   simulation over ``b`` periods of the unfolding, collecting the
   average occurrence distance ``delta_{g_0}(g_i) = t_{g_0}(g_i)/i``
   after each full period;
4. the largest of the (at most ``b^2``) collected distances is the
   cycle time (Propositions 7 and 8);
5. backtrack the longest path of a winning simulation to recover a
   critical cycle.

One timing simulation touches at most ``b * m`` unfolding arcs, so the
whole algorithm runs in ``O(b^2 * m)`` — typically near-linear since
``b`` is small for real circuits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .arithmetic import Number, exact_div, numbers_close
from .cycles import Cycle, make_cycle
from .errors import AcyclicGraphError, SignalGraphError
from .events import event_label
from .kernel import resolve_kernel, run_border_simulations
from .signal_graph import Event, TimedSignalGraph
from .simulation import EventInitiatedSimulation
from .validation import validate as validate_graph
from ..obs.profile import phase as _phase
from ..obs.tracing import tracer as _tracer


@dataclass(frozen=True)
class BorderDistance:
    """One collected measurement ``delta_{g_0}(g_i)``."""

    border_event: Event
    period: int
    time: Number
    distance: Number

    def __str__(self) -> str:
        return "delta_{%s_0}(%s_%d) = %s/%d = %s" % (
            event_label(self.border_event),
            event_label(self.border_event),
            self.period,
            self.time,
            self.period,
            self.distance,
        )


@dataclass
class CycleTimeResult:
    """Outcome of the timing-simulation cycle-time algorithm.

    Attributes
    ----------
    cycle_time:
        The cycle time λ of the graph (exact
        :class:`fractions.Fraction` for int/Fraction delays).
    critical_cycles:
        Critical cycles recovered by backtracking winning simulations —
        at least one; possibly not *all* critical cycles (use the
        exhaustive baseline to enumerate every one).
    border_events:
        The border events, in graph insertion order.
    distances:
        All collected ``delta`` measurements (at most ``b^2``).
    periods:
        How many periods each simulation covered (>= ``b``).
    simulations:
        The per-border-event simulations, for inspection, timing
        diagrams and backtracking.  Empty when the analysis was run
        with ``keep_simulations=False`` (bulk sweeps drop them to keep
        the memory footprint flat).
    """

    cycle_time: Number
    critical_cycles: List[Cycle]
    border_events: Tuple[Event, ...]
    distances: List[BorderDistance]
    periods: int
    simulations: Dict[Event, EventInitiatedSimulation] = field(repr=False, default_factory=dict)

    @property
    def critical_events(self) -> frozenset:
        """Events appearing on a recovered critical cycle."""
        found = set()
        for cycle in self.critical_cycles:
            found.update(cycle.events)
        return frozenset(found)

    def winning_distances(self) -> List[BorderDistance]:
        """The measurements that achieve the cycle time."""
        return [
            record
            for record in self.distances
            if numbers_close(record.distance, self.cycle_time)
        ]

    def distance_table(self) -> str:
        """Formatted table of all collected distances (for reports)."""
        lines = ["border event   i   t_{g0}(g_i)   delta"]
        for record in self.distances:
            lines.append(
                "%-13s %3d   %-11s   %s"
                % (
                    event_label(record.border_event),
                    record.period,
                    record.time,
                    record.distance,
                )
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        cycles = "; ".join(str(cycle) for cycle in self.critical_cycles)
        return "cycle time %s, critical: %s" % (self.cycle_time, cycles)


def compute_cycle_time(
    graph: TimedSignalGraph,
    periods: Optional[int] = None,
    check: bool = True,
    kernel: str = "auto",
    workers: Optional[int] = None,
    keep_simulations: bool = True,
    backtrack: bool = True,
    cache: object = "auto",
) -> CycleTimeResult:
    """Run the paper's algorithm on a validated Timed Signal Graph.

    Parameters
    ----------
    graph:
        A live, connected, initially-safe Timed Signal Graph.
    periods:
        Number of unfolding periods per simulation.  Defaults to the
        number of border events ``b``, which Proposition 7 proves
        sufficient; experiments may pass more (the Muller ring table in
        Section VIII-D extends to 10 periods).
    check:
        Run structural validation first (recommended; disable only for
        repeated analyses of a graph already validated).
    kernel:
        Simulation engine: ``"auto"`` (exact kernel for int/Fraction
        delays, float64 fast path otherwise), ``"exact"``, ``"float"``
        or ``"legacy"`` (the original dict-based loops).  See
        :mod:`repro.core.kernel`.
    workers:
        Fan the ``b`` border simulations out over a thread pool of this
        size (default: run them serially).
    keep_simulations:
        Retain the per-border simulations on the result.  Bulk sweeps
        (Monte-Carlo, sensitivity) pass False to drop the ``b`` full
        simulations once the critical cycles are backtracked.
    backtrack:
        Recover critical cycles from the winning simulations.  Sweeps
        that only need λ (a Monte-Carlo histogram, an interval bound
        probe) pass False and skip the backtracking cost entirely;
        ``critical_cycles`` is then empty.
    cache:
        Content-addressed caching policy (:mod:`repro.service.cache`).
        ``"auto"`` (default) resolves the compiled topology through the
        process-wide compile cache — a graph content-equal to one seen
        before adopts its compiled programs instead of recompiling, and
        a delay-only variant rebinds in O(m).  ``"results"``
        additionally memoises the finished analysis by content hash
        (only applied together with ``keep_simulations=False``, since
        cached results are shared).  ``False``/``"off"`` bypasses both.
    """
    if check:
        with _phase("validate"):
            validate_graph(graph)
    use_cache = cache not in (False, None, "off")
    resolved = resolve_kernel(graph, kernel)
    if use_cache and resolved != "legacy":
        # Lazy import: core must stay importable without the service
        # package, and the service package imports core.
        from ..service.cache import shared_compiled_graph

        shared_compiled_graph(graph)
    border = graph.border_events
    if not border:
        raise AcyclicGraphError(
            "graph %r has no border events (no marked arcs on cycles)" % graph.name
        )
    if periods is None:
        periods = len(border)
    elif periods < len(border):
        raise SignalGraphError(
            "periods=%d is below the sound bound b=%d" % (periods, len(border))
        )

    cache_key = None
    if use_cache and cache == "results" and not keep_simulations:
        from ..service.cache import result_cache
        from ..service.hashing import analysis_key

        cache_key = analysis_key(
            graph,
            "cycle-time",
            periods=periods,
            kernel=resolved,
            backtrack=backtrack,
        )
        memoised = result_cache().get(cache_key)
        if memoised is not None:
            return memoised

    with _tracer().span(
        "kernel.analyze",
        attributes={"events": len(graph), "border": len(border), "periods": periods},
    ):
        with _phase("simulate"):
            simulations = run_border_simulations(
                graph, periods, kernel=kernel, workers=workers, border=border
            )
        with _phase("collect"):
            records: List[BorderDistance] = []
            best: Optional[Number] = None
            for border_event, simulation in simulations.items():
                for index, time in simulation.initiator_times():
                    distance = exact_div(time, index)
                    records.append(
                        BorderDistance(border_event, index, time, distance)
                    )
                    if best is None or distance > best:
                        best = distance
        if best is None:
            raise AcyclicGraphError(
                "no border event of %r re-occurs within %d periods"
                % (graph.name, periods)
            )

        if backtrack:
            with _phase("backtrack"):
                winners = [
                    record
                    for record in records
                    if numbers_close(record.distance, best)
                ]
                cycles = _backtrack_critical_cycles(
                    graph, simulations, winners, best
                )
        else:
            cycles = []
    result = CycleTimeResult(
        cycle_time=best,
        critical_cycles=cycles,
        border_events=border,
        distances=records,
        periods=periods,
        simulations=simulations if keep_simulations else {},
    )
    if cache_key is not None:
        from ..service.cache import result_cache

        result_cache().put(cache_key, result)
    return result


def _backtrack_critical_cycles(
    graph: TimedSignalGraph,
    simulations: Dict[Event, EventInitiatedSimulation],
    winners: Sequence[BorderDistance],
    cycle_time: Number,
) -> List[Cycle]:
    """Recover critical cycles from winning simulations (Proposition 1).

    The longest path from ``(g, 0)`` to ``(g, i)`` is an unfolded cycle
    whose effective length equals the cycle time.  Its projection onto
    the Signal Graph may repeat events (a non-simple cycle); every
    simple sub-cycle of the decomposition then achieves the cycle time
    (Proposition 5 with equality), so we return those.
    """
    found: Dict[Tuple[Event, ...], Cycle] = {}
    seen_walks = set()
    processed_borders = set()
    for record in winners:
        # One witness per border event suffices (ties at several periods
        # typically re-trace the same cycle); the exhaustive set is
        # available from PerformanceReport.all_critical_cycles().
        if record.border_event in processed_borders:
            continue
        processed_borders.add(record.border_event)
        simulation = simulations[record.border_event]
        path = simulation.critical_path(record.border_event, record.period)
        events = tuple(instance[0] for instance in path)
        if events in seen_walks:
            continue
        seen_walks.add(events)
        for cycle in _simple_sub_cycles(graph, events):
            if numbers_close(cycle.effective_length, cycle_time):
                found.setdefault(cycle.events, cycle)
    return list(found.values())


def _simple_sub_cycles(graph: TimedSignalGraph, events: Sequence[Event]) -> List[Cycle]:
    """Decompose a closed projected walk into simple cycles.

    Walks the event sequence with a stack; whenever an event repeats,
    the enclosed loop is popped off as one simple cycle.
    """
    cycles: List[Cycle] = []
    stack: List[Event] = []
    position: Dict[Event, int] = {}
    for event in events:
        if event in position:
            start = position[event]
            loop = stack[start:]
            if loop:
                cycles.append(make_cycle(graph, loop))
            for removed in loop:
                del position[removed]
            del stack[start:]
        position[event] = len(stack)
        stack.append(event)
    return cycles
