"""Edge-case tests for transformations and composition corners."""

from fractions import Fraction

import pytest

from repro.core import (
    TimedSignalGraph,
    TimingSimulation,
    compose,
    compute_cycle_time,
    merge_chain_events,
    remove_redundant_arcs,
    validate,
)
from repro.core.errors import GraphConstructionError


class TestMergeWithTokens:
    def test_merge_accumulating_two_tokens(self):
        # a -> h (marked) -> b (marked) merges into a 2-token chain
        g = TimedSignalGraph()
        g.add_arc("a+", "_h", 3, marked=True)
        g.add_arc("_h", "b+", 2, marked=True)
        g.add_arc("b+", "a+", 1)
        before = compute_cycle_time(g).cycle_time
        merged = merge_chain_events(g)
        after = compute_cycle_time(merged).cycle_time
        assert before == after == Fraction(6, 2)

    def test_merge_skips_conflicting_parallel_arc(self):
        g = TimedSignalGraph()
        g.add_arc("a+", "_h", 2)
        g.add_arc("_h", "b+", 2, marked=True)
        g.add_arc("a+", "b+", 1)  # parallel, different marking
        g.add_arc("b+", "a+", 1, marked=True)
        merged = merge_chain_events(g)
        # cannot merge into the unmarked parallel arc; _h survives
        assert merged.has_event("_h")
        assert compute_cycle_time(merged).cycle_time == compute_cycle_time(g).cycle_time

    def test_merge_into_existing_same_marking_arc(self):
        g = TimedSignalGraph()
        g.add_arc("a+", "_h", 2)
        g.add_arc("_h", "b+", 2)
        g.add_arc("a+", "b+", 9)  # parallel, same (zero) marking
        g.add_arc("b+", "a+", 1, marked=True)
        merged = merge_chain_events(g)
        assert not merged.has_event("_h")
        assert merged.arc("a+", "b+").delay == 9  # max(4, 9)
        assert compute_cycle_time(merged).cycle_time == 10


class TestRedundantArcsWithZeroDelays:
    def test_zero_delay_parallel_path(self):
        g = TimedSignalGraph()
        g.add_arc("a+", "b+", 0)
        g.add_arc("b+", "c+", 0)
        g.add_arc("a+", "c+", 0)  # dominated at equality
        g.add_arc("c+", "a+", 5, marked=True)
        reduced = remove_redundant_arcs(g)
        assert not reduced.has_arc("a+", "c+")
        assert compute_cycle_time(reduced).cycle_time == 5

    def test_self_loop_untouched(self):
        g = TimedSignalGraph()
        g.add_arc("a+", "a+", 4, marked=True)
        reduced = remove_redundant_arcs(g)
        assert reduced.has_arc("a+", "a+")


class TestComposeEdgeCases:
    def test_initial_declaration_survives(self):
        left = TimedSignalGraph()
        left.add_event("boot", initial=True)
        left.add_arc("boot", "a+", 1)
        left.add_arc("a+", "b+", 1)
        left.add_arc("b+", "a+", 1, marked=True)
        right = TimedSignalGraph()
        right.add_arc("b+", "c+", 1)
        right.add_arc("c+", "b+", 1, marked=True)
        merged = compose(left, right)
        assert "boot" in {str(e) for e in merged.initial_events}
        validate(merged)

    def test_conflicting_disengageable_rejected(self):
        left = TimedSignalGraph()
        left.add_arc("x-", "a+", 1, disengageable=True)
        right = TimedSignalGraph()
        right.add_arc("x-", "a+", 1)
        with pytest.raises(GraphConstructionError):
            compose(left, right)

    def test_composition_timing_is_maximum_of_constraints(self):
        # two components constraining the same event: MAX semantics
        left = TimedSignalGraph()
        left.add_arc("go-", "sync+", 3, disengageable=True)
        left.add_arc("sync+", "l+", 1)
        left.add_arc("l+", "sync+", 9, marked=True)
        right = TimedSignalGraph()
        right.add_arc("ready-", "sync+", 7, disengageable=True)
        right.add_arc("sync+", "r+", 1)
        right.add_arc("r+", "sync+", 9, marked=True)
        merged = compose(left, right)
        sim = TimingSimulation(merged, periods=1)
        from repro.core import Transition

        assert sim.time(Transition.parse("sync+"), 0) == 7  # max(3, 7)
