"""Resilience primitives for the analysis service.

The serving stack (PR 3) made the reproduction shareable; this module
makes its failure behaviour *bounded and testable*, in the same spirit
as the paper's Propositions 7–8 bounding when timing simulation may
stop: every request carries an explicit deadline, every queue has an
explicit depth, and every failure mode maps to a declared, structured
outcome instead of an unbounded hang.

Four independent, composable pieces:

* :class:`Deadline` / :exc:`DeadlineExceeded` — a monotonic-clock
  budget threaded through the whole request path and checked at each
  expensive stage (admission, compile, kernel dispatch, between batch
  chunks).  An expired deadline becomes a structured HTTP 504, never a
  hung thread.
* :class:`AdmissionQueue` / :exc:`Saturated` — a bounded in-flight cap
  plus a bounded wait queue in front of the compute path.  When both
  are full the request is *shed* immediately with a 429 +
  ``Retry-After`` instead of piling another unbounded thread onto
  ``ThreadingHTTPServer``.  PR 9 made the discipline deadline- and
  priority-aware: expired waiters are dropped at *dequeue* (a slot is
  never wasted on a caller that already gave up), sustained sojourn
  above a CoDel-style target sheds the worst-priority newest waiter,
  an ``interactive`` arrival may displace a queued ``bulk`` sweep,
  and an attached :class:`repro.service.overload.AdaptiveLimiter`
  lowers the effective in-flight limit below the static ceiling.
* :class:`RetryPolicy` — client-side exponential backoff with *full
  jitter* (delay drawn uniformly from ``[0, min(cap, base·2^attempt)]``),
  honouring a server-supplied ``Retry-After`` floor.
* :class:`CircuitBreaker` — fast-fails client calls after a run of
  consecutive transport errors, with a half-open single-probe recovery
  after ``reset_after`` seconds.

Everything here is stdlib-only and has no dependency on the rest of
the service package, so the server, client, cache and coalescer can
all import it freely.
"""

from __future__ import annotations

import math
import random
import threading
import time
from contextlib import contextmanager
from typing import Dict, List, Optional


class DeadlineExceeded(Exception):
    """A request's time budget ran out at ``stage``.

    The server maps this to a structured HTTP 504; the coalescer uses
    it to evict lingering requests whose callers have already given up.
    """

    def __init__(self, stage: str, timeout_s: Optional[float] = None):
        detail = "request deadline exceeded at stage %r" % stage
        if timeout_s is not None:
            detail += " (budget %.3fs)" % timeout_s
        super().__init__(detail)
        self.stage = stage
        self.timeout_s = timeout_s


class Deadline:
    """A monotonic-clock time budget for one request.

    >>> deadline = Deadline.after_ms(250)
    >>> deadline.check("pre-compile")   # raises DeadlineExceeded if late
    >>> deadline.remaining()            # seconds left (may be negative)
    """

    __slots__ = ("timeout_s", "_clock", "_expires")

    def __init__(self, timeout_s: float, clock=time.monotonic):
        self.timeout_s = float(timeout_s)
        self._clock = clock
        self._expires = clock() + self.timeout_s

    @classmethod
    def after_ms(cls, timeout_ms: float, clock=time.monotonic) -> "Deadline":
        return cls(float(timeout_ms) / 1000.0, clock=clock)

    def remaining(self) -> float:
        return self._expires - self._clock()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, stage: str) -> None:
        if self.expired():
            raise DeadlineExceeded(stage, self.timeout_s)

    def __repr__(self) -> str:
        return "Deadline(remaining=%.3fs)" % self.remaining()


class Saturated(Exception):
    """Both the in-flight cap and the wait queue are full: shed."""

    def __init__(self, retry_after: float = 0.25):
        super().__init__(
            "server saturated; retry after %.2fs" % retry_after
        )
        self.retry_after = retry_after


#: Priority classes, best first.  ``interactive`` preempts ``normal``
#: which preempts ``bulk``; within a class FIFO order is preserved.
PRIORITIES: Dict[str, int] = {"interactive": 0, "normal": 1, "bulk": 2}


class _Waiter:
    """One parked acquire(); its ``state`` is owned by the queue lock."""

    __slots__ = ("rank", "enqueued_at", "deadline", "state")

    WAITING = "waiting"
    ADMITTED = "admitted"
    EXPIRED = "expired"
    SHED = "shed"

    def __init__(self, rank: int, enqueued_at: float,
                 deadline: Optional[Deadline]) -> None:
        self.rank = rank
        self.enqueued_at = enqueued_at
        self.deadline = deadline
        self.state = self.WAITING


class AdmissionQueue:
    """Bounded, priority- and deadline-aware admission control.

    At most ``max_inflight`` requests compute concurrently (an attached
    :class:`~repro.service.overload.AdaptiveLimiter` may lower the
    *effective* limit below that ceiling, never above); at most
    ``max_queue_depth`` more wait for a slot.  The discipline:

    * a request arriving with queue and slots full is shed immediately
      with :exc:`Saturated` — unless a strictly worse-priority waiter
      is queued, in which case that waiter is *displaced* (it gets the
      429) and the arrival takes its place;
    * slots are granted strictly by ``(priority, arrival time)``;
    * a waiter whose :class:`Deadline` has expired is dropped at
      dequeue — a freed slot is never wasted on a caller that already
      gave up (``expired_in_queue`` counter, HTTP 504);
    * when the sojourn of dequeued requests stays above
      ``codel_target_ms`` for a full ``codel_interval_ms`` the queue
      enters a CoDel-style dropping state, shedding the worst-priority
      newest waiter on an ``interval/sqrt(drops)`` schedule until
      sojourn recovers (``codel_shed`` counter).

    All counters surface through :meth:`snapshot` on ``/stats``.
    """

    def __init__(
        self,
        max_inflight: int = 8,
        max_queue_depth: int = 32,
        retry_after: float = 0.25,
        lock: Optional[threading.RLock] = None,
        limiter=None,
        codel_target_ms: float = 50.0,
        codel_interval_ms: float = 100.0,
        clock=time.monotonic,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be positive")
        if max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        self.max_inflight = max_inflight
        self.max_queue_depth = max_queue_depth
        self.retry_after = retry_after
        self.limiter = limiter
        self.codel_target_s = codel_target_ms / 1000.0
        self.codel_interval_s = codel_interval_ms / 1000.0
        self._clock = clock
        # `lock` may be the daemon's shared stats RLock, making
        # snapshot() part of one atomic multi-component read;
        # Condition.wait releases it, so queued waiters don't hold up
        # a concurrent scrape.
        self._cond = threading.Condition(
            lock if lock is not None else threading.Lock()
        )
        self._inflight = 0
        self._waiters: List[_Waiter] = []
        self._first_above: Optional[float] = None
        self._dropping = False
        self._drop_count = 0
        self._drop_next = 0.0
        self._last_sojourn = 0.0
        self._counts: Dict[str, int] = {
            "admitted": 0, "shed": 0, "expired_in_queue": 0,
            "peak_inflight": 0, "peak_waiting": 0,
            "codel_shed": 0, "displaced": 0,
        }

    # ------------------------------------------------------------------
    def _limit_locked(self) -> int:
        if self.limiter is None:
            return self.max_inflight
        return max(1, min(self.max_inflight, self.limiter.limit()))

    def _finish_locked(self, waiter: _Waiter, state: str) -> None:
        waiter.state = state
        try:
            self._waiters.remove(waiter)
        except ValueError:
            pass
        if state == _Waiter.EXPIRED:
            self._counts["expired_in_queue"] += 1

    def _victim_locked(self, rank: int) -> Optional[_Waiter]:
        """The newest waiter with priority strictly worse than ``rank``."""
        worst: Optional[_Waiter] = None
        for waiter in self._waiters:
            if waiter.rank <= rank:
                continue
            if worst is None or (
                (waiter.rank, waiter.enqueued_at)
                > (worst.rank, worst.enqueued_at)
            ):
                worst = waiter
        return worst

    def _codel_locked(self, now: float, sojourn: float) -> None:
        self._last_sojourn = sojourn
        if sojourn < self.codel_target_s:
            self._first_above = None
            self._dropping = False
            return
        if self._first_above is None:
            self._first_above = now + self.codel_interval_s
            return
        if not self._dropping and now >= self._first_above:
            self._dropping = True
            self._drop_count = 0
            self._drop_next = now
        while self._dropping and now >= self._drop_next:
            victim = self._victim_locked(-1)
            if victim is None:
                break
            self._finish_locked(victim, _Waiter.SHED)
            self._counts["codel_shed"] += 1
            self._counts["shed"] += 1
            self._drop_count += 1
            self._drop_next = now + (
                self.codel_interval_s / math.sqrt(self._drop_count)
            )

    def _promote_locked(self) -> None:
        """Grant freed capacity to the best live waiters."""
        changed = False
        while self._waiters:
            best = min(
                self._waiters, key=lambda w: (w.rank, w.enqueued_at)
            )
            if best.deadline is not None and best.deadline.expired():
                self._finish_locked(best, _Waiter.EXPIRED)
                changed = True
                continue
            if self._inflight >= self._limit_locked():
                break
            now = self._clock()
            self._finish_locked(best, _Waiter.ADMITTED)
            self._admit()
            self._codel_locked(now, now - best.enqueued_at)
            changed = True
        if changed:
            self._cond.notify_all()

    # ------------------------------------------------------------------
    def acquire(self, deadline: Optional[Deadline] = None,
                priority: str = "normal") -> None:
        try:
            rank = PRIORITIES[priority]
        except KeyError:
            raise ValueError(
                "unknown priority %r (expected one of %s)"
                % (priority, "/".join(sorted(PRIORITIES)))
            )
        with self._cond:
            if self._inflight < self._limit_locked() and not self._waiters:
                self._admit()
                return
            if len(self._waiters) >= self.max_queue_depth:
                victim = self._victim_locked(rank)
                if victim is None:
                    self._counts["shed"] += 1
                    raise Saturated(self.retry_after)
                self._finish_locked(victim, _Waiter.SHED)
                self._counts["displaced"] += 1
                self._counts["shed"] += 1
                self._cond.notify_all()
            waiter = _Waiter(rank, self._clock(), deadline)
            self._waiters.append(waiter)
            if len(self._waiters) > self._counts["peak_waiting"]:
                self._counts["peak_waiting"] = len(self._waiters)
            while waiter.state == _Waiter.WAITING:
                self._promote_locked()
                if waiter.state != _Waiter.WAITING:
                    break
                if deadline is not None:
                    remaining = deadline.remaining()
                    if remaining <= 0.0:
                        self._finish_locked(waiter, _Waiter.EXPIRED)
                        break
                    self._cond.wait(min(remaining, 0.05))
                else:
                    self._cond.wait(0.05)
            if waiter.state == _Waiter.ADMITTED:
                return
            if waiter.state == _Waiter.EXPIRED:
                raise DeadlineExceeded(
                    "admission-queue",
                    deadline.timeout_s if deadline is not None else None,
                )
            raise Saturated(self.retry_after)  # displaced or CoDel-shed

    def _admit(self) -> None:
        self._inflight += 1
        self._counts["admitted"] += 1
        if self._inflight > self._counts["peak_inflight"]:
            self._counts["peak_inflight"] = self._inflight

    def release(self) -> None:
        with self._cond:
            self._inflight -= 1
            self._promote_locked()
            self._cond.notify_all()

    @contextmanager
    def admit(self, deadline: Optional[Deadline] = None,
              priority: str = "normal"):
        """``with queue.admit(deadline):`` — acquire a slot, always release."""
        self.acquire(deadline, priority=priority)
        try:
            yield
        finally:
            self.release()

    # ------------------------------------------------------------------
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    def waiting(self) -> int:
        with self._cond:
            return len(self._waiters)

    def limit(self) -> int:
        """The effective in-flight limit right now."""
        with self._cond:
            return self._limit_locked()

    def saturated(self) -> bool:
        """Would a ``normal``-priority request arriving right now be shed?"""
        with self._cond:
            return (
                self._inflight >= self._limit_locked()
                and len(self._waiters) >= self.max_queue_depth
            )

    def snapshot(self) -> Dict[str, int]:
        with self._cond:
            data = dict(self._counts)
            data["inflight"] = self._inflight
            data["waiting"] = len(self._waiters)
            data["max_inflight"] = self.max_inflight
            data["max_queue_depth"] = self.max_queue_depth
            data["limit"] = self._limit_locked()
            data["codel_dropping"] = self._dropping
            data["last_sojourn_ms"] = self._last_sojourn * 1000.0
            return data


class RetryPolicy:
    """Exponential backoff with full jitter (AWS-style).

    ``backoff(attempt)`` draws uniformly from
    ``[0, min(cap, base * 2**attempt)]``; a server-supplied
    ``retry_after`` acts as a floor so the client never hammers a
    saturated server earlier than it asked.  Pass a seeded
    ``random.Random`` for deterministic tests.
    """

    def __init__(
        self,
        retries: int = 3,
        base: float = 0.1,
        cap: float = 2.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.retries = retries
        self.base = base
        self.cap = cap
        self._rng = rng or random.Random()
        self._lock = threading.Lock()

    def backoff(self, attempt: int, retry_after: Optional[float] = None) -> float:
        ceiling = min(self.cap, self.base * (2.0 ** max(0, attempt)))
        with self._lock:
            delay = self._rng.uniform(0.0, ceiling)
        if retry_after is not None:
            delay = max(delay, float(retry_after))
        return delay


class CircuitBreaker:
    """Fast-fail after a run of consecutive transport errors.

    Closed (normal) → open after ``failure_threshold`` consecutive
    failures → half-open after ``reset_after`` seconds, admitting a
    single probe; the probe's outcome closes or re-opens the circuit.
    Only *transport* errors (connection refused/reset, timeouts) should
    feed :meth:`record_failure` — a structured HTTP error proves the
    server is alive.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after: float = 10.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return self.CLOSED
            if self._clock() - self._opened_at >= self.reset_after:
                return self.HALF_OPEN
            return self.OPEN

    def allow(self) -> bool:
        """May a call proceed right now?"""
        with self._lock:
            if self._opened_at is None:
                return True
            if self._clock() - self._opened_at < self.reset_after:
                return False
            if self._probing:
                return False  # one probe at a time in half-open
            self._probing = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            self._probing = False
            if self._failures >= self.failure_threshold:
                self._opened_at = self._clock()

    def reset(self) -> None:
        self.record_success()
