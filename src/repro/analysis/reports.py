"""Consolidated analysis reports.

One call gathers everything a designer asks of a Timed Signal Graph —
cycle time, critical cycles, slacks, sensitivities, optional interval
bounds and a timing diagram — and renders it as text or a
JSON-serialisable dict (for CI dashboards and regression tracking).
Used by ``python -m repro report --full``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Dict, List, Optional

from ..core.arithmetic import Number
from ..core.cycle_time import CycleTimeResult
from ..core.events import event_label
from ..core.signal_graph import TimedSignalGraph
from ..core.simulation import TimingSimulation
from .performance import PerformanceReport, analyze
from .sensitivity import delay_sensitivities
from .timing_diagram import render_timing_diagram


def _jsonable(value: Number) -> Any:
    """Numbers as JSON-friendly values, keeping exactness readable."""
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return int(value)
        return {"fraction": [value.numerator, value.denominator]}
    return value


@dataclass
class FullReport:
    """Everything about one graph's steady-state performance."""

    graph: TimedSignalGraph
    performance: PerformanceReport
    sensitivities: list
    diagram: Optional[str]

    @property
    def cycle_time(self) -> Number:
        return self.performance.cycle_time

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable summary (exact numbers preserved)."""
        result = self.performance.result
        return {
            "graph": {
                "name": self.graph.name,
                "events": self.graph.num_events,
                "arcs": self.graph.num_arcs,
                "tokens": self.graph.total_tokens(),
                "border_events": [
                    event_label(e) for e in result.border_events
                ],
            },
            "cycle_time": _jsonable(result.cycle_time),
            "critical_cycles": [
                {
                    "events": [event_label(e) for e in cycle.events],
                    "length": _jsonable(cycle.length),
                    "tokens": cycle.tokens,
                }
                for cycle in self.performance.all_critical_cycles()
            ],
            "border_distances": [
                {
                    "border_event": event_label(record.border_event),
                    "period": record.period,
                    "time": _jsonable(record.time),
                    "distance": _jsonable(record.distance),
                }
                for record in result.distances
            ],
            "slacks": [
                {
                    "source": event_label(source),
                    "target": event_label(target),
                    "slack": _jsonable(slack),
                }
                for (source, target), slack in sorted(
                    self.performance.slacks.items(), key=lambda kv: str(kv[0])
                )
            ],
            "sensitivities": [
                {
                    "source": event_label(row.source),
                    "target": event_label(row.target),
                    "delay": _jsonable(row.delay),
                    "dlambda_ddelta": _jsonable(row.sensitivity),
                }
                for row in self.sensitivities
            ],
        }

    def to_text(self) -> str:
        sections = [self.performance.summary()]
        sections.append("delay sensitivities (dλ/dδ):")
        for row in self.sensitivities:
            sections.append("  " + str(row))
        if self.diagram:
            sections.append("")
            sections.append("timing diagram (2 periods):")
            sections.append(self.diagram)
        return "\n".join(sections)


def full_report(
    graph: TimedSignalGraph,
    include_diagram: bool = True,
    diagram_width: int = 72,
) -> FullReport:
    """Run the complete analysis stack on ``graph``."""
    performance = analyze(graph)
    sensitivities = delay_sensitivities(graph, performance)
    diagram = None
    if include_diagram:
        simulation = TimingSimulation(graph, periods=2)
        diagram = render_timing_diagram(simulation, width=diagram_width)
    return FullReport(
        graph=graph,
        performance=performance,
        sensitivities=sensitivities,
        diagram=diagram,
    )
