.model muller-ring-5
.outputs s4 n3 n0 s0 n4 n1 s1 s2 s3 n2
.graph
s4- n3+ 1
n0- s0- 1
s4- s0- 1
s0- n4+ 1
n1- s1- 1
s0- s1- 1
s1- n0+ 1
s2+ s3+ 1
n3+ s3+ 1
s3+ n2- 1
s1- s2- 1
n2- s2- 1
s2- n1+ 1
n4+ s4+ 1
s3+ s4+ 1
s4+ n3- 1
n0+ s0+ 1
s4+ s0+ 1
s0+ n4- 1
n1+ s1+ 1
s0+ s1+ 1
s1+ n0- 1
s2- s3- 1
n3- s3- 1
s3- n2+ 1
s1+ s2+ 1
n2+ s2+ 1
s2+ n1- 1
n4- s4- 1
s3- s4- 1
.marking { <n0+,s0+> <s4+,s0+> <n1+,s1+> <n2+,s2+> <s3-,s4-> }
.end
