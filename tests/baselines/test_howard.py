"""Unit tests for Howard's policy iteration."""

from fractions import Fraction
import random

import networkx as nx
import pytest

from repro.baselines.howard import max_mean_cycle_howard
from repro.baselines.karp import max_mean_cycle
from repro.core.errors import AcyclicGraphError


def weighted(edges):
    g = nx.DiGraph()
    for u, v, w in edges:
        g.add_edge(u, v, weight=w)
    return g


class TestHoward:
    def test_single_cycle(self):
        g = weighted([("a", "b", 3), ("b", "a", 5)])
        mean, cycle = max_mean_cycle_howard(g)
        assert mean == 4
        assert set(cycle) == {"a", "b"}

    def test_self_loop_beats_cycle(self):
        g = weighted([("a", "a", 9), ("a", "b", 1), ("b", "a", 1)])
        mean, cycle = max_mean_cycle_howard(g)
        assert mean == 9
        assert cycle == ["a"]

    def test_acyclic_raises(self):
        g = weighted([("a", "b", 1), ("b", "c", 2)])
        with pytest.raises(AcyclicGraphError):
            max_mean_cycle_howard(g)

    def test_dangling_nodes_pruned(self):
        g = weighted([("a", "b", 2), ("b", "a", 4), ("b", "sink", 100), ("source", "a", 100)])
        mean, cycle = max_mean_cycle_howard(g)
        assert mean == 3

    def test_negative_weights(self):
        g = weighted([("a", "b", -2), ("b", "a", -4), ("b", "c", -1), ("c", "b", -1)])
        mean, cycle = max_mean_cycle_howard(g)
        assert mean == -1
        assert set(cycle) == {"b", "c"}

    def test_returned_cycle_mean_matches(self):
        g = weighted(
            [("a", "b", 1), ("b", "c", 8), ("c", "a", 3), ("c", "b", 2), ("b", "a", 7)]
        )
        mean, cycle = max_mean_cycle_howard(g)
        total = sum(
            g[cycle[i]][cycle[(i + 1) % len(cycle)]]["weight"]
            for i in range(len(cycle))
        )
        assert Fraction(total, len(cycle)) == mean

    def test_agrees_with_karp_on_random_graphs(self):
        rng = random.Random(42)
        for trial in range(40):
            g = nx.DiGraph()
            n = rng.randint(3, 10)
            for i in range(n):
                g.add_edge(i, (i + 1) % n, weight=rng.randint(-10, 10))
            for _ in range(2 * n):
                u, v = rng.sample(range(n), 2)
                g.add_edge(u, v, weight=rng.randint(-10, 10))
            karp_mean, _ = max_mean_cycle(g)
            howard_mean, _ = max_mean_cycle_howard(g)
            assert karp_mean == howard_mean, trial

    def test_multiple_sccs(self):
        g = weighted(
            [("a", "b", 2), ("b", "a", 2), ("c", "d", 12), ("d", "c", 2), ("b", "c", 5)]
        )
        mean, cycle = max_mean_cycle_howard(g)
        assert mean == 7
        assert set(cycle) == {"c", "d"}
