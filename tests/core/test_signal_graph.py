"""Unit tests for the Timed Signal Graph model."""

from fractions import Fraction

import pytest

from repro.core import TimedSignalGraph, Transition, from_arcs
from repro.core.errors import (
    GraphConstructionError,
    NotInitiallySafeError,
)


def ring(delays=(1, 1, 1)):
    g = TimedSignalGraph()
    g.add_arc("x+", "y+", delays[0])
    g.add_arc("y+", "z+", delays[1])
    g.add_arc("z+", "x+", delays[2], marked=True)
    return g


class TestConstruction:
    def test_events_created_implicitly(self):
        g = ring()
        assert g.num_events == 3
        assert g.has_event("x+")
        assert Transition.parse("x+") in g

    def test_add_event_idempotent(self):
        g = TimedSignalGraph()
        g.add_event("a+")
        g.add_event("a+")
        assert g.num_events == 1

    def test_arc_attributes(self):
        g = ring((2, 3, 4))
        arc = g.arc("z+", "x+")
        assert arc.delay == 4
        assert arc.marked
        assert arc.tokens == 1
        assert not g.arc("x+", "y+").marked

    def test_negative_delay_rejected(self):
        g = TimedSignalGraph()
        with pytest.raises(GraphConstructionError):
            g.add_arc("a+", "b+", -1)

    def test_non_numeric_delay_rejected(self):
        g = TimedSignalGraph()
        with pytest.raises(GraphConstructionError):
            g.add_arc("a+", "b+", "fast")
        with pytest.raises(GraphConstructionError):
            g.add_arc("a+", "b+", True)

    def test_duplicate_arc_merges_by_max_delay(self):
        g = TimedSignalGraph()
        g.add_arc("a+", "b+", 2)
        g.add_arc("a+", "b+", 5)
        assert g.arc("a+", "b+").delay == 5
        g.add_arc("a+", "b+", 1)
        assert g.arc("a+", "b+").delay == 5
        assert g.num_arcs == 1

    def test_duplicate_arc_conflicting_marking_rejected(self):
        g = TimedSignalGraph()
        g.add_arc("a+", "b+", 2)
        with pytest.raises(GraphConstructionError):
            g.add_arc("a+", "b+", 2, marked=True)

    def test_multitoken_marking_rejected(self):
        g = TimedSignalGraph()
        with pytest.raises(NotInitiallySafeError):
            g.add_arc("a+", "b+", 1, marked=2)

    def test_integer_marking_accepted(self):
        g = TimedSignalGraph()
        g.add_arc("a+", "b+", 1, marked=1)
        assert g.arc("a+", "b+").marked

    def test_multimarked_arc_expansion(self):
        g = TimedSignalGraph()
        g.add_multimarked_arc("a+", "b+", delay=5, tokens=3)
        g.add_arc("b+", "a+", 1)
        # chain introduces 2 hidden events and 3 marked arcs
        assert g.num_events == 4
        assert g.total_tokens() == 3
        from repro.core import compute_cycle_time

        assert compute_cycle_time(g).cycle_time == Fraction(6, 3)

    def test_multimarked_zero_and_one(self):
        g = TimedSignalGraph()
        g.add_multimarked_arc("a+", "b+", delay=5, tokens=0)
        assert not g.arc("a+", "b+").marked
        g.add_multimarked_arc("b+", "a+", delay=5, tokens=1)
        assert g.arc("b+", "a+").marked

    def test_remove_arc(self):
        g = ring()
        g.remove_arc("x+", "y+")
        assert not g.has_arc("x+", "y+")
        assert g.num_arcs == 2
        with pytest.raises(KeyError):
            g.arc("x+", "y+")

    def test_set_delay(self):
        g = ring()
        g.set_delay("x+", "y+", 9)
        assert g.delay("x+", "y+") == 9


class TestQueries:
    def test_in_out_arcs(self):
        g = ring()
        assert [str(a.source) for a in g.in_arcs("y+")] == ["x+"]
        assert [str(a.target) for a in g.out_arcs("y+")] == ["z+"]
        assert g.predecessors("x+") == [Transition.parse("z+")]
        assert g.successors("x+") == [Transition.parse("y+")]

    def test_marking_and_tokens(self):
        g = ring()
        assert g.marking("z+", "x+") == 1
        assert g.marking("x+", "y+") == 0
        assert g.total_tokens() == 1

    def test_repetitive_detection(self, oscillator):
        labels = {str(e) for e in oscillator.repetitive_events}
        assert labels == {"a+", "a-", "b+", "b-", "c+", "c-"}
        non = {str(e) for e in oscillator.nonrepetitive_events}
        assert non == {"e-", "f-"}

    def test_initial_events(self, oscillator):
        assert {str(e) for e in oscillator.initial_events} == {"e-"}

    def test_declared_initial_event(self):
        g = ring()
        g.add_event("start", initial=True)
        g.add_arc("start", "x+", 1)
        assert "start" in {str(e) for e in g.initial_events}

    def test_border_events(self, oscillator):
        assert [str(e) for e in oscillator.border_events] == ["a+", "b+"]

    def test_self_loop_is_repetitive(self):
        g = TimedSignalGraph()
        g.add_arc("a+", "a+", 3, marked=True)
        assert Transition.parse("a+") in g.repetitive_events

    def test_is_exact(self):
        assert ring().is_exact
        assert ring((1, Fraction(1, 3), 2)).is_exact
        assert not ring((1.5, 1, 1)).is_exact

    def test_len_iter_contains(self):
        g = ring()
        assert len(g) == 3
        assert set(map(str, g)) == {"x+", "y+", "z+"}

    def test_repr_and_describe(self):
        g = ring()
        assert "events=3" in repr(g)
        text = g.describe()
        assert "z+ -1-> x+ *" in text


class TestTransforms:
    def test_copy_is_deep_for_structure(self):
        g = ring()
        clone = g.copy()
        clone.set_delay("x+", "y+", 99)
        assert g.delay("x+", "y+") == 1
        assert clone.structurally_equal(clone.copy())

    def test_scale_delays(self):
        g = ring((1, 2, 3))
        doubled = g.scale_delays(2)
        assert doubled.delay("z+", "x+") == 6
        assert g.delay("z+", "x+") == 3

    def test_map_delays(self):
        g = ring((1, 2, 3))
        bumped = g.map_delays(lambda arc: arc.delay + 10)
        assert bumped.delay("x+", "y+") == 11

    def test_structurally_equal(self):
        assert ring().structurally_equal(ring())
        assert not ring().structurally_equal(ring((2, 1, 1)))
        other = ring()
        other.add_arc("x+", "z+", 1)
        assert not ring().structurally_equal(other)
        assert not other.structurally_equal(ring())

    def test_to_networkx(self):
        g = ring((1, 2, 3))
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 3
        edge = nxg[Transition.parse("z+")][Transition.parse("x+")]
        assert edge["delay"] == 3
        assert edge["marked"] is True

    def test_repetitive_core(self, oscillator):
        core = oscillator.repetitive_core()
        assert core.number_of_nodes() == 6

    def test_from_arcs_helper(self):
        g = from_arcs([("a+", "b+", 1), ("b+", "a+", 2, True)])
        assert g.num_arcs == 2
        assert g.arc("b+", "a+").marked

    def test_from_arcs_rejects_bad_tuple(self):
        with pytest.raises(GraphConstructionError):
            from_arcs([("a+", "b+")])

    def test_cache_invalidation_on_mutation(self):
        g = ring()
        assert len(g.border_events) == 1
        g.add_arc("z+", "y+", 1, marked=True)
        assert {str(e) for e in g.border_events} == {"x+", "y+"}
