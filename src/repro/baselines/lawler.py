"""Lawler-style binary search for the maximum cycle ratio.

Works directly on the Signal Graph (no token reduction): for a
candidate ratio ``lambda`` assign every arc the weight ``delay -
lambda * tokens``; then ``lambda < lambda*`` iff the repetitive core
contains a **positive** cycle under those weights.  Binary search over
``lambda`` with Bellman-Ford-style positive-cycle detection narrows
the ratio to any tolerance [11].

With exact (int/Fraction) delays the search terminates *exactly*: the
answer is a fraction whose denominator is at most ``n`` (a simple
cycle carries at most ``n`` tokens), so once the interval is narrower
than ``1/(2 n^2)`` it contains exactly one such fraction — recovered
with :meth:`fractions.Fraction.limit_denominator` and returned.
Float-delay graphs return a float within ``tolerance``.
"""

from __future__ import annotations

from fractions import Fraction
from math import lcm
from typing import Dict, List, Tuple

from ..core.arithmetic import Number
from ..core.errors import AcyclicGraphError
from ..core.signal_graph import TimedSignalGraph

_CoreArc = Tuple[object, object, Number, int]


def _positive_cycle_exists(
    arcs: List[_CoreArc], nodes: List[object], ratio: Number
) -> bool:
    """Bellman-Ford longest-path: does any cycle have positive weight
    under ``weight = delay - ratio * tokens``?"""
    distance: Dict[object, Number] = {node: 0 for node in nodes}
    for _ in range(len(nodes)):
        changed = False
        for source, target, delay, tokens in arcs:
            candidate = distance[source] + delay - ratio * tokens
            if candidate > distance[target]:
                distance[target] = candidate
                changed = True
        if not changed:
            return False  # converged: no positive cycle
    return True


def _core(graph: TimedSignalGraph) -> Tuple[List[object], List[_CoreArc]]:
    repetitive = graph.repetitive_events
    if not repetitive:
        raise AcyclicGraphError("graph %r has no cycles" % graph.name)
    nodes = [event for event in graph.events if event in repetitive]
    arcs = [
        (arc.source, arc.target, arc.delay, arc.tokens)
        for arc in graph.arcs
        if arc.source in repetitive and arc.target in repetitive
    ]
    return nodes, arcs


def max_cycle_ratio_lawler(
    graph: TimedSignalGraph,
    tolerance: float = 1e-9,
    max_steps: int = 2_000,
) -> Number:
    """Maximum cycle ratio (= cycle time) by binary search.

    Returns an exact :class:`fractions.Fraction` for int/Fraction
    delays, a float otherwise.
    """
    nodes, arcs = _core(graph)
    if graph.is_exact:
        return _search_exact(nodes, arcs, max_steps)
    return _search_float(nodes, arcs, tolerance, max_steps)


def _search_exact(nodes, arcs, max_steps: int) -> Fraction:
    # Scale Fraction delays to integers so the denominator bound holds
    # and so every exact feasibility check runs in pure int arithmetic.
    scale = lcm(*(Fraction(delay).denominator for _, _, delay, _ in arcs), 1)
    int_arcs = [
        (source, target, int(Fraction(delay) * scale), tokens)
        for source, target, delay, tokens in arcs
    ]

    def exact_check(ratio: Fraction) -> bool:
        """Positive cycle at ``ratio``?  Integer weights q*d - p*m."""
        p, q = ratio.numerator, ratio.denominator
        weighted = [
            (source, target, q * delay - p * tokens)
            for source, target, delay, tokens in int_arcs
        ]
        distance = {node: 0 for node in nodes}
        for _ in range(len(nodes)):
            changed = False
            for source, target, weight in weighted:
                candidate = distance[source] + weight
                if candidate > distance[target]:
                    distance[target] = candidate
                    changed = True
            if not changed:
                return False
        return True

    count = len(nodes)
    low = Fraction(0)
    high = Fraction(sum(delay for _, _, delay, _ in int_arcs))
    if not exact_check(low):
        return Fraction(0)  # every cycle has zero length
    if exact_check(high):
        raise AcyclicGraphError("unbounded cycle ratio: token-free cycle present")

    # Narrow the interval with a fast float search first; float
    # misclassification near the optimum is repaired by exact checks.
    float_arcs = [
        (source, target, float(delay), tokens)
        for source, target, delay, tokens in int_arcs
    ]
    flo, fhi = float(low), float(high)
    for _ in range(80):
        if fhi - flo <= max(1e-9, 1e-12 * fhi):
            break
        mid = (flo + fhi) / 2
        if _positive_cycle_exists(float_arcs, nodes, mid):
            flo = mid
        else:
            fhi = mid
    margin = Fraction(max(fhi - flo, 1e-9) * 4).limit_denominator(10**12)
    candidate_low = max(low, Fraction(flo).limit_denominator(10**12) - margin)
    candidate_high = min(high, Fraction(fhi).limit_denominator(10**12) + margin)
    if candidate_low < candidate_high:
        if exact_check(candidate_low):
            low = candidate_low
        if not exact_check(candidate_high):
            high = candidate_high

    resolution = Fraction(1, 2 * count * count)
    for _ in range(max_steps):
        if high - low < resolution:
            candidate = ((low + high) / 2).limit_denominator(count)
            # The true ratio is the unique fraction with denominator
            # <= count inside (low, high]; verify defensively.
            if low < candidate <= high and not exact_check(candidate):
                return candidate / scale
        middle = (low + high) / 2
        if exact_check(middle):
            low = middle
        else:
            high = middle
    raise RuntimeError("exact ratio search failed to converge")


def _search_float(nodes, arcs, tolerance: float, max_steps: int) -> float:
    low = 0.0
    high = float(sum(delay for _, _, delay, _ in arcs)) or 1.0
    if not _positive_cycle_exists(arcs, nodes, 0.0):
        return 0.0
    if _positive_cycle_exists(arcs, nodes, high):
        raise AcyclicGraphError("unbounded cycle ratio: token-free cycle present")
    for _ in range(max_steps):
        middle = (low + high) / 2
        if _positive_cycle_exists(arcs, nodes, middle):
            low = middle
        else:
            high = middle
        if high - low <= tolerance * max(1.0, high):
            return high
    return high
