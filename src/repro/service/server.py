"""The analysis daemon: JSON over HTTP, stdlib only.

``repro serve`` (or :func:`serve` programmatically) runs a
:class:`http.server.ThreadingHTTPServer` exposing

* ``POST /analyze`` — cycle time / critical cycles of a posted graph;
* ``POST /montecarlo`` — λ distribution under random delay variation;
* ``GET /stats`` — request counters, cache hit/miss/eviction counters
  and coalescer statistics;
* ``GET /healthz`` — liveness probe.

Request graphs use the standard JSON document format of
:mod:`repro.io.json_io` under a ``"graph"`` key.  Every response is
JSON; errors are *structured* —
``{"error": {"type": ..., "message": ...}}`` with a meaningful HTTP
status — and a traceback is never written to the wire.  Exact cycle
times travel as tagged numbers (``{"fraction": [n, d]}``) so the
typed client round-trips them losslessly.

Work sharing: ``/analyze`` and ``/montecarlo`` responses are memoised
in the process-wide result cache keyed by content hash + parameters;
compiled topologies are shared through
:func:`~repro.service.cache.shared_compiled_graph`; and concurrent
λ-only Monte-Carlo requests over one topology are merged into single
batched kernel calls by the :class:`~repro.service.queue.RequestCoalescer`.

The daemon shuts down cleanly on SIGINT/SIGTERM: the listener closes,
the coalescer drains its queue, and ``serve`` returns 0.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..analysis.montecarlo import (
    monte_carlo_cycle_time,
    normal_spread,
    sample_delay_matrix,
    uniform_spread,
)
from ..core.cycle_time import compute_cycle_time
from ..core.errors import SignalGraphError
from ..core.events import event_label
from ..core.kernel import KERNELS
from ..core.signal_graph import TimedSignalGraph
from ..io.json_io import encode_number, graph_from_dict
from .cache import CacheStats, result_cache, service_cache_stats
from .hashing import analysis_key
from .queue import RequestCoalescer

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8177


class RequestError(Exception):
    """A client-side error with an HTTP status and a stable type name."""

    def __init__(self, message: str, status: int = 400, kind: str = "BadRequest"):
        super().__init__(message)
        self.status = status
        self.kind = kind


@dataclass
class ServiceConfig:
    """Daemon knobs (all reachable from ``repro serve`` flags)."""

    host: str = DEFAULT_HOST
    port: int = DEFAULT_PORT
    request_timeout: float = 30.0    # per-connection socket timeout
    max_body_bytes: int = 16 * 1024 * 1024
    max_samples: int = 100_000       # per Monte-Carlo request
    max_periods: int = 10_000
    linger_ms: float = 2.0           # coalescer window
    max_batch_samples: int = 65536
    quiet: bool = False


class AnalysisService:
    """Protocol-independent request handlers backing the HTTP layer."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.results = result_cache()
        self.coalescer = RequestCoalescer(
            linger_s=self.config.linger_ms / 1000.0,
            max_batch_samples=self.config.max_batch_samples,
        )
        self.counters = CacheStats()
        self.started = time.time()

    def close(self) -> None:
        self.coalescer.close()

    # ------------------------------------------------------------------
    # decoding helpers
    # ------------------------------------------------------------------
    def _decode_graph(self, payload: Dict[str, Any]) -> TimedSignalGraph:
        document = payload.get("graph")
        if not isinstance(document, dict):
            raise RequestError("request must carry a 'graph' document")
        try:
            return graph_from_dict(document)
        except SignalGraphError as error:
            raise RequestError(str(error), kind=type(error).__name__)

    @staticmethod
    def _int_field(payload, name, default, low, high) -> int:
        value = payload.get(name, default)
        if value is None:
            return default
        if not isinstance(value, int) or isinstance(value, bool):
            raise RequestError("'%s' must be an integer" % name)
        if not low <= value <= high:
            raise RequestError(
                "'%s' must be in [%d, %d], got %d" % (name, low, high, value)
            )
        return value

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def handle_analyze(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        graph = self._decode_graph(payload)
        periods = payload.get("periods")
        if periods is not None:
            periods = self._int_field(
                payload, "periods", None, 1, self.config.max_periods
            )
        kernel = payload.get("kernel", "auto")
        if kernel not in KERNELS:
            raise RequestError(
                "unknown kernel %r (choose from %s)" % (kernel, ", ".join(KERNELS))
            )
        backtrack = bool(payload.get("backtrack", True))
        key = analysis_key(
            graph, "analyze", periods=periods, kernel=kernel, backtrack=backtrack
        )
        cached = self.results.get(key)
        if cached is not None:
            return dict(cached, cached=True)
        result = compute_cycle_time(
            graph,
            periods=periods,
            kernel=kernel,
            backtrack=backtrack,
            keep_simulations=False,
        )
        response = {
            "graph": graph.name,
            "events": graph.num_events,
            "arcs": graph.num_arcs,
            "cycle_time": encode_number(result.cycle_time),
            "cycle_time_float": float(result.cycle_time),
            "critical_cycles": [
                {
                    "events": [event_label(e) for e in cycle.events],
                    "length": encode_number(cycle.length),
                    "tokens": cycle.tokens,
                }
                for cycle in result.critical_cycles
            ],
            "border_events": [event_label(e) for e in result.border_events],
            "periods": result.periods,
            "distances": len(result.distances),
        }
        self.results.put(key, response)
        return dict(response, cached=False)

    def handle_montecarlo(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        graph = self._decode_graph(payload)
        samples = self._int_field(
            payload, "samples", 1000, 1, self.config.max_samples
        )
        seed = self._int_field(payload, "seed", 0, -(2 ** 62), 2 ** 62)
        bins = self._int_field(payload, "bins", 0, 0, 1000)
        track = bool(payload.get("track_criticality", False))
        distribution = payload.get("distribution", "uniform")
        if distribution not in ("uniform", "normal"):
            raise RequestError(
                "unknown distribution %r (uniform or normal)" % (distribution,)
            )
        spread = payload.get("spread", 0.1)
        if isinstance(spread, bool) or not isinstance(spread, (int, float)):
            raise RequestError("'spread' must be a number")
        spread = float(spread)
        if not 0.0 <= spread < 1.0:
            raise RequestError("'spread' must be in [0, 1), got %r" % spread)
        key = analysis_key(
            graph,
            "montecarlo",
            samples=samples,
            seed=seed,
            spread=spread,
            distribution=distribution,
            track_criticality=track,
            bins=bins,
        )
        cached = self.results.get(key)
        if cached is not None:
            return dict(cached, cached=True)
        sampler = (
            uniform_spread(spread) if distribution == "uniform"
            else normal_spread(spread)
        )
        if track:
            # Criticality attribution backtracks per sample; no
            # cross-request batching to exploit.
            outcome = monte_carlo_cycle_time(
                graph, sampler, samples=samples, seed=seed,
                track_criticality=True,
            )
            values = outcome.samples
            criticality = [
                {
                    "source": event_label(pair[0]),
                    "target": event_label(pair[1]),
                    "probability": probability,
                }
                for pair, probability in outcome.top_critical_arcs(10)
            ]
        else:
            # λ-only distribution: sample here, let the coalescer merge
            # this sweep with concurrent same-topology requests.
            rng = np.random.default_rng(seed)
            matrix = sample_delay_matrix(graph, sampler, samples, rng)
            values = self.coalescer.run(
                graph, matrix, timeout=self.config.request_timeout
            )
            criticality = None
        response = {
            "graph": graph.name,
            "count": int(len(values)),
            "seed": seed,
            "spread": spread,
            "distribution": distribution,
            "mean": float(np.mean(values)),
            "std": float(np.std(values)),
            "min": float(np.min(values)),
            "max": float(np.max(values)),
            "quantiles": {
                "p05": float(np.quantile(values, 0.05)),
                "p50": float(np.quantile(values, 0.50)),
                "p95": float(np.quantile(values, 0.95)),
            },
        }
        if criticality is not None:
            response["criticality"] = criticality
        if bins:
            counts, edges = np.histogram(values, bins=bins)
            response["histogram"] = [
                [float(edges[i]), float(edges[i + 1]), int(counts[i])]
                for i in range(len(counts))
            ]
        self.results.put(key, response)
        return dict(response, cached=False)

    def handle_stats(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "uptime_s": time.time() - self.started,
            "requests": self.counters.snapshot(),
            "cache": service_cache_stats(),
            "coalescer": self.coalescer.stats.snapshot(),
            "config": {
                "request_timeout": self.config.request_timeout,
                "max_samples": self.config.max_samples,
                "linger_ms": self.config.linger_ms,
                "max_batch_samples": self.config.max_batch_samples,
            },
        }


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> AnalysisService:
        return self.server.service  # type: ignore[attr-defined]

    def setup(self) -> None:
        self.timeout = self.service.config.request_timeout
        super().setup()

    # -- plumbing ------------------------------------------------------
    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, kind: str, message: str) -> None:
        self.service.counters.increment("errors")
        self._send_json(status, {"error": {"type": kind, "message": message}})

    def _read_body(self) -> Dict[str, Any]:
        length = self.headers.get("Content-Length")
        try:
            length = int(length)
        except (TypeError, ValueError):
            raise RequestError("Content-Length required", status=411,
                               kind="LengthRequired")
        if length > self.service.config.max_body_bytes:
            raise RequestError(
                "request body exceeds %d bytes"
                % self.service.config.max_body_bytes,
                status=413, kind="PayloadTooLarge",
            )
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except (ValueError, UnicodeDecodeError):
            raise RequestError("request body is not valid JSON")
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        return payload

    def _dispatch(self, handler) -> None:
        try:
            response = handler()
        except RequestError as error:
            self._send_error_json(error.status, error.kind, str(error))
        except SignalGraphError as error:
            # Domain errors (non-live graph, no border events, ...) are
            # the client's problem: structured 422, never a traceback.
            self._send_error_json(422, type(error).__name__, str(error))
        except Exception as error:  # noqa: BLE001 — last-resort guard
            self._send_error_json(
                500, "InternalError", "%s: %s" % (type(error).__name__, error)
            )
        else:
            self._send_json(200, response)

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            self.service.counters.increment("healthz")
            self._dispatch(lambda: {"status": "ok"})
        elif path == "/stats":
            self.service.counters.increment("stats")
            self._dispatch(self.service.handle_stats)
        else:
            self._send_error_json(404, "NotFound", "no such endpoint: %s" % path)

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        path = self.path.split("?", 1)[0]
        if path == "/analyze":
            self.service.counters.increment("analyze")
            self._dispatch(lambda: self.service.handle_analyze(self._read_body()))
        elif path == "/montecarlo":
            self.service.counters.increment("montecarlo")
            self._dispatch(
                lambda: self.service.handle_montecarlo(self._read_body())
            )
        else:
            self._send_error_json(404, "NotFound", "no such endpoint: %s" % path)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.service.config.quiet:
            sys.stderr.write(
                "[repro.service] %s - %s\n" % (self.address_string(),
                                               format % args)
            )


class ServiceServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the :class:`AnalysisService`."""

    daemon_threads = True

    def __init__(self, config: ServiceConfig):
        self.service = AnalysisService(config)
        super().__init__((config.host, config.port), _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return "http://%s:%d" % (host, port)

    def close(self) -> None:
        self.server_close()
        self.service.close()


def make_server(
    host: str = DEFAULT_HOST, port: int = 0, **overrides
) -> ServiceServer:
    """Build a service server (``port=0`` picks an ephemeral port)."""
    return ServiceServer(ServiceConfig(host=host, port=port, **overrides))


def serve(config: Optional[ServiceConfig] = None) -> int:
    """Run the daemon until SIGINT/SIGTERM; returns 0 on clean exit."""
    server = ServiceServer(config or ServiceConfig())

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _terminate)
    print("repro service listening on %s" % server.url, flush=True)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.close()
    print("repro service: shut down cleanly", flush=True)
    return 0
