#!/usr/bin/env python3
"""Worst/best-case cycle time under delay uncertainty.

The paper analyses fixed delays; datasheets give ranges.  Because the
cycle time of a Timed Signal Graph is monotone in every delay, corner
analysis is exact: evaluating the all-minimum and all-maximum corners
bounds every behaviour in between.

This example takes the Figure 1 oscillator, applies a +/-20% process
spread to every gate delay, reports the λ interval, then narrows in on
the one pin whose variability matters most (the robust bottleneck).

Run:  python examples/interval_analysis.py
"""

from fractions import Fraction

from repro import oscillator_tsg
from repro.analysis import (
    interval_cycle_time,
    uniform_interval_cycle_time,
)


def main() -> None:
    graph = oscillator_tsg()
    spread = Fraction(1, 5)  # +/-20%

    result = uniform_interval_cycle_time(graph, spread)
    print("uniform +/-20%% spread on all delays: %s" % result)
    print(
        "robust critical events (critical in both corners): %s"
        % ", ".join(sorted(str(e) for e in result.robust_critical_events()))
    )
    print()

    print("per-arc what-if: which single pin's spread hurts most?")
    rows = []
    for arc in graph.arcs:
        low = arc.delay - arc.delay * spread
        high = arc.delay + arc.delay * spread
        single = interval_cycle_time(graph, {arc.pair: (low, high)})
        rows.append((single.spread, arc))
    rows.sort(key=lambda row: (-row[0], str(row[1].source)))
    for spread_value, arc in rows:
        marker = "  <-- tighten this pin first" if spread_value == rows[0][0] and spread_value > 0 else ""
        print(
            "  %-4s -> %-4s delay %s : lambda spread %s%s"
            % (arc.source, arc.target, arc.delay, spread_value, marker)
        )


if __name__ == "__main__":
    main()
