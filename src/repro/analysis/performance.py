"""Steady-state performance reports built on the cycle-time analysis.

Beyond the cycle time itself, designers need to know *where* the time
goes.  Given λ, assign every repetitive event a potential ``p(e)`` —
its offset inside the steady-state period, so event ``e`` fires at
``p(e) + λ·k`` — by longest-path propagation under the reduced arc
weights ``w = delay - λ·tokens`` (no cycle is positive at λ; critical
cycles are exactly the zero-weight ones).  Then every arc has a
non-negative *slack*::

    slack(e -> f) = p(f) - p(e) - delay + λ·tokens

Zero-slack arcs form the **critical subgraph**: every critical cycle
lives inside it (the converse does not hold — a zero-slack arc off
every critical cycle is merely locally tight; only delay increases on
critical *cycles* raise λ, which is what the sensitivity module
reports).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..core.arithmetic import Number, numbers_close
from ..core.cycle_time import CycleTimeResult, compute_cycle_time
from ..core.cycles import Cycle, make_cycle
from ..core.errors import SignalGraphError
from ..core.events import event_label
from ..core.signal_graph import Arc, Event, TimedSignalGraph


@dataclass
class PerformanceReport:
    """Cycle time, schedule potentials, slacks and the critical core."""

    graph: TimedSignalGraph
    result: CycleTimeResult
    potentials: Dict[Event, Number]
    slacks: Dict[Tuple[Event, Event], Number]

    @property
    def cycle_time(self) -> Number:
        return self.result.cycle_time

    @property
    def critical_arcs(self) -> List[Arc]:
        """Arcs with zero slack (the critical subgraph)."""
        return [
            self.graph.arc(source, target)
            for (source, target), slack in self.slacks.items()
            if numbers_close(slack, 0)
        ]

    def critical_subgraph(self) -> "nx.DiGraph":
        digraph = nx.DiGraph()
        for arc in self.critical_arcs:
            digraph.add_edge(arc.source, arc.target)
        return digraph

    def all_critical_cycles(self) -> List[Cycle]:
        """Every critical cycle (cycles of the critical subgraph).

        Exhaustive over the (typically tiny) critical subgraph, unlike
        ``result.critical_cycles`` which holds only backtracked
        witnesses.
        """
        cycles = []
        for events in nx.simple_cycles(self.critical_subgraph()):
            cycle = make_cycle(self.graph, events)
            if numbers_close(cycle.effective_length, self.cycle_time):
                cycles.append(cycle)
        return cycles

    def slack_of(self, source, target) -> Number:
        arc = self.graph.arc(source, target)
        return self.slacks[arc.pair]

    def schedule(self, periods: int = 1) -> List[Tuple[Number, str]]:
        """Steady-state firing times ``(time, event)`` over ``periods``."""
        rows = []
        for event, potential in self.potentials.items():
            for k in range(periods):
                rows.append(
                    (potential + self.cycle_time * k, event_label(event))
                )
        rows.sort(key=lambda row: (float(row[0]), row[1]))
        return rows

    def summary(self) -> str:
        lines = [
            "Performance report for %r" % self.graph.name,
            "  cycle time: %s" % self.cycle_time,
            "  border events: %s"
            % ", ".join(event_label(e) for e in self.result.border_events),
        ]
        for cycle in self.result.critical_cycles:
            lines.append("  critical: %s" % cycle)
        lines.append("  arc slacks:")
        for (source, target), slack in sorted(
            self.slacks.items(), key=lambda item: (float(item[1]), str(item[0]))
        ):
            marker = "  <- critical" if numbers_close(slack, 0) else ""
            lines.append(
                "    %s -> %s : %s%s"
                % (event_label(source), event_label(target), slack, marker)
            )
        return "\n".join(lines)


def steady_state_potentials(
    graph: TimedSignalGraph, cycle_time: Number
) -> Dict[Event, Number]:
    """Longest-path potentials under ``w = delay - λ·tokens``.

    Propagated over the repetitive core from an arbitrary root by
    Bellman-Ford (at most ``n`` rounds; no positive cycles exist at the
    true cycle time).
    """
    repetitive = graph.repetitive_events
    nodes = [event for event in graph.events if event in repetitive]
    if not nodes:
        raise SignalGraphError("graph has no repetitive core")
    arcs = [
        arc
        for arc in graph.arcs
        if arc.source in repetitive and arc.target in repetitive
    ]
    root = nodes[0]
    potentials: Dict[Event, Number] = {root: 0}
    for round_index in range(len(nodes) + 1):
        changed = False
        for arc in arcs:
            if arc.source not in potentials:
                continue
            candidate = (
                potentials[arc.source] + arc.delay - cycle_time * arc.tokens
            )
            if (
                arc.target not in potentials
                or candidate > potentials[arc.target]
            ):
                potentials[arc.target] = candidate
                changed = True
        if not changed:
            break
    else:
        raise SignalGraphError(
            "positive cycle at the supplied cycle time %s (is it too small?)"
            % cycle_time
        )
    return potentials


def analyze(
    graph: TimedSignalGraph,
    result: Optional[CycleTimeResult] = None,
) -> PerformanceReport:
    """Full performance analysis: cycle time + schedule + slacks."""
    if result is None:
        result = compute_cycle_time(graph)
    potentials = steady_state_potentials(graph, result.cycle_time)
    repetitive = graph.repetitive_events
    slacks: Dict[Tuple[Event, Event], Number] = {}
    for arc in graph.arcs:
        if arc.source in repetitive and arc.target in repetitive:
            slacks[arc.pair] = (
                potentials[arc.target]
                - potentials[arc.source]
                - arc.delay
                + result.cycle_time * arc.tokens
            )
    return PerformanceReport(graph, result, potentials, slacks)
