"""Higher-level analyses: performance reports, sensitivity, diagrams,
interval bounds and event separations."""

from .asymptotics import AsymptoticSeries, delta_series, render_series
from .comparison import ArcChange, DesignComparison, compare_designs
from .intervals import (
    IntervalResult,
    interval_cycle_time,
    uniform_interval_cycle_time,
)
from .performance import (
    PerformanceReport,
    analyze,
    steady_state_potentials,
)
from .reports import FullReport, full_report
from .sensitivity import (
    ArcSensitivity,
    OptimizationStep,
    delay_sensitivities,
    empirical_sensitivities,
    optimize_bottlenecks,
    what_if_delays,
)
from .latency import (
    SettlingReport,
    first_occurrence_latencies,
    latency_to,
    settling_period,
)
from .jitter import JitterResult, jitter_penalty, stochastic_cycle_time
from .montecarlo import (
    DelaySampler,
    MonteCarloResult,
    draw_delays,
    monte_carlo_cycle_time,
    normal_spread,
    sample_delay_matrix,
    uniform_spread,
)
from .separation import (
    SeparationReport,
    separation_report,
    steady_separation,
    transient_separations,
)
from .timing_diagram import render_timing_diagram

__all__ = [
    "ArcChange",
    "DesignComparison",
    "compare_designs",
    "SettlingReport",
    "first_occurrence_latencies",
    "latency_to",
    "settling_period",
    "JitterResult",
    "jitter_penalty",
    "stochastic_cycle_time",
    "FullReport",
    "full_report",
    "DelaySampler",
    "MonteCarloResult",
    "draw_delays",
    "monte_carlo_cycle_time",
    "normal_spread",
    "sample_delay_matrix",
    "uniform_spread",
    "ArcSensitivity",
    "AsymptoticSeries",
    "IntervalResult",
    "OptimizationStep",
    "PerformanceReport",
    "SeparationReport",
    "analyze",
    "delay_sensitivities",
    "delta_series",
    "empirical_sensitivities",
    "interval_cycle_time",
    "optimize_bottlenecks",
    "what_if_delays",
    "render_series",
    "render_timing_diagram",
    "separation_report",
    "steady_separation",
    "steady_state_potentials",
    "transient_separations",
    "uniform_interval_cycle_time",
]
