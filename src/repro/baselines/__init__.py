"""Baseline cycle-time algorithms for cross-validation and comparison."""

from .burns_lp import LPSolution, cycle_time_lp
from .exhaustive import max_cycle_ratio_exhaustive
from .howard import max_mean_cycle_howard
from .karp import max_mean_cycle
from .lawler import max_cycle_ratio_lawler
from .reduction import ReducedGraph, reduce_to_token_graph
from .registry import (
    EXACT_METHODS,
    METHODS,
    MethodResult,
    compare_methods,
    compute_cycle_time,
)

__all__ = [
    "EXACT_METHODS",
    "LPSolution",
    "METHODS",
    "MethodResult",
    "ReducedGraph",
    "compare_methods",
    "compute_cycle_time",
    "cycle_time_lp",
    "max_cycle_ratio_exhaustive",
    "max_cycle_ratio_lawler",
    "max_mean_cycle",
    "max_mean_cycle_howard",
    "reduce_to_token_graph",
]
