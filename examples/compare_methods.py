#!/usr/bin/env python3
"""Compare six cycle-time algorithms on the same graphs.

Runs the paper's timing-simulation algorithm next to its published
alternatives — exhaustive cycle enumeration (Section II's strawman),
Karp's and Howard's maximum-mean-cycle algorithms on the token-graph
reduction [1, 11], a Lawler-style ratio search [11] and Burns' linear
program [2] — and reports values and wall-clock times.

Run:  python examples/compare_methods.py
"""

import time

from repro.baselines import METHODS, compute_cycle_time
from repro.circuits.library import async_stack_tsg, oscillator_tsg
from repro.generators import ring_with_chords


def race(name, graph, methods):
    print("workload: %s (%d events, %d arcs, %d border events)"
          % (name, graph.num_events, graph.num_arcs, len(graph.border_events)))
    for method in methods:
        start = time.perf_counter()
        result = compute_cycle_time(graph, method)
        elapsed = (time.perf_counter() - start) * 1000
        print("  %-11s lambda = %-12s %8.2f ms" % (method, result.cycle_time, elapsed))
    print()


def main() -> None:
    race("Figure 1 oscillator", oscillator_tsg(), sorted(METHODS))
    race("66-event asynchronous stack", async_stack_tsg(), sorted(METHODS))
    # exhaustive enumeration is dropped on the big ring: the cycle
    # count explodes (the very reason the paper's algorithm exists)
    race(
        "400-stage ring, b=8",
        ring_with_chords(stages=400, tokens=8, chords=100, seed=1),
        ["timing", "karp", "howard", "lawler", "lp"],
    )


if __name__ == "__main__":
    main()
