#!/usr/bin/env python3
"""Full circuit-analysis flow: gate-level netlist to performance report.

Reproduces the workflow of Section VIII on the Muller ring of Figure 5:

1. describe the circuit as a netlist (5 C-elements + 5 inverters);
2. verify speed-independence by state-space exploration;
3. extract the Timed Signal Graph (the TRASPEC-substitute step);
4. run the cycle-time algorithm — 20/3 time units per data token;
5. cross-check with an independent event-driven timed simulation;
6. print the slack report showing which gate pins are critical.

Run:  python examples/netlist_to_performance.py
"""

from repro import muller_ring_netlist
from repro.analysis import analyze
from repro.circuits.extraction import extract_signal_graph
from repro.circuits.simulator import simulate_and_measure
from repro.circuits.state_space import explore


def main() -> None:
    netlist = muller_ring_netlist(stages=5, c_delay=1, inverter_delay=1)
    print(netlist.describe())
    print()

    space = explore(netlist)  # raises if not semi-modular
    print(
        "speed-independence verified over %d reachable states" % space.num_states
    )

    graph = extract_signal_graph(netlist)
    print(
        "extracted Signal Graph: %d events, %d arcs, border events: %s"
        % (
            graph.num_events,
            graph.num_arcs,
            ", ".join(str(e) for e in graph.border_events),
        )
    )
    print()

    report = analyze(graph)
    print("cycle time:", report.cycle_time)  # 20/3
    cycle = report.result.critical_cycles[0]
    print(
        "critical cycle spans %d periods and all %d events"
        % (cycle.occurrence_period, len(cycle))
    )
    print()

    measured = simulate_and_measure(netlist, "s0", "+", max_transitions=2000)
    print("event-driven simulation measures:", measured)
    assert measured == report.cycle_time
    print("computed and simulated cycle times agree exactly")
    print()

    print("slack per arc (zero = critical):")
    for (source, target), slack in sorted(
        report.slacks.items(), key=lambda item: (float(item[1]), str(item[0]))
    ):
        print("  %-4s -> %-4s : %s" % (source, target, slack))


if __name__ == "__main__":
    main()
