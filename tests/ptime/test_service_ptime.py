"""End-to-end /ptime endpoint tests over a live ephemeral server."""

from __future__ import annotations

import threading
from fractions import Fraction

import pytest

from repro.generators import plant_inconsistency, ptime_wrap, random_live_tsg
from repro.ptime import from_arcs, lambda_range
from repro.service.cache import clear_caches, configure
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import make_server


@pytest.fixture(autouse=True)
def fresh_caches():
    configure()
    yield
    clear_caches()
    configure()


@pytest.fixture
def service():
    server = make_server(quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(server.url, timeout=30)
    yield client
    server.shutdown()
    server.close()
    thread.join(timeout=5)


def two_ring():
    return from_arcs([("a", "b", 2, 10), ("b", "a", 3, 5, True)])


def planted():
    return plant_inconsistency(
        ptime_wrap(random_live_tsg(events=5, extra_arcs=3, seed=7), seed=7),
        seed=7,
    )


class TestCheck:
    def test_consistent_with_decoded_certificate(self, service):
        result = service.ptime(two_ring(), mode="check")
        assert result["consistent"] is True
        assert result["rate"] == 5
        assert isinstance(result["rate"], (int, Fraction))
        assert result["offsets"]["b"] - result["offsets"]["a"] >= 2
        assert result["cached"] is False

    def test_inconsistent_with_violation_payload(self, service):
        result = service.ptime(planted(), mode="check")
        assert result["consistent"] is False
        violation = result["violation"]
        assert violation["edges"]
        assert "lam" in violation["condition"]

    def test_caches_identical_requests(self, service):
        first = service.ptime(two_ring(), mode="check")
        again = service.ptime(two_ring(), mode="check")
        assert first["cached"] is False and again["cached"] is True

    def test_mode_is_part_of_the_key(self, service):
        service.ptime(two_ring(), mode="check")
        other = service.ptime(two_ring(), mode="lambda-range")
        assert other["cached"] is False

    def test_bound_rebind_misses_cache(self, service):
        ptg = two_ring()
        service.ptime(ptg, mode="check")
        rebound = ptg.copy()
        rebound.set_bounds("a", "b", 2, 12)
        assert service.ptime(rebound, mode="check")["cached"] is False


class TestLambdaRange:
    def test_matches_library(self, service):
        ptg = two_ring()
        remote = service.ptime(ptg, mode="lambda-range")
        local = lambda_range(ptg)
        assert remote["consistent"] is True
        assert remote["lam_min"] == local.lam_min == 5
        assert remote["lam_max"] == local.lam_max == 15
        assert remote["unbounded"] is False

    def test_unbounded_serialises_as_null(self, service):
        ptg = from_arcs([("a", "b", 2, None), ("b", "a", 3, None, True)])
        remote = service.ptime(ptg, mode="lambda-range")
        assert remote["lam_min"] == 5
        assert remote["lam_max"] is None
        assert remote["unbounded"] is True


class TestTrajectory:
    def test_default_rate(self, service):
        result = service.ptime(two_ring(), mode="trajectory", horizon=6)
        assert result["consistent"] is True
        assert result["rate"] == 5
        assert result["verified"] is True
        assert result["horizon"] == 6
        delays = {
            (entry["source"], entry["target"]): entry["delay"]
            for entry in result["induced_delays"]
        }
        assert 2 <= delays[("a", "b")] <= 10
        assert 3 <= delays[("b", "a")] <= 5

    def test_explicit_fraction_rate(self, service):
        result = service.ptime(
            two_ring(), mode="trajectory", rate=Fraction(25, 2)
        )
        assert result["rate"] == Fraction(25, 2)
        assert result["verified"] is True

    def test_out_of_window_rate_is_client_error(self, service):
        with pytest.raises(ServiceError) as caught:
            service.ptime(two_ring(), mode="trajectory", rate=99)
        assert caught.value.status == 400

    def test_inconsistent_graph_reports_violation(self, service):
        result = service.ptime(planted(), mode="trajectory")
        assert result["consistent"] is False
        assert result["violation"]["edges"]


class TestValidation:
    def test_unknown_mode_rejected(self, service):
        with pytest.raises(ServiceError) as caught:
            service.ptime(two_ring(), mode="sideways")
        assert caught.value.status == 400

    def test_bad_graph_document_rejected(self, service):
        with pytest.raises(ServiceError) as caught:
            service._request("POST", "/ptime", {"graph": {"kind": "nope"}})
        assert caught.value.status == 400

    def test_requests_counter_tracks_ptime(self, service):
        service.ptime(two_ring(), mode="check")
        assert service.stats()["requests"]["ptime"] == 1
