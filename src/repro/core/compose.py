"""Parallel composition of Timed Signal Graphs.

Systems are naturally specified as communicating components that
synchronise on shared events (a pipeline stage handshakes with its
neighbours; a resource arbiter synchronises with its clients).  For
marked-graph-like Signal Graphs, parallel composition is simply the
union of events and arcs: a shared event waits for the in-arcs of
*both* components (AND-causality composes by union), which is exactly
the MAX-semantics meaning of synchronisation.

``compose(a, b, ...)`` merges any number of graphs.  Arcs present in
several components must agree on marking and disengageability
(conflicts raise); their delays merge by ``max``, matching the MAX
execution model.  :func:`prefix_events` namespaces a component's
*local* (non-shared) events before composition.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from .errors import GraphConstructionError
from .events import Transition, as_event, event_label
from .signal_graph import TimedSignalGraph
from .transform import relabel_events


def compose(*graphs: TimedSignalGraph, name: Optional[str] = None) -> TimedSignalGraph:
    """Parallel composition: union of events and arcs.

    Shared events synchronise the components.  Raises
    :class:`~repro.core.errors.GraphConstructionError` when the same
    arc appears with inconsistent marking or disengageability.
    """
    if not graphs:
        raise GraphConstructionError("compose needs at least one graph")
    merged = TimedSignalGraph(
        name=name or "+".join(graph.name for graph in graphs)
    )
    for graph in graphs:
        for event in graph.events:
            merged.add_event(event, initial=event in graph._declared_initial)
        for arc in graph.arcs:
            merged.add_arc(
                arc.source,
                arc.target,
                arc.delay,
                marked=arc.marked,
                disengageable=arc.disengageable,
            )
    return merged


def shared_events(first: TimedSignalGraph, second: TimedSignalGraph) -> Set:
    """The synchronisation alphabet of two components."""
    return set(first.events) & set(second.events)


def prefix_events(
    graph: TimedSignalGraph,
    prefix: str,
    keep: Iterable = (),
) -> TimedSignalGraph:
    """Namespace a component's local events with ``prefix``.

    Events listed in ``keep`` (the component's interface) are left
    untouched so they synchronise during composition.  Transition
    events keep their direction and tag: ``a+`` becomes
    ``<prefix>a+``.
    """
    keep_set = {as_event(event) for event in keep}
    mapping: Dict = {}
    for event in graph.events:
        if event in keep_set:
            continue
        if isinstance(event, Transition):
            mapping[event] = Transition(
                prefix + event.signal, event.direction, event.tag
            )
        else:
            mapping[event] = prefix + event_label(event)
    return relabel_events(graph, mapping)


def pipeline_of(
    stage_factory,
    stages: int,
    name: Optional[str] = None,
) -> TimedSignalGraph:
    """Compose a linear pipeline of synchronising components.

    ``stage_factory(index)`` must return a Signal Graph whose right
    interface events equal the next stage's left interface events
    (build them with shared names, e.g. ``link<i>+``).  The result is
    the parallel composition of all stages.
    """
    if stages < 1:
        raise GraphConstructionError("need at least one stage")
    parts = [stage_factory(index) for index in range(stages)]
    return compose(*parts, name=name or "pipeline-of-%d" % stages)
