"""Core Timed Signal Graph model and the paper's cycle-time algorithm."""

from .arithmetic import FLOAT_TOLERANCE, exact_div, numbers_close
from .compose import compose, pipeline_of, prefix_events, shared_events
from .cycle_time import BorderDistance, CycleTimeResult, compute_cycle_time
from .cycles import (
    Cycle,
    critical_cycles,
    make_cycle,
    max_occurrence_period,
    simple_cycles,
)
from .cutsets import (
    border_set,
    greedy_cut_set,
    is_cut_set,
    minimum_cut_set,
    minimum_cut_sets,
)
from .errors import (
    AcyclicGraphError,
    CircuitError,
    DistributivityError,
    ExtractionError,
    FormatError,
    GraphConstructionError,
    NetlistError,
    NotConnectedError,
    NotInitiallySafeError,
    NotLiveError,
    NotSemiModularError,
    NotWellFormedError,
    SignalGraphError,
    SimulationError,
    ValidationError,
)
from .events import FALL, RISE, Transition, as_event, event_label
from .occurrence import (
    average_occurrence_distances,
    initiated_occurrence_distances,
)
from .signal_graph import Arc, TimedSignalGraph, from_arcs
from .simulation import EventInitiatedSimulation, TimingSimulation
from .token_game import (
    TokenGame,
    check_bounded,
    firing_sequence_alternates,
)
from .transform import (
    merge_chain_events,
    relabel_events,
    remove_redundant_arcs,
    restrict_to_core,
)
from .unfolding import Instance, Unfolding, instance_label
from .validation import (
    check_connected_core,
    check_has_cycles,
    check_live,
    check_switchover_correct,
    check_well_formed,
    find_unmarked_cycle,
    unmarked_subgraph,
    validate,
)

__all__ = [
    "TokenGame",
    "check_bounded",
    "firing_sequence_alternates",
    "restrict_to_core",
    "remove_redundant_arcs",
    "relabel_events",
    "merge_chain_events",
    "shared_events",
    "prefix_events",
    "pipeline_of",
    "compose",
    "Arc",
    "AcyclicGraphError",
    "BorderDistance",
    "CircuitError",
    "Cycle",
    "CycleTimeResult",
    "DistributivityError",
    "EventInitiatedSimulation",
    "ExtractionError",
    "FALL",
    "FLOAT_TOLERANCE",
    "FormatError",
    "GraphConstructionError",
    "Instance",
    "NetlistError",
    "NotConnectedError",
    "NotInitiallySafeError",
    "NotLiveError",
    "NotSemiModularError",
    "NotWellFormedError",
    "RISE",
    "SignalGraphError",
    "SimulationError",
    "TimedSignalGraph",
    "TimingSimulation",
    "Transition",
    "Unfolding",
    "ValidationError",
    "as_event",
    "average_occurrence_distances",
    "border_set",
    "check_connected_core",
    "check_has_cycles",
    "check_live",
    "check_switchover_correct",
    "check_well_formed",
    "compute_cycle_time",
    "critical_cycles",
    "event_label",
    "exact_div",
    "find_unmarked_cycle",
    "from_arcs",
    "greedy_cut_set",
    "initiated_occurrence_distances",
    "instance_label",
    "is_cut_set",
    "make_cycle",
    "max_occurrence_period",
    "minimum_cut_set",
    "minimum_cut_sets",
    "numbers_close",
    "simple_cycles",
    "unmarked_subgraph",
    "validate",
]
