"""Asymptotic behaviour of average occurrence distances (Figure 4).

The paper's Figure 4 contrasts two behaviours of the sequence
``delta_{e_0}(e_i)``:

* events **on** a critical cycle reach the cycle time exactly, at some
  ``i`` no larger than the minimum cut set size, and keep returning to
  it (the sequence's maximum equals λ — Proposition 7);
* events **off** every critical cycle stay *strictly below* λ forever
  while converging to it (Proposition 8).

This module computes those sequences, classifies events, and renders a
compact ASCII chart used by the figure-reproduction benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.arithmetic import Number, numbers_close
from ..core.cycle_time import CycleTimeResult, compute_cycle_time
from ..core.events import as_event, event_label
from ..core.occurrence import initiated_occurrence_distances
from ..core.signal_graph import TimedSignalGraph


@dataclass
class AsymptoticSeries:
    """The delta sequence of one initiating event, with its verdict."""

    event: object
    cycle_time: Number
    points: List[Tuple[int, Number]]  # (period, delta)
    on_critical_cycle: bool

    @property
    def maximum(self) -> Number:
        return max(delta for _, delta in self.points)

    @property
    def reaches_cycle_time(self) -> bool:
        return any(numbers_close(delta, self.cycle_time) for _, delta in self.points)

    def verdict(self) -> str:
        kind = "on a critical cycle" if self.on_critical_cycle else "off critical cycles"
        reach = "reaches" if self.reaches_cycle_time else "never reaches"
        return "%s is %s: sequence %s λ=%s" % (
            event_label(self.event),
            kind,
            reach,
            self.cycle_time,
        )


def delta_series(
    graph: TimedSignalGraph,
    event,
    periods: int,
    result: Optional[CycleTimeResult] = None,
) -> AsymptoticSeries:
    """Compute ``delta_{e_0}(e_i)`` for ``i`` in 1..periods."""
    event = as_event(event)
    if result is None:
        result = compute_cycle_time(graph)
    points = initiated_occurrence_distances(graph, event, periods)
    from .performance import analyze

    report = analyze(graph, result)
    critical_events = set()
    for cycle in report.all_critical_cycles():
        critical_events.update(cycle.events)
    return AsymptoticSeries(
        event=event,
        cycle_time=result.cycle_time,
        points=points,
        on_critical_cycle=event in critical_events,
    )


def render_series(
    series: AsymptoticSeries, height: int = 10, width: Optional[int] = None
) -> str:
    """ASCII chart of a delta sequence against the cycle-time asymptote."""
    points = series.points
    if not points:
        return "(empty series)"
    width = width or len(points)
    values = [float(delta) for _, delta in points][:width]
    top = float(series.cycle_time)
    low = min(values)
    span = max(top - low, 1e-12)
    rows = []
    for level in range(height, -1, -1):
        threshold = low + span * level / height
        line = []
        for value in values:
            if abs(value - top) <= span / (2 * height) and level == height:
                line.append("*")
            elif value >= threshold - span / (2 * height) and (
                level == 0 or value < threshold + span / (2 * height)
            ):
                line.append("o")
            else:
                line.append("-" if level == height else " ")
        label = "λ=%g " % top if level == height else "      "
        rows.append("%8s|%s" % (label, "".join(line)))
    rows.append("%8s+%s" % ("", "-" * len(values)))
    rows.append("%8s i=1..%d" % ("", len(values)))
    return "\n".join(rows)
