"""Unit tests for the built-in circuit/graph library."""

from fractions import Fraction

import pytest

from repro.circuits.library import (
    async_stack_tsg,
    linear_pipeline_tsg,
    muller_ring_netlist,
    muller_ring_tsg,
    oscillator_extracted_tsg,
    oscillator_netlist,
    oscillator_tsg,
)
from repro.core import compute_cycle_time, validate
from repro.core.errors import GraphConstructionError


class TestOscillator:
    def test_tsg_shape(self):
        g = oscillator_tsg()
        assert g.num_events == 8
        assert g.num_arcs == 11
        validate(g)

    def test_netlist_shape(self):
        n = oscillator_netlist()
        assert set(n.signals) == {"a", "b", "c", "e", "f"}
        assert n.initial_state() == {"a": 0, "b": 0, "c": 0, "e": 1, "f": 1}

    def test_extracted_equals_hand_graph(self):
        assert oscillator_extracted_tsg().structurally_equal(oscillator_tsg())


class TestMullerRing:
    def test_default_is_figure_5(self):
        n = muller_ring_netlist()
        assert len(n.gates) == 10  # 5 C-elements + 5 inverters
        state = n.initial_state()
        assert [state["s%d" % i] for i in range(5)] == [0, 0, 0, 0, 1]

    def test_tsg_cycle_time(self):
        g = muller_ring_tsg()
        assert compute_cycle_time(g).cycle_time == Fraction(20, 3)

    def test_parametric_sizes(self):
        for stages in (3, 4, 7):
            g = muller_ring_tsg(stages=stages)
            validate(g)
            assert g.num_events == 4 * stages

    def test_ring_size_floor(self):
        with pytest.raises(GraphConstructionError):
            muller_ring_netlist(stages=2)

    def test_custom_delays(self):
        g = muller_ring_tsg(c_delay=2, inverter_delay=3)
        value = compute_cycle_time(g).cycle_time
        assert value > Fraction(20, 3)

    def test_token_stage_choice(self):
        n = muller_ring_netlist(token_stage=2)
        assert n.initial_state()["s2"] == 1

    @pytest.mark.parametrize(
        "stages,tokens",
        [(6, [1, 4]), (8, [0, 3, 6]), (9, [0, 4])],
    )
    def test_multi_token_rings_cross_verify(self, stages, tokens):
        from repro.circuits.extraction import extract_signal_graph
        from repro.circuits.simulator import simulate_and_measure

        netlist = muller_ring_netlist(stages=stages, token_stages=tokens)
        graph = extract_signal_graph(netlist)
        computed = compute_cycle_time(graph).cycle_time
        measured = simulate_and_measure(netlist, "s0", "+", max_transitions=3000)
        assert computed == measured

    def test_multi_token_throughput_beats_single_when_spread(self):
        from repro.circuits.extraction import extract_signal_graph
        from repro.circuits.simulator import simulate_and_measure

        single = muller_ring_netlist(stages=9, token_stages=[0])
        double = muller_ring_netlist(stages=9, token_stages=[0, 4])
        lam_single = compute_cycle_time(extract_signal_graph(single)).cycle_time
        lam_double = compute_cycle_time(extract_signal_graph(double)).cycle_time
        assert lam_double < lam_single  # two tokens move more data

    def test_token_parameter_validation(self):
        with pytest.raises(GraphConstructionError):
            muller_ring_netlist(token_stage=1, token_stages=[2])
        with pytest.raises(GraphConstructionError):
            muller_ring_netlist(token_stages=[])
        with pytest.raises(GraphConstructionError):
            muller_ring_netlist(stages=4, token_stages=[0, 1, 2, 3])


class TestAsyncStack:
    def test_paper_size_66_112(self):
        g = async_stack_tsg()
        assert g.num_events == 66
        assert g.num_arcs == 112
        validate(g)

    def test_border_much_smaller_than_events(self):
        g = async_stack_tsg()
        assert len(g.border_events) * 3 == g.num_events

    def test_cycle_time_scales_with_depth(self):
        shallow = compute_cycle_time(async_stack_tsg(4)).cycle_time
        deep = compute_cycle_time(async_stack_tsg(12)).cycle_time
        assert deep > shallow

    def test_minimum_cells(self):
        with pytest.raises(GraphConstructionError):
            async_stack_tsg(1)

    def test_all_methods_agree(self):
        from repro.baselines import compare_methods

        g = async_stack_tsg(5)
        results = compare_methods(g, ["timing", "karp", "howard", "lawler"])
        values = {r.cycle_time for r in results.values()}
        assert len(values) == 1


class TestCElementSynchronizer:
    def test_closed_form(self):
        from repro.circuits.extraction import extract_signal_graph
        from repro.circuits.library import c_element_synchronizer_netlist

        for delays, c_delay in [([1, 1, 1], 1), ([2, 5, 3], 1), ([4, 4], 2)]:
            netlist = c_element_synchronizer_netlist(len(delays), delays, c_delay)
            graph = extract_signal_graph(netlist)
            assert (
                compute_cycle_time(graph).cycle_time
                == 2 * (c_delay + max(delays))
            )

    def test_wide_and_causality(self):
        from repro.circuits.extraction import extract_signal_graph
        from repro.circuits.library import c_element_synchronizer_netlist
        from repro.core import Transition

        graph = extract_signal_graph(c_element_synchronizer_netlist(4))
        causes = {str(a.source) for a in graph.in_arcs(Transition.parse("root+"))}
        assert causes == {"n0+", "n1+", "n2+", "n3+"}

    def test_only_slowest_branch_is_critical(self):
        from repro.analysis import delay_sensitivities
        from repro.circuits.extraction import extract_signal_graph
        from repro.circuits.library import c_element_synchronizer_netlist

        graph = extract_signal_graph(
            c_element_synchronizer_netlist(3, [1, 7, 2], 1)
        )
        critical = [
            row for row in delay_sensitivities(graph) if row.sensitivity > 0
        ]
        labels = {str(row.source) for row in critical} | {
            str(row.target) for row in critical
        }
        assert "n1+" in labels and "n1-" in labels
        assert "n0+" not in labels

    def test_parameter_validation(self):
        from repro.circuits.library import c_element_synchronizer_netlist

        with pytest.raises(GraphConstructionError):
            c_element_synchronizer_netlist(1)
        with pytest.raises(GraphConstructionError):
            c_element_synchronizer_netlist(3, [1, 2])

    def test_verified_end_to_end(self):
        from repro.circuits import verify_extraction
        from repro.circuits.library import c_element_synchronizer_netlist

        report = verify_extraction(c_element_synchronizer_netlist(3, [2, 3, 4]))
        assert report.ok
        assert report.cycle_time == 2 * (1 + 4)


class TestLinearPipeline:
    def test_cycle_time_closed_form(self):
        g = linear_pipeline_tsg(6, forward=3, backward=2)
        assert compute_cycle_time(g).cycle_time == 6 * 5

    def test_validates(self):
        validate(linear_pipeline_tsg(4))

    def test_minimum_stages(self):
        with pytest.raises(GraphConstructionError):
            linear_pipeline_tsg(1)
